//! The self-healing fleet, end to end: a supervised router detects a
//! killed shard, respawns a replacement, warms its cache from the hot
//! keys, and readmits it to the ring — with zero dropped requests and
//! every reply bit-identical to a clean engine. The failure driver is a
//! seeded [`parspeed_chaos::FaultPlan`], so every scenario here —
//! respawn, denied respawn, crash-loop to permanent eviction — replays
//! the same event trace from the same seed.

use parspeed_chaos::FaultPlan;
use parspeed_engine::{
    jsonl, routing_hash, ArchKind, CheckpointPolicy, CheckpointStore, Engine, Query, Request,
    Response, SolverKind, StencilSpec,
};
use parspeed_router::ring::HashRing;
use parspeed_router::{Router, RouterConfig, SupervisorPolicy};
use parspeed_server::ServerConfig;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn query(n: usize) -> Query {
    Request::optimize(ArchKind::SyncBus, n).procs(32).query()
}

/// A supervised fleet tuned for test speed: millisecond debounce and
/// backoff, full warmup before rejoin.
fn supervised_config(shards: usize) -> RouterConfig {
    RouterConfig {
        shards,
        backend: ServerConfig {
            window: Duration::from_micros(200),
            max_batch: 4096,
            ..ServerConfig::default()
        },
        poll: Duration::from_millis(5),
        supervisor: Some(SupervisorPolicy {
            respawn_after: Duration::from_millis(10),
            max_respawns: 3,
            respawn_backoff: Duration::from_millis(5),
            warm_fraction: 1.0,
        }),
        ..RouterConfig::default()
    }
}

/// A grid side whose query routes to `shard` on the full ring.
fn side_on_shard(config: &RouterConfig, shard: usize) -> usize {
    let ring = HashRing::with_shards(config.shards, config.replicas);
    (64..4096)
        .find(|&n| ring.route(routing_hash(&query(n))) == Some(shard))
        .expect("some key routes to the shard")
}

/// Spins until the ring reports every shard a member again (the rejoin
/// happened), or panics after `deadline`.
fn wait_for_rejoin(router: &Router, shards: usize, deadline: Duration) {
    let start = Instant::now();
    loop {
        let topo = router.topology().render();
        if topo.contains(&format!(r#""shards":{shards}"#)) && topo.contains(r#""lost":[]"#) {
            return;
        }
        assert!(start.elapsed() < deadline, "shard never rejoined the ring: {topo}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn killed_shard_respawns_warm_and_rejoins_with_zero_drops() {
    let config = supervised_config(2);
    let side = side_on_shard(&config, 0);
    let router = Router::start(config);
    // Kill shard 0 at the 4th admitted request — after its hot-key ring
    // has seen traffic worth warming.
    let plan = Arc::new(FaultPlan::parse("kill:0@4", 42).expect("plan parses"));
    router.install_fault_plan(Some(Arc::clone(&plan)));
    let client = router.client();
    let engine = Engine::default();

    // Closed loop across the kill and the respawn: every reply must be
    // the engine's own, bit-for-bit — zero requests dropped.
    let mut asked = 0u32;
    for round in 0..3 {
        for i in 0..4 {
            let q = query(side + i);
            let expect = engine.run_batch(std::slice::from_ref(&q)).responses.remove(0);
            assert_eq!(client.call(q), expect, "round {round} request {i} diverged");
            asked += 1;
        }
        if round == 0 {
            wait_for_rejoin(&router, 2, Duration::from_secs(10));
        }
    }
    assert_eq!(asked, 12);

    // The respawn is visible everywhere it should be: the metrics
    // counters, the warmup record, and the deterministic event trace.
    let metrics = router.metrics().render();
    assert!(metrics.contains(r#""respawns":1"#), "{metrics}");
    assert!(!metrics.contains(r#""warmup_keys_replayed":0"#), "{metrics}");
    assert!(metrics.contains(r#"{"shard":0,"state":"closed"}"#), "{metrics}");
    let warmup = router.warmup().render();
    assert!(warmup.starts_with(r#"{"version":2,"op":"warmup","shards":["#), "{warmup}");
    assert!(warmup.contains(r#""active":false"#), "{warmup}");
    let events = plan.events();
    assert!(events.iter().any(|e| e.contains("shard 0 lost")), "{events:?}");
    assert!(events.iter().any(|e| e.contains("shard 0 respawned and rejoined")), "{events:?}");
    assert!(router.evicted_shards().is_empty());

    // Both shards drain at shutdown: the fleet healed to full strength.
    let stats = router.shutdown();
    assert_eq!(stats.len(), 2, "the respawned shard drains too");
}

#[test]
fn denied_respawns_burn_budget_and_the_next_attempt_heals() {
    let config = supervised_config(2);
    let router = Router::start(config);
    // One scripted capacity denial, then the kill: attempt 1 is refused
    // (burning budget), attempt 2 respawns.
    let plan = Arc::new(FaultPlan::parse("respawn-deny:0@1,kill:0@2", 7).expect("plan parses"));
    router.install_fault_plan(Some(Arc::clone(&plan)));
    let client = router.client();
    for i in 0..3 {
        match client.call(query(64 + i)) {
            Response::Single(Ok(_)) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
    wait_for_rejoin(&router, 2, Duration::from_secs(10));
    let events = plan.events();
    assert!(
        events.iter().any(|e| e.contains("respawn of shard 0 denied (attempt 1)")),
        "{events:?}"
    );
    assert!(events.iter().any(|e| e.contains("(attempt 2")), "{events:?}");
    router.shutdown();
}

#[test]
fn crash_loop_exhausts_the_budget_into_permanent_eviction() {
    let mut config = supervised_config(2);
    config.supervisor = Some(SupervisorPolicy { max_respawns: 2, ..config.supervisor.unwrap() });
    let router = Router::start(config);
    // Five kills against a budget of two respawns: the shard crash-loops
    // to permanent eviction, and the ring never flaps back.
    let plan = Arc::new(FaultPlan::parse("crashloop:0:5@2", 7).expect("plan parses"));
    router.install_fault_plan(Some(Arc::clone(&plan)));
    let client = router.client();
    for i in 0..4 {
        match client.call(query(64 + i)) {
            Response::Single(Ok(_)) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
    let start = Instant::now();
    while router.evicted_shards().is_empty() {
        assert!(
            start.elapsed() < Duration::from_secs(20),
            "shard was never evicted: {:?}",
            plan.events()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(router.evicted_shards(), [0]);

    // The machine-readable eviction event, exactly once.
    let events = plan.events();
    let evictions: Vec<&String> = events
        .iter()
        .filter(|e| e.contains(r#"{"event":"shard-evicted","shard":0,"respawns":2}"#))
        .collect();
    assert_eq!(evictions.len(), 1, "{events:?}");

    // Eviction is terminal: the shard stays out of the ring, the state
    // word says so, and the survivor answers everything.
    let metrics = router.metrics().render();
    assert!(metrics.contains(r#"{"shard":0,"state":"evicted"}"#), "{metrics}");
    let topo = router.topology().render();
    assert!(topo.contains(r#""lost":[0]"#), "{topo}");
    for i in 0..4 {
        match client.call(query(256 + i)) {
            Response::Single(Ok(_)) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(router.evicted_shards(), [0], "eviction never heals");
    let stats = router.shutdown();
    assert_eq!(stats.len(), 1, "only the survivor drains");
}

/// Satellite: the router-scoped `metrics` record stays internally
/// consistent — full key set, one valid state word per shard, counters
/// never torn — while breakers trip, probe, and reclose underneath it.
#[test]
fn metrics_are_consistent_under_concurrent_breaker_transitions() {
    let mut config = supervised_config(2);
    config.supervisor = None;
    let router = Router::start(config);
    let plan =
        Arc::new(FaultPlan::parse("wedge:0@2,wedge:1@6,kill:0@10", 21).expect("plan parses"));
    router.install_fault_plan(Some(plan));

    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let reader = scope.spawn(|| {
            let valid = ["closed", "open", "half-open", "lost", "evicted"];
            let mut last_retries = 0.0f64;
            let mut snapshots = 0u32;
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                let json = router.metrics();
                let jsonl::Json::Obj(fields) = &json else { panic!("metrics not an object") };
                let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, ["version", "op", "scope", "resilience", "breakers"]);
                let Some(jsonl::Json::Arr(breakers)) = json.get("breakers") else {
                    panic!("no breakers array")
                };
                assert_eq!(breakers.len(), 2);
                for b in breakers {
                    let state = b.get("state").and_then(jsonl::Json::as_str).unwrap();
                    assert!(valid.contains(&state), "torn state word {state:?}");
                }
                let resilience = json.get("resilience").expect("resilience object");
                let jsonl::Json::Obj(counters) = resilience else { panic!("not an object") };
                assert_eq!(counters.len(), 14, "counter set changed size");
                // Monotone under concurrency: a later snapshot never
                // shows fewer retries than an earlier one.
                let retries = resilience.get("retries").and_then(jsonl::Json::as_f64).unwrap();
                assert!(retries >= last_retries, "retries went backwards");
                last_retries = retries;
                snapshots += 1;
            }
            snapshots
        });

        // Drive traffic through wedge-trip-probe-reclose cycles and a
        // kill while the reader snapshots continuously.
        let client = router.client();
        for i in 0..16 {
            match client.call(query(64 + i)) {
                Response::Single(Ok(_)) | Response::Invalid(_) => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
        let snapshots = reader.join().expect("reader thread");
        assert!(snapshots > 0, "the reader never snapshotted");
    });
    router.shutdown();
}

/// A fleet sharing one checkpoint store reports its checkpoint activity
/// on the router's `metrics` record — counted once, not once per shard.
#[test]
fn shared_checkpoint_store_reports_once_on_metrics() {
    let mut config = supervised_config(2);
    config.supervisor = None;
    let store = Arc::new(CheckpointStore::new(64));
    let policy = CheckpointPolicy::every(8);
    let factory = {
        let store = Arc::clone(&store);
        move |_shard: usize| {
            Arc::new(Engine::builder().checkpoints(Arc::clone(&store), policy).build())
        }
    };
    let router = Router::start_with(config, factory);
    let client = router.client();
    let solve = Query::Solve {
        n: 31,
        solver: SolverKind::Jacobi,
        tol: 1e-6,
        stencil: StencilSpec::FivePoint,
        partitions: 1,
        max_iters: 10_000,
        check: None,
    };
    match client.call(solve) {
        Response::Single(Ok(_)) => {}
        other => panic!("unexpected {other:?}"),
    }
    let taken = store.taken();
    assert!(taken > 0, "the solve never checkpointed");
    let metrics = router.metrics().render();
    // The store is shared by both shards; the fold must count it once.
    assert!(metrics.contains(&format!(r#""checkpoints_taken":{taken}"#)), "{metrics}");
    router.shutdown();
}
