//! Shard loss fails over, not disconnects.
//!
//! Killing a backend must (1) redispatch every retry-safe request in
//! flight on it to the key's ring successor, answering the *real*
//! result in the original reply slot, (2) leave requests in flight on
//! *other* shards untouched, (3) remap only the lost shard's keys
//! (consistent rebalance), and (4) keep every connection alive and
//! usable. Retry-unsafe requests (wall-clock measurements) instead
//! answer the documented `overloaded` refusal with a machine-readable
//! `retry_after_ms=` hint.

use parspeed_engine::{routing_hash, ArchKind, Engine, Query, Request, Response};
use parspeed_router::ring::HashRing;
use parspeed_router::{Router, RouterConfig};
use parspeed_server::ServerConfig;
use std::time::Duration;

fn query(n: usize) -> Query {
    Request::optimize(ArchKind::SyncBus, n).procs(32).query()
}

/// A fleet whose backends hold requests in a long window, so the test
/// can race a kill against provably in-flight work.
fn slow_fleet(shards: usize) -> (Router, RouterConfig) {
    fleet(shards, Duration::from_millis(500))
}

/// A fleet that answers promptly (for tests that only need routing).
fn fast_fleet(shards: usize) -> (Router, RouterConfig) {
    fleet(shards, Duration::from_micros(200))
}

fn fleet(shards: usize, window: Duration) -> (Router, RouterConfig) {
    let config = RouterConfig {
        shards,
        backend: ServerConfig { window, max_batch: 4096, ..ServerConfig::default() },
        ..RouterConfig::default()
    };
    (Router::start(config), config)
}

/// Finds grid sides whose queries route to two different shards of a
/// 3-member ring, using the same pinned hash + ring the router uses.
fn two_shards_apart(config: &RouterConfig) -> ((usize, usize), (usize, usize)) {
    let ring = HashRing::with_shards(config.shards, config.replicas);
    let route = |n: usize| ring.route(routing_hash(&query(n))).unwrap();
    let a = 64;
    let b = (65..200).find(|&n| route(n) != route(a)).expect("some query routes elsewhere");
    ((a, route(a)), (b, route(b)))
}

#[test]
fn in_flight_requests_on_a_lost_shard_answer_in_slot() {
    let (router, config) = slow_fleet(3);
    let ((a, victim), (b, survivor)) = two_shards_apart(&config);
    assert_ne!(victim, survivor);

    let client = router.client();
    // Both in flight: a sits in the victim's window, b in the survivor's.
    for _ in 0..3 {
        client.submit(query(a));
    }
    client.submit(query(b));

    let stats = router.kill_shard(victim).expect("victim was live");
    assert!(stats.draining, "the lost backend was not drained");

    // Slots 0..3 fail over to the ring successor and answer the *real*
    // result — in order, in slot, bit-identical to a serial engine.
    let expect_a = Engine::default().run_batch(&[query(a)]).responses.remove(0);
    for i in 0..3u64 {
        let (seq, response) = client.recv();
        assert_eq!(seq, i);
        assert_eq!(response, expect_a, "slot {i}: failover must answer the real result");
    }
    // Slot 3 still gets its real answer from the surviving shard.
    let (seq, response) = client.recv();
    assert_eq!(seq, 3);
    assert_eq!(response, Engine::default().run_batch(&[query(b)]).responses.remove(0));

    // Every failover was counted.
    let snap = router.resilience().snapshot();
    assert_eq!(snap.retries, 3);
    assert_eq!(snap.failovers, 3);

    // No disconnect: the same connection reuses the lost key and the
    // ring re-routes it to a survivor.
    let retried = client.call(query(a));
    assert_eq!(retried, expect_a);

    // The rebalance removed exactly the victim.
    let members: Vec<usize> = router.resident_keys().iter().map(|&(s, _)| s).collect();
    assert_eq!(members.len(), 2);
    assert!(!members.contains(&victim));

    let final_stats = router.shutdown();
    assert_eq!(final_stats.len(), 2, "survivors drained: {final_stats:?}");
}

#[test]
fn only_the_lost_shards_keys_remap() {
    let (router, config) = fast_fleet(3);
    let ring = HashRing::with_shards(config.shards, config.replicas);
    // Warm the fleet with a key spread, remembering each key's shard.
    let sides: Vec<usize> = (64..96).collect();
    let client = router.client();
    for &n in &sides {
        client.call(query(n));
    }
    let owner =
        |n: usize, ring: &HashRing| ring.route(routing_hash(&query(n))).expect("nonempty ring");
    let before: Vec<usize> = sides.iter().map(|&n| owner(n, &ring)).collect();

    let victim = 1;
    router.kill_shard(victim);
    let mut rebalanced = ring.clone();
    rebalanced.remove(victim);
    // Keys that lived elsewhere keep their warm shard; the victim's
    // keys all land on survivors.
    for (&n, &was) in sides.iter().zip(&before) {
        let now = owner(n, &rebalanced);
        if was == victim {
            assert_ne!(now, victim, "n={n} still routes to the lost shard");
        } else {
            assert_eq!(now, was, "n={n} moved although its shard survived");
        }
        // And the router actually serves it post-loss.
        let response = client.call(query(n));
        assert!(matches!(response, Response::Single(Ok(_))), "n={n}: {response:?}");
    }
    router.shutdown();
}

#[test]
fn losing_every_shard_still_answers_in_slot() {
    let (router, _) = fast_fleet(2);
    let client = router.client();
    client.call(query(64));
    assert!(router.kill_shard(0).is_some());
    assert!(router.kill_shard(0).is_none(), "double kill reports already-gone");
    assert!(router.kill_shard(1).is_some());
    match client.call(query(64)) {
        Response::Invalid(e) => {
            assert_eq!(e.kind(), "overloaded");
            assert!(e.to_string().contains("no shard available"), "{e}");
        }
        other => panic!("unexpected {other:?}"),
    }
    let stats = router.shutdown();
    assert!(stats.is_empty(), "every backend was already drained by its kill");
}
