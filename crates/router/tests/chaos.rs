//! Deterministic fault injection against the fleet: a seeded
//! [`parspeed_chaos::FaultPlan`] kills shards, drops/duplicates/delays
//! replies, and wedges lanes at scripted request indices, and the
//! router's recovery machinery — failover with deterministic backoff,
//! deadlines answered in-slot, stall breakers with half-open probes —
//! must keep every reply slot answered and bit-identical where a real
//! result is possible. The same seed must replay the same event trace.

use parspeed_chaos::FaultPlan;
use parspeed_engine::{
    routing_hash, ArchKind, Engine, Query, Request, Response, ShapeKey, StencilSpec,
};
use parspeed_router::ring::HashRing;
use parspeed_router::{BreakerPolicy, RetryPolicy, Router, RouterConfig};
use parspeed_server::ServerConfig;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn query(n: usize) -> Query {
    Request::optimize(ArchKind::SyncBus, n).procs(32).query()
}

/// A wall-clock measurement: the one query class that must never be
/// silently retried.
fn threads_query(n: usize) -> Query {
    Query::Threads {
        n,
        stencil: StencilSpec::FivePoint,
        shape: ShapeKey::Strip,
        threads: vec![1],
        iters: 1,
        repeats: 1,
    }
}

fn fast_config(shards: usize) -> RouterConfig {
    RouterConfig {
        shards,
        backend: ServerConfig {
            window: Duration::from_micros(200),
            max_batch: 4096,
            ..ServerConfig::default()
        },
        poll: Duration::from_millis(5),
        ..RouterConfig::default()
    }
}

/// A grid side whose query routes to `shard` on the full ring.
fn side_on_shard(config: &RouterConfig, shard: usize) -> usize {
    let ring = HashRing::with_shards(config.shards, config.replicas);
    (64..4096)
        .find(|&n| ring.route(routing_hash(&query(n))) == Some(shard))
        .expect("some key routes to the shard")
}

#[test]
fn scripted_kill_fails_over_and_stays_bit_identical() {
    let router = Router::start(fast_config(2));
    let plan = Arc::new(FaultPlan::parse("kill:0@3", 42).expect("plan parses"));
    router.install_fault_plan(Some(Arc::clone(&plan)));
    let client = router.client();
    let engine = Engine::default();
    // Closed loop across the kill: every reply must be the engine's own,
    // bit-for-bit — zero requests lost to the dying shard.
    for i in 0..6 {
        let q = query(64 + i);
        let expect = engine.run_batch(std::slice::from_ref(&q)).responses.remove(0);
        assert_eq!(client.call(q), expect, "request {i} diverged across the kill");
    }
    let events = plan.events();
    assert!(events.iter().any(|e| e.contains("shard 0 lost")), "{events:?}");
    let topo = router.topology().render();
    assert!(topo.contains(r#""lost":[0]"#), "{topo}");
    let stats = router.shutdown();
    assert_eq!(stats.len(), 1, "only the survivor drains at shutdown");
}

#[test]
fn expired_deadline_answers_in_slot_with_the_budget_kind() {
    let router = Router::start(fast_config(2));
    let client = router.client();
    match client.call_with_deadline(query(64), Instant::now()) {
        Response::Invalid(e) => {
            assert_eq!(e.kind(), "deadline_exceeded");
            assert!(e.to_string().contains("deadline"), "{e}");
        }
        other => panic!("unexpected {other:?}"),
    }
    // Nothing is poisoned: the same key without a deadline answers.
    assert!(matches!(client.call(query(64)), Response::Single(Ok(_))));
    assert_eq!(router.resilience().snapshot().deadline_missed, 1);
    router.shutdown();
}

#[test]
fn default_deadline_budget_applies_to_bare_submissions() {
    let config = RouterConfig { default_deadline: Some(Duration::ZERO), ..fast_config(2) };
    let router = Router::start(config);
    let client = router.client();
    match client.call(query(64)) {
        Response::Invalid(e) => assert_eq!(e.kind(), "deadline_exceeded"),
        other => panic!("unexpected {other:?}"),
    }
    router.shutdown();
}

#[test]
fn the_deadline_budget_travels_to_the_backend() {
    // One slow backend: the router dispatches instantly, the budget
    // expires inside the shard's batching window, and the *backend*
    // answers the deadline kind through the gather path.
    let config = RouterConfig {
        shards: 1,
        backend: ServerConfig {
            window: Duration::from_millis(150),
            workers: 1,
            ..ServerConfig::default()
        },
        poll: Duration::from_millis(5),
        ..RouterConfig::default()
    };
    let router = Router::start(config);
    let client = router.client();
    let response = client.call_with_deadline(query(64), Instant::now() + Duration::from_millis(20));
    match response {
        Response::Invalid(e) => assert_eq!(e.kind(), "deadline_exceeded"),
        other => panic!("unexpected {other:?}"),
    }
    router.shutdown();
}

#[test]
fn a_wedged_lane_trips_the_breaker_and_the_probe_recloses_it() {
    let mut config = fast_config(2);
    config.breaker = BreakerPolicy {
        failure_threshold: 3,
        probe_after: Duration::from_millis(100),
        stall_after: Duration::from_millis(40),
    };
    let victim = 0usize;
    let side = side_on_shard(&config, victim);
    let router = Router::start(config);
    let plan = Arc::new(FaultPlan::parse(&format!("wedge:{victim}@1"), 7).expect("plan parses"));
    router.install_fault_plan(Some(Arc::clone(&plan)));
    let client = router.client();
    let expect = Engine::default().run_batch(&[query(side)]).responses.remove(0);

    // Request 1 wedges its own lane: the stall breaker trips, the slot
    // fails over to the survivor, and the real result still answers.
    assert_eq!(client.call(query(side)), expect);
    let snap = router.resilience().snapshot();
    assert_eq!(snap.breaker_opened, 1);
    assert_eq!(snap.retries, 1);
    assert_eq!(snap.failovers, 1);

    // After the probe interval the shard is readmitted half-open; its
    // stale wedged-era reply is skipped (FIFO stays aligned) and the
    // next healthy reply recloses the breaker.
    std::thread::sleep(Duration::from_millis(150));
    assert_eq!(client.call(query(side)), expect);
    assert_eq!(router.resilience().snapshot().breaker_reclosed, 1);
    let events = plan.events();
    assert!(events.iter().any(|e| e.contains("breaker opened on shard 0")), "{events:?}");
    assert!(events.iter().any(|e| e.contains("readmitted half-open")), "{events:?}");
    assert!(events.iter().any(|e| e.contains("breaker reclosed on shard 0")), "{events:?}");
    router.shutdown();
}

#[test]
fn dropped_replies_retry_and_duplicates_are_suppressed() {
    let router = Router::start(fast_config(1));
    let plan = Arc::new(FaultPlan::parse("drop:0@1,dup:0@2", 3).expect("plan parses"));
    router.install_fault_plan(Some(Arc::clone(&plan)));
    let client = router.client();
    let expect = Engine::default().run_batch(&[query(64)]).responses.remove(0);
    assert_eq!(client.call(query(64)), expect, "a dropped reply must be retried");
    assert_eq!(client.call(query(64)), expect, "a duplicated reply must deliver exactly once");
    let snap = router.resilience().snapshot();
    assert_eq!(snap.replies_dropped, 1);
    assert_eq!(snap.duplicates_suppressed, 1);
    assert_eq!(snap.retries, 1);
    assert_eq!(snap.failovers, 0, "a same-shard retry is not a failover");
    router.shutdown();
}

#[test]
fn retry_unsafe_queries_refuse_with_a_retry_after_hint() {
    let mut config = fast_config(2);
    // A long window keeps the measurement provably in flight.
    config.backend.window = Duration::from_millis(300);
    let ring = HashRing::with_shards(config.shards, config.replicas);
    let tq = threads_query(32);
    let victim = ring.route(routing_hash(&tq)).expect("nonempty ring");
    let router = Router::start(config);
    let client = router.client();
    client.submit(tq);
    let stats = router.kill_shard(victim).expect("victim was live");
    assert!(stats.draining);
    let (_, response) = client.recv();
    match response {
        Response::Invalid(e) => {
            assert_eq!(e.kind(), "overloaded");
            let msg = e.to_string();
            assert!(msg.contains("not retry-safe"), "{msg}");
            let tail = msg.split("retry_after_ms=").nth(1).expect("machine-readable hint");
            let digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
            assert!(digits.parse::<u64>().expect("numeric hint") >= 1, "{msg}");
        }
        other => panic!("unexpected {other:?}"),
    }
    router.shutdown();
}

#[test]
fn exhausted_attempts_refuse_with_the_rebalance_hint() {
    let mut config = fast_config(2);
    config.backend.window = Duration::from_millis(300);
    config.retry = RetryPolicy { max_attempts: 1, ..RetryPolicy::default() };
    let side = side_on_shard(&config, 0);
    let router = Router::start(config);
    let client = router.client();
    client.submit(query(side));
    router.kill_shard(0).expect("victim was live");
    let (_, response) = client.recv();
    match response {
        Response::Invalid(e) => {
            assert_eq!(e.kind(), "overloaded");
            assert!(e.to_string().contains("attempts exhausted"), "{e}");
            assert!(e.to_string().contains("retry_after_ms="), "{e}");
        }
        other => panic!("unexpected {other:?}"),
    }
    router.shutdown();
}

#[test]
fn the_same_seed_replays_the_same_event_trace() {
    let run = || {
        let router = Router::start(fast_config(2));
        let plan =
            Arc::new(FaultPlan::parse("drop:0@2,dup:0@3,kill:1@5", 11).expect("plan parses"));
        router.install_fault_plan(Some(Arc::clone(&plan)));
        let client = router.client();
        for i in 0..6 {
            let _ = client.call(query(64 + i));
        }
        router.shutdown();
        plan.trace()
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "same seed + same traffic must replay identically");
    assert!(first.contains("shard 1 lost"), "{first}");
}
