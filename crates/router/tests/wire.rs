//! The router's TCP wire: the server's wire-v2 JSONL, fronted by the
//! fleet. A client cannot tell a router from a server except by asking:
//! `health` answers with `"shard":null` (the router is the front),
//! `topology` and the router-scoped `metrics` answer only here, and
//! `stats`/`trace` refuse with the `unsupported` kind (per-shard state
//! — probe a shard).
//! Everything else scatters, gathers, and comes back bit-identical to a
//! serial engine, in slot order, parse errors included.

use parspeed_engine::{jsonl, ArchKind, Engine, Query, Request, WIRE_VERSION};
use parspeed_router::{Router, RouterConfig};
use parspeed_server::ServerConfig;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

fn start_tcp_router(shards: usize) -> (Router, SocketAddr) {
    let mut router = Router::start(RouterConfig {
        shards,
        backend: ServerConfig {
            window: Duration::from_micros(300),
            max_batch: 64,
            ..ServerConfig::default()
        },
        ..RouterConfig::default()
    });
    let addr = router.listen(("127.0.0.1", 0)).expect("bind");
    (router, addr)
}

/// Writes `lines`, half-closes, and reads the full ordered reply stream.
fn roundtrip(addr: SocketAddr, lines: &[&str]) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    for line in lines {
        stream.write_all(line.as_bytes()).expect("write");
        stream.write_all(b"\n").expect("write");
    }
    stream.shutdown(Shutdown::Write).expect("half-close");
    BufReader::new(stream).lines().map(|l| l.expect("read")).collect()
}

fn optimize(n: usize) -> Query {
    Request::optimize(ArchKind::SyncBus, n).procs(64).query()
}

#[test]
fn queries_scatter_and_come_back_bit_identical_in_slot_order() {
    let (router, addr) = start_tcp_router(3);
    let lines = [
        r#"{"op":"optimize","version":2,"arch":"sync-bus","n":256,"stencil":"5pt","shape":"square","procs":64}"#,
        "not json at all",
        r#"{"op":"optimize","version":2,"arch":"sync-bus","n":128,"stencil":"5pt","shape":"square","procs":64}"#,
        r#"{"op":"optimize","version":2,"arch":"sync-bus","n":256,"stencil":"5pt","shape":"square","procs":64}"#,
    ];
    let replies = roundtrip(addr, &lines);
    assert_eq!(replies.len(), 4, "{replies:?}");

    // The engine's own rendered lines are the byte-level reference.
    let engine = Engine::default();
    let expect = |q: Query, line_no: usize| {
        let response = engine.run_batch(std::slice::from_ref(&q)).responses.remove(0);
        jsonl::render_response(&q, &response, WIRE_VERSION, line_no)
    };
    assert_eq!(replies[0], expect(optimize(256), 1));
    assert_eq!(replies[2], expect(optimize(128), 3));
    assert_eq!(replies[3], expect(optimize(256), 4));

    // The garbage line answers its own slot and poisons nothing — in
    // the *current* wire shape (version + machine-readable error_kind),
    // the same rule a standalone server applies: a line that is not
    // JSON has no version field to honor, so it must not be answered in
    // the legacy v1 shape that lacks the v2 error machinery.
    let err = jsonl::parse(&replies[1]).expect("reply is JSON");
    assert_eq!(err.get("ok"), Some(&jsonl::Json::Bool(false)), "{}", replies[1]);
    assert_eq!(err.get("version").unwrap().as_usize(), Some(2), "{}", replies[1]);
    assert_eq!(err.get("error_kind").unwrap().as_str(), Some("parse"), "{}", replies[1]);
    assert_eq!(err.get("line").unwrap().as_usize(), Some(2), "{}", replies[1]);

    router.shutdown();
}

#[test]
fn huge_deadline_budget_saturates_at_the_router_too() {
    let (router, addr) = start_tcp_router(2);
    // Same clamp as the server frontend: an unrepresentable budget
    // (`Instant + u64::MAX ms` would overflow) means "no deadline", not
    // a dead frontend thread and a wedged connection.
    let huge = format!(
        r#"{{"op":"optimize","version":2,"arch":"sync-bus","n":256,"stencil":"5pt","shape":"square","procs":64,"deadline_ms":{}}}"#,
        u64::MAX
    );
    let replies = roundtrip(
        addr,
        &[
            &huge,
            r#"{"op":"optimize","version":2,"arch":"sync-bus","n":128,"stencil":"5pt","shape":"square","procs":64}"#,
        ],
    );
    assert_eq!(replies.len(), 2, "connection died on the huge deadline: {replies:?}");
    for line in &replies {
        let v = jsonl::parse(line).expect("reply is JSON");
        assert_eq!(v.get("ok"), Some(&jsonl::Json::Bool(true)), "{line}");
    }
    router.shutdown();
}

#[test]
fn health_and_topology_answer_at_the_router_level() {
    let (router, addr) = start_tcp_router(3);
    let replies =
        roundtrip(addr, &[r#"{"op":"health","version":2}"#, r#"{"op":"topology","version":2}"#]);
    assert_eq!(replies.len(), 2, "{replies:?}");

    let health = jsonl::parse(&replies[0]).expect("health is JSON");
    assert_eq!(health.get("op").unwrap().as_str(), Some("health"));
    assert_eq!(health.get("ok"), Some(&jsonl::Json::Bool(true)));
    assert_eq!(health.get("draining"), Some(&jsonl::Json::Bool(false)));
    // The router is the front, not a backend.
    assert_eq!(health.get("shard"), Some(&jsonl::Json::Null), "{}", replies[0]);
    // Additive only: the frozen six-field prefix stays first, then the
    // per-shard breaker summary appends.
    let jsonl::Json::Obj(fields) = &health else { panic!("health is not an object") };
    let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        ["version", "op", "ok", "uptime_seconds", "draining", "shard", "breakers"],
        "{}",
        replies[0]
    );
    assert_eq!(
        health.get("breakers"),
        Some(&jsonl::Json::Arr(vec![
            jsonl::Json::Str("closed".into()),
            jsonl::Json::Str("closed".into()),
            jsonl::Json::Str("closed".into()),
        ])),
        "{}",
        replies[0]
    );

    let topology = jsonl::parse(&replies[1]).expect("topology is JSON");
    assert_eq!(topology.get("op").unwrap().as_str(), Some("topology"));
    assert_eq!(topology.get("shards").unwrap().as_usize(), Some(3));
    assert_eq!(
        topology.get("members"),
        Some(&jsonl::Json::Arr(vec![
            jsonl::Json::Num(0.0),
            jsonl::Json::Num(1.0),
            jsonl::Json::Num(2.0),
        ])),
        "{}",
        replies[1]
    );

    router.shutdown();
}

#[test]
fn router_metrics_answers_the_router_scoped_record() {
    let (router, addr) = start_tcp_router(2);
    let replies = roundtrip(addr, &[r#"{"op":"metrics","version":2}"#]);
    assert_eq!(replies.len(), 1, "{replies:?}");
    let v = jsonl::parse(&replies[0]).expect("metrics is JSON");
    assert_eq!(v.get("op").unwrap().as_str(), Some("metrics"), "{}", replies[0]);
    assert_eq!(v.get("scope").unwrap().as_str(), Some("router"), "{}", replies[0]);
    let resilience = v.get("resilience").expect("resilience object");
    assert_eq!(resilience.get("retries").unwrap().as_usize(), Some(0), "{}", replies[0]);
    assert!(replies[0].contains(r#"{"shard":0,"state":"closed"}"#), "{}", replies[0]);
    router.shutdown();
}

#[test]
fn per_shard_ops_refuse_with_the_unsupported_kind() {
    let (router, addr) = start_tcp_router(2);
    for (i, op) in ["stats", "trace"].iter().enumerate() {
        let replies = roundtrip(addr, &[&format!(r#"{{"op":"{op}","version":2}}"#)]);
        assert_eq!(replies.len(), 1, "op {op}");
        let v = jsonl::parse(&replies[0]).expect("reply is JSON");
        assert_eq!(v.get("ok"), Some(&jsonl::Json::Bool(false)), "op {op}: {}", replies[0]);
        assert_eq!(
            v.get("error_kind").unwrap().as_str(),
            Some("unsupported"),
            "op {op}: {}",
            replies[0]
        );
        let msg = v.get("error").unwrap().as_str().unwrap_or_default().to_string();
        assert!(msg.contains("per-shard"), "op {op} (conn {i}): {msg}");
    }
    // A backend, probed directly, still answers its own health with its
    // shard id — the router/backend distinction is visible on the wire.
    router.shutdown();
}

#[test]
fn draining_router_finishes_open_connections_with_refusals_not_resets() {
    let (router, addr) = start_tcp_router(2);
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            b"{\"op\":\"optimize\",\"version\":2,\"arch\":\"sync-bus\",\"n\":256,\
              \"stencil\":\"5pt\",\"shape\":\"square\",\"procs\":64}\n",
        )
        .expect("write");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut first = String::new();
    reader.read_line(&mut first).expect("first reply");
    assert!(first.contains(r#""ok":true"#), "{first}");

    // Shutdown with the connection open: the stream flushes and closes
    // cleanly (EOF), never a reset mid-reply.
    let done = std::thread::spawn(move || router.shutdown());
    let mut rest = String::new();
    while reader.read_line(&mut rest).expect("read to EOF") > 0 {}
    done.join().expect("shutdown");
}
