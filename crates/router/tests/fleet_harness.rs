//! Deterministic fleet harness: the server's scripted multi-client
//! driver, pointed at a sharded router.
//!
//! The serving guarantees must survive the scatter: a reply stream that
//! was complete, per-connection ordered, and leak-free through one
//! server must stay so when requests fan out across shards and gather
//! back. Every script's expected answers come from a serial
//! [`Engine::run_batch`] on a reference engine — the serial-identity
//! property extended to the fleet.

use parspeed_engine::{jsonl, ArchKind, Engine, Query, Request, Response, WIRE_VERSION};
use parspeed_router::{Router, RouterConfig};
use parspeed_server::ServerConfig;
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Deterministic script randomness (splitmix-style LCG).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// The query for one `(client, tag)` slot: unique grid side per slot,
/// so a leaked or swapped reply is always a visible value mismatch.
fn query_for(client: usize, tag: usize) -> Query {
    assert!(tag < 101);
    Request::optimize(ArchKind::SyncBus, 64 + (client * 101 + tag)).procs(32).query()
}

fn fleet(shards: usize, window: Duration) -> Router {
    Router::start(RouterConfig {
        shards,
        backend: ServerConfig { window, max_batch: 4096, ..ServerConfig::default() },
        ..RouterConfig::default()
    })
}

/// Runs one scripted schedule through a 3-shard fleet and checks every
/// reply against the serial reference.
fn run_script(seed: u64) {
    let mut lcg = Lcg(seed);
    let clients = 2 + lcg.below(4) as usize; // 2..=5
    let waves = 1 + lcg.below(3) as usize; // 1..=3
    let counts: Vec<Vec<usize>> =
        (0..clients).map(|_| (0..waves).map(|_| lcg.below(5) as usize).collect()).collect();

    let mut slot_queries: Vec<(usize, usize)> = Vec::new();
    for (c, per_wave) in counts.iter().enumerate() {
        let total: usize = per_wave.iter().sum();
        for tag in 0..total {
            slot_queries.push((c, tag));
        }
    }
    let queries: Vec<Query> = slot_queries.iter().map(|&(c, t)| query_for(c, t)).collect();
    let expected = Engine::default().run_batch(&queries).responses;
    let expect_for = |client: usize, tag: usize| -> &Response {
        let idx = slot_queries.iter().position(|&s| s == (client, tag)).unwrap();
        &expected[idx]
    };

    let router = fleet(3, Duration::from_micros(300));
    let barrier = Arc::new(Barrier::new(clients));
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let client = router.client();
            let barrier = Arc::clone(&barrier);
            let per_wave = counts[c].clone();
            std::thread::spawn(move || {
                let mut tag = 0usize;
                for &count in &per_wave {
                    barrier.wait();
                    for _ in 0..count {
                        let seq = client.submit(query_for(c, tag));
                        assert_eq!(seq, tag as u64, "client {c}: seq allocation out of order");
                        tag += 1;
                    }
                }
                let replies: Vec<(u64, Response)> = (0..tag).map(|_| client.recv()).collect();
                (c, replies)
            })
        })
        .collect();

    for handle in handles {
        let (c, replies) = handle.join().expect("client thread");
        let total: usize = counts[c].iter().sum();
        assert_eq!(replies.len(), total, "client {c}: incomplete replies (seed {seed})");
        for (i, (seq, response)) in replies.iter().enumerate() {
            assert_eq!(*seq, i as u64, "client {c}: replies out of order (seed {seed})");
            assert_eq!(
                response,
                expect_for(c, i),
                "client {c} slot {i}: wrong answer through the fleet (seed {seed})"
            );
        }
    }
    let stats = router.shutdown();
    let total: u64 = counts.iter().flatten().map(|&n| n as u64).sum();
    let completed: u64 = stats.iter().map(|(_, s)| s.completed).sum();
    let overloaded: u64 = stats.iter().map(|(_, s)| s.overloaded).sum();
    assert_eq!(completed, total, "fleet lost work (seed {seed})");
    assert_eq!(overloaded, 0, "fleet refused work (seed {seed})");
}

#[test]
fn scripted_interleavings_stay_ordered_and_leak_free_through_the_fleet() {
    for seed in 0..12 {
        run_script(seed);
    }
}

/// The CI smoke: 8 clients hammer a shared 24-key duplicated pool —
/// 200 requests, 3 shards. Asserts the three fleet claims at once:
/// replies are wire-bit-identical to the serial engine, key affinity
/// keeps every distinct key cached on exactly one shard (the aggregate
/// fleet cache holds the whole pool with no double-caching), and the
/// drain is clean (every backend accounted for, nothing refused).
#[test]
fn duplicated_pool_smoke_affinity_and_identical_replies() {
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 25;
    const DISTINCT: usize = 24;

    let router = fleet(3, Duration::from_millis(5));
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let client = router.client();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                // Every client cycles the same pool, phase-shifted: all
                // duplication is cross-client by construction.
                let tags: Vec<usize> = (0..PER_CLIENT).map(|i| (c + i) % DISTINCT).collect();
                for &tag in &tags {
                    client.submit(query_for(0, tag));
                }
                let replies: Vec<(u64, Response)> =
                    (0..PER_CLIENT).map(|_| client.recv()).collect();
                (c, tags, replies)
            })
        })
        .collect();

    let pool: Vec<Query> = (0..DISTINCT).map(|tag| query_for(0, tag)).collect();
    let reference = Engine::default().run_batch(&pool).responses;
    for handle in handles {
        let (c, tags, replies) = handle.join().expect("client thread");
        for (i, ((seq, response), &tag)) in replies.iter().zip(&tags).enumerate() {
            assert_eq!(*seq, i as u64, "client {c} out of order");
            // Wire-level bit-identity: the rendered reply line through
            // the fleet equals the serial engine's rendered line.
            let got = jsonl::render_response(&pool[tag], response, WIRE_VERSION, i + 1);
            let want = jsonl::render_response(&pool[tag], &reference[tag], WIRE_VERSION, i + 1);
            assert_eq!(got, want, "client {c} slot {i}");
        }
    }

    // Key affinity: the fleet caches each distinct key exactly once.
    let resident = router.resident_keys();
    let total: usize = resident.iter().map(|(_, n)| n).sum();
    assert_eq!(total, DISTINCT, "affinity broken: {resident:?}");
    assert!(
        resident.iter().all(|&(_, n)| n > 0),
        "a shard owned no keys (24 keys over 3 shards): {resident:?}"
    );

    let stats = router.shutdown();
    assert_eq!(stats.len(), 3, "a backend vanished during drain");
    let completed: u64 = stats.iter().map(|(_, s)| s.completed).sum();
    assert_eq!(completed, (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(stats.iter().map(|(_, s)| s.overloaded).sum::<u64>(), 0);
    // Cross-client coalescing still happens on the far side of the
    // scatter: shards see micro-batches, not single requests.
    let batches: u64 = stats.iter().map(|(_, s)| s.batches).sum();
    assert!(batches < (CLIENTS * PER_CLIENT) as u64, "no shard ever coalesced");
}
