//! Stage-by-stage timing of the engine pipeline on the benchmark batch
//! (10k atoms, 400 unique): planning, parallel vs sequential evaluation,
//! cold and warm `run_batch`, and the naive per-query baseline.
//!
//! ```sh
//! cargo run --release -p parspeed-engine --example profile_engine
//! ```

use parspeed_engine::*;
use std::time::Instant;

fn main() {
    let stencils = [StencilSpec::FivePoint, StencilSpec::NinePointBox];
    let shapes = [ShapeKey::Strip, ShapeKey::Square];
    let sizes = [256usize, 512, 1024, 2048, 4096];
    let budgets = [Some(8), Some(16), Some(32), Some(64), None];
    let archs = [ArchKind::SyncBus, ArchKind::AsyncBus, ArchKind::Hypercube, ArchKind::Banyan];
    let mut unique = Vec::new();
    for arch in archs {
        for stencil in stencils {
            for shape in shapes {
                for n in sizes {
                    for procs in budgets {
                        unique.push(Query::Optimize {
                            arch,
                            machine: MachineSpec::default(),
                            workload: WorkloadSpec { n, stencil, shape },
                            procs,
                            memory_words: None,
                        });
                    }
                }
            }
        }
    }
    let batch: Vec<Query> = (0..10_000).map(|i| unique[i % unique.len()].clone()).collect();

    let t = Instant::now();
    let plan = Plan::build(&batch);
    println!("plan: {:?} ({} unique)", t.elapsed(), plan.unique.len());

    let t = Instant::now();
    let outs = exec::evaluate_all(&plan.unique, None);
    println!("eval par: {:?} ({} outcomes)", t.elapsed(), outs.len());
    let t = Instant::now();
    let outs2: Vec<_> = plan.unique.iter().map(exec::evaluate).collect();
    println!("eval seq: {:?}", t.elapsed());
    assert_eq!(outs, outs2);

    let engine = Engine::builder().build();
    let t = Instant::now();
    let out = engine.run_batch(&batch);
    println!("run_batch cold: {:?}", t.elapsed());
    let t = Instant::now();
    let out2 = engine.run_batch(&batch);
    println!("run_batch warm: {:?}", t.elapsed());
    assert_eq!(out.responses.len(), out2.responses.len());

    let t = Instant::now();
    let naive = eval_naive(&batch);
    println!("naive: {:?}", t.elapsed());
    assert_eq!(naive.len(), batch.len());
}
