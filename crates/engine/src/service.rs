//! The versioned service surface: one typed request/response envelope
//! covering every capability of the workspace.
//!
//! A [`Request`] is a wire-versioned batch of [`Query`]s; a [`Service`]
//! turns it into a [`ServiceReply`] whose responses line up with the
//! request's queries in order. [`Engine`] is the canonical implementation:
//! every query — analytic point queries, macro-queries, event-level
//! simulations, real numerical solves, wall-clock measurements, experiment
//! regenerations — goes through the same plan → dedup → cache → parallel
//! execute pipeline, so there is no longer a fast path and a slow path
//! into the models, just *the* path.
//!
//! Requests are built either directly (`Request::new(queries)`) or through
//! the builder-style constructors, which mirror the CLI's defaults:
//!
//! ```
//! use parspeed_engine::{ArchKind, Engine, EvalValue, Request, Response, Service};
//!
//! let engine = Engine::builder().build();
//! let request = Request::optimize(ArchKind::SyncBus, 256).procs(64).build();
//! let reply = engine.call(&request).unwrap();
//! match &reply.responses[0] {
//!     Response::Single(Ok(EvalValue::Optimum { processors, .. })) => {
//!         assert_eq!(*processors, 14); // the paper's §6.1 anchor
//!     }
//!     other => panic!("unexpected {other:?}"),
//! }
//! ```
//!
//! # Versioning
//!
//! The envelope carries an explicit `version`. [`WIRE_VERSION`] (2) is
//! current; version 1 — the PR-1 era implicit schema — is still accepted,
//! and the reply's `deprecation` field says so. Versions above 2 are
//! refused with [`ParspeedError::Unsupported`].

use crate::error::ParspeedError;
use crate::request::{
    ArchKind, CheckSpec, Lever, MachineSpec, MinSizeVariant, Query, ShapeKey, SimArchKind,
    SolverKind, StencilSpec, WorkloadSpec,
};
use crate::telemetry::BatchTelemetry;
use crate::{Engine, Response};
use std::sync::Arc;

/// The current wire/envelope schema version.
pub const WIRE_VERSION: u32 = 2;

/// The oldest version still accepted (with a deprecation note).
pub const MIN_WIRE_VERSION: u32 = 1;

/// A versioned batch of queries — the one request shape every capability
/// goes through.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Envelope schema version (see [`WIRE_VERSION`]).
    pub version: u32,
    /// The queries, answered in order.
    pub queries: Vec<Query>,
}

impl Request {
    /// A current-version request over a batch of queries.
    pub fn new(queries: Vec<Query>) -> Self {
        Request { version: WIRE_VERSION, queries }
    }

    /// A current-version request over one query.
    pub fn single(query: Query) -> Self {
        Request::new(vec![query])
    }

    /// The same request re-stamped with another version (for talking to a
    /// service on an older schema, or testing version handling).
    pub fn with_version(mut self, version: u32) -> Self {
        self.version = version;
        self
    }

    /// Builder: optimal processor count and speedup for one instance.
    pub fn optimize(arch: ArchKind, n: usize) -> OptimizeBuilder {
        OptimizeBuilder {
            arch,
            machine: MachineSpec::default(),
            n,
            stencil: StencilSpec::FivePoint,
            shape: ShapeKey::Square,
            procs: None,
            memory_words: None,
        }
    }

    /// Builder: smallest gainful grid for a full machine (Fig. 7).
    pub fn minsize(variant: MinSizeVariant, procs: usize) -> MinSizeBuilder {
        MinSizeBuilder { variant, machine: MachineSpec::default(), e: 6.0, k: 1.0, procs }
    }

    /// Builder: smallest grid reaching a target efficiency.
    pub fn isoeff(arch: ArchKind, procs: usize, efficiency: f64) -> IsoeffBuilder {
        IsoeffBuilder {
            arch,
            machine: MachineSpec::default(),
            stencil: StencilSpec::FivePoint,
            shape: ShapeKey::Square,
            procs,
            efficiency,
        }
    }

    /// Builder: what a hardware upgrade buys (§6.1).
    pub fn leverage(lever: Lever, factor: f64, n: usize) -> LeverageBuilder {
        LeverageBuilder {
            machine: MachineSpec::default(),
            n,
            stencil: StencilSpec::FivePoint,
            shape: ShapeKey::Square,
            procs: None,
            lever,
            factor,
        }
    }

    /// Builder: the paper's closing Table I at one grid size.
    pub fn table1(n: usize) -> Table1Builder {
        Table1Builder { machine: MachineSpec::default(), n, stencil: StencilSpec::FivePoint }
    }

    /// Builder: every architecture side by side on one instance.
    pub fn compare(n: usize) -> CompareBuilder {
        CompareBuilder {
            machine: MachineSpec::default(),
            n,
            stencil: StencilSpec::FivePoint,
            shape: ShapeKey::Square,
            procs: None,
        }
    }

    /// Builder: one event-level iteration beside the closed form.
    pub fn simulate(arch: SimArchKind, n: usize, procs: usize) -> SimulateBuilder {
        SimulateBuilder {
            arch,
            machine: MachineSpec::default(),
            n,
            stencil: StencilSpec::FivePoint,
            shape: ShapeKey::Strip,
            procs,
        }
    }

    /// Builder: actually solve the manufactured Poisson problem.
    pub fn solve(n: usize) -> SolveBuilder {
        SolveBuilder {
            n,
            solver: SolverKind::Jacobi,
            tol: 1e-8,
            stencil: StencilSpec::FivePoint,
            partitions: 4,
            max_iters: 200_000,
            check: None,
        }
    }

    /// Builder: time the real rayon executor across thread counts.
    pub fn threads(n: usize) -> ThreadsBuilder {
        ThreadsBuilder {
            n,
            stencil: StencilSpec::FivePoint,
            shape: ShapeKey::Strip,
            threads: vec![1, 2, 4, 8],
            iters: 20,
            repeats: 3,
        }
    }

    /// Builder: a grid of optimize queries with doubling sides.
    pub fn sweep(n_from: usize, n_to: usize) -> SweepBuilder {
        SweepBuilder {
            archs: vec![ArchKind::SyncBus],
            machine: MachineSpec::default(),
            stencils: vec![StencilSpec::FivePoint],
            shapes: vec![ShapeKey::Square],
            budgets: vec![None],
            n_from,
            n_to,
        }
    }

    /// Builder: regenerate a reproduction experiment.
    pub fn experiment(id: impl Into<String>) -> ExperimentBuilder {
        ExperimentBuilder { id: id.into(), quick: false }
    }
}

macro_rules! setter {
    ($(#[$doc:meta])* $name:ident: $ty:ty) => {
        $(#[$doc])*
        pub fn $name(mut self, $name: $ty) -> Self {
            self.$name = $name;
            self
        }
    };
}

macro_rules! finishers {
    () => {
        /// Wraps the built query in a single-query current-version
        /// [`Request`].
        pub fn build(self) -> Request {
            Request::single(self.query())
        }
    };
}

/// Builds a [`Query::Optimize`].
#[derive(Debug, Clone, Copy)]
pub struct OptimizeBuilder {
    arch: ArchKind,
    machine: MachineSpec,
    n: usize,
    stencil: StencilSpec,
    shape: ShapeKey,
    procs: Option<usize>,
    memory_words: Option<f64>,
}

impl OptimizeBuilder {
    setter!(/// Machine description (preset plus overrides).
        machine: MachineSpec);
    setter!(/// Stencil (named or custom constants). Default 5-point.
        stencil: StencilSpec);
    setter!(/// Partition shape. Default square.
        shape: ShapeKey);

    /// Caps the machine at `procs` processors (default: unlimited).
    pub fn procs(mut self, procs: usize) -> Self {
        self.procs = Some(procs);
        self
    }

    /// Adds a per-processor memory budget in words (fractional budgets
    /// are legal — the model is continuous).
    pub fn memory_words(mut self, words: f64) -> Self {
        self.memory_words = Some(words);
        self
    }

    /// The built query.
    pub fn query(self) -> Query {
        Query::Optimize {
            arch: self.arch,
            machine: self.machine,
            workload: WorkloadSpec { n: self.n, stencil: self.stencil, shape: self.shape },
            procs: self.procs,
            memory_words: self.memory_words,
        }
    }

    finishers!();
}

/// Builds a [`Query::MinSize`].
#[derive(Debug, Clone, Copy)]
pub struct MinSizeBuilder {
    variant: MinSizeVariant,
    machine: MachineSpec,
    e: f64,
    k: f64,
    procs: usize,
}

impl MinSizeBuilder {
    setter!(/// Machine description.
        machine: MachineSpec);
    setter!(/// `E(S)` constant. Default 6.0 (5-point).
        e: f64);
    setter!(/// `k(P,S)` constant (continuous). Default 1.0.
        k: f64);

    /// The built query.
    pub fn query(self) -> Query {
        Query::MinSize {
            variant: self.variant,
            machine: self.machine,
            e: self.e,
            k: self.k,
            procs: self.procs,
        }
    }

    finishers!();
}

/// Builds a [`Query::Isoefficiency`].
#[derive(Debug, Clone, Copy)]
pub struct IsoeffBuilder {
    arch: ArchKind,
    machine: MachineSpec,
    stencil: StencilSpec,
    shape: ShapeKey,
    procs: usize,
    efficiency: f64,
}

impl IsoeffBuilder {
    setter!(/// Machine description.
        machine: MachineSpec);
    setter!(/// Stencil. Default 5-point.
        stencil: StencilSpec);
    setter!(/// Partition shape. Default square.
        shape: ShapeKey);

    /// The built query.
    pub fn query(self) -> Query {
        Query::Isoefficiency {
            arch: self.arch,
            machine: self.machine,
            stencil: self.stencil,
            shape: self.shape,
            procs: self.procs,
            efficiency: self.efficiency,
        }
    }

    finishers!();
}

/// Builds a [`Query::Leverage`].
#[derive(Debug, Clone, Copy)]
pub struct LeverageBuilder {
    machine: MachineSpec,
    n: usize,
    stencil: StencilSpec,
    shape: ShapeKey,
    procs: Option<usize>,
    lever: Lever,
    factor: f64,
}

impl LeverageBuilder {
    setter!(/// Machine description.
        machine: MachineSpec);
    setter!(/// Stencil. Default 5-point.
        stencil: StencilSpec);
    setter!(/// Partition shape. Default square.
        shape: ShapeKey);

    /// Caps the machine at `procs` processors (default: unlimited).
    pub fn procs(mut self, procs: usize) -> Self {
        self.procs = Some(procs);
        self
    }

    /// The built query.
    pub fn query(self) -> Query {
        Query::Leverage {
            machine: self.machine,
            workload: WorkloadSpec { n: self.n, stencil: self.stencil, shape: self.shape },
            procs: self.procs,
            lever: self.lever,
            factor: self.factor,
        }
    }

    finishers!();
}

/// Builds a [`Query::Table1`].
#[derive(Debug, Clone, Copy)]
pub struct Table1Builder {
    machine: MachineSpec,
    n: usize,
    stencil: StencilSpec,
}

impl Table1Builder {
    setter!(/// Machine description.
        machine: MachineSpec);
    setter!(/// Stencil (catalog only). Default 5-point.
        stencil: StencilSpec);

    /// The built query.
    pub fn query(self) -> Query {
        Query::Table1 { machine: self.machine, n: self.n, stencil: self.stencil }
    }

    finishers!();
}

/// Builds a [`Query::Compare`].
#[derive(Debug, Clone, Copy)]
pub struct CompareBuilder {
    machine: MachineSpec,
    n: usize,
    stencil: StencilSpec,
    shape: ShapeKey,
    procs: Option<usize>,
}

impl CompareBuilder {
    setter!(/// Machine description.
        machine: MachineSpec);
    setter!(/// Stencil. Default 5-point.
        stencil: StencilSpec);
    setter!(/// Partition shape. Default square.
        shape: ShapeKey);

    /// Caps every architecture at `procs` processors (default: unlimited).
    pub fn procs(mut self, procs: usize) -> Self {
        self.procs = Some(procs);
        self
    }

    /// The built query.
    pub fn query(self) -> Query {
        Query::Compare {
            machine: self.machine,
            workload: WorkloadSpec { n: self.n, stencil: self.stencil, shape: self.shape },
            procs: self.procs,
        }
    }

    finishers!();
}

/// Builds a [`Query::Simulate`].
#[derive(Debug, Clone, Copy)]
pub struct SimulateBuilder {
    arch: SimArchKind,
    machine: MachineSpec,
    n: usize,
    stencil: StencilSpec,
    shape: ShapeKey,
    procs: usize,
}

impl SimulateBuilder {
    setter!(/// Machine description.
        machine: MachineSpec);
    setter!(/// Stencil (catalog only). Default 5-point.
        stencil: StencilSpec);
    setter!(/// Partition shape. Default strip.
        shape: ShapeKey);

    /// The built query.
    pub fn query(self) -> Query {
        Query::Simulate {
            arch: self.arch,
            machine: self.machine,
            workload: WorkloadSpec { n: self.n, stencil: self.stencil, shape: self.shape },
            procs: self.procs,
        }
    }

    finishers!();
}

/// Builds a [`Query::Solve`].
#[derive(Debug, Clone, Copy)]
pub struct SolveBuilder {
    n: usize,
    solver: SolverKind,
    tol: f64,
    stencil: StencilSpec,
    partitions: usize,
    max_iters: usize,
    check: Option<CheckSpec>,
}

impl SolveBuilder {
    setter!(/// Which solver. Default Jacobi.
        solver: SolverKind);
    setter!(/// Convergence tolerance. Default 1e-8.
        tol: f64);
    setter!(/// Stencil (catalog only). Default 5-point.
        stencil: StencilSpec);
    setter!(/// Strip count for the parallel solver. Default 4.
        partitions: usize);
    setter!(/// Iteration cap. Default 200 000.
        max_iters: usize);

    /// Convergence-check schedule (wire field `check_policy`). Default:
    /// unset, i.e. the solver's historical behaviour — `every:1` for the
    /// sequential solvers, `geometric` for the parallel executor. Sparse
    /// schedules also widen the communication-avoiding blocks: temporal
    /// tiling in the sequential Jacobi path, deep-halo sub-iteration
    /// blocks in the partitioned one. Spelling out a solver's own default
    /// is canonicalized back to unset, so both forms share a cache line.
    pub fn check_policy(mut self, check: CheckSpec) -> Self {
        self.check = Some(check);
        self
    }

    /// The built query.
    pub fn query(self) -> Query {
        Query::Solve {
            n: self.n,
            solver: self.solver,
            tol: self.tol,
            stencil: self.stencil,
            partitions: self.partitions,
            max_iters: self.max_iters,
            check: self.check,
        }
    }

    finishers!();
}

/// Builds a [`Query::Threads`].
#[derive(Debug, Clone)]
pub struct ThreadsBuilder {
    n: usize,
    stencil: StencilSpec,
    shape: ShapeKey,
    threads: Vec<usize>,
    iters: usize,
    repeats: usize,
}

impl ThreadsBuilder {
    setter!(/// Stencil (catalog only). Default 5-point.
        stencil: StencilSpec);
    setter!(/// Partition shape. Default strip.
        shape: ShapeKey);
    setter!(/// Thread counts to measure. Default `[1, 2, 4, 8]`.
        threads: Vec<usize>);
    setter!(/// Timed iterations per measurement. Default 20.
        iters: usize);
    setter!(/// Best-of repetitions. Default 3.
        repeats: usize);

    /// The built query.
    pub fn query(self) -> Query {
        Query::Threads {
            n: self.n,
            stencil: self.stencil,
            shape: self.shape,
            threads: self.threads,
            iters: self.iters,
            repeats: self.repeats,
        }
    }

    finishers!();
}

/// Builds a [`Query::Sweep`].
#[derive(Debug, Clone)]
pub struct SweepBuilder {
    archs: Vec<ArchKind>,
    machine: MachineSpec,
    stencils: Vec<StencilSpec>,
    shapes: Vec<ShapeKey>,
    budgets: Vec<Option<usize>>,
    n_from: usize,
    n_to: usize,
}

impl SweepBuilder {
    setter!(/// Architectures to sweep. Default `[SyncBus]`.
        archs: Vec<ArchKind>);
    setter!(/// Machine description (shared by the whole sweep).
        machine: MachineSpec);
    setter!(/// Stencils. Default `[FivePoint]`.
        stencils: Vec<StencilSpec>);
    setter!(/// Shapes. Default `[Square]`.
        shapes: Vec<ShapeKey>);
    setter!(/// Budgets (`None` = unlimited). Default `[None]`.
        budgets: Vec<Option<usize>>);

    /// The built query.
    pub fn query(self) -> Query {
        Query::Sweep {
            archs: self.archs,
            machine: self.machine,
            stencils: self.stencils,
            shapes: self.shapes,
            budgets: self.budgets,
            n_from: self.n_from,
            n_to: self.n_to,
        }
    }

    finishers!();
}

/// Builds a [`Query::Experiment`].
#[derive(Debug, Clone)]
pub struct ExperimentBuilder {
    id: String,
    quick: bool,
}

impl ExperimentBuilder {
    setter!(/// Trim the sweeps. Default false.
        quick: bool);

    /// The built query.
    pub fn query(self) -> Query {
        Query::Experiment { id: self.id, quick: self.quick }
    }

    finishers!();
}

/// A service's answer: responses in request order plus batch telemetry.
#[derive(Debug, Clone)]
pub struct ServiceReply {
    /// The schema version the service speaks (always [`WIRE_VERSION`]).
    pub version: u32,
    /// Present when the request used a deprecated (but accepted) version.
    pub deprecation: Option<String>,
    /// One response per request query, in request order.
    pub responses: Vec<Response>,
    /// What the pipeline did.
    pub telemetry: BatchTelemetry,
}

/// The slot address of one query inside a multi-client batch: which
/// client submitted it and where it sits in that client's submission
/// order. Concurrent frontends (the `parspeed-server` micro-batcher) tag
/// every query with one of these before coalescing traffic from many
/// connections into a single engine batch, so each reply can be routed
/// back to exactly the slot that asked for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotAddr {
    /// The submitting client/connection, by frontend-assigned id.
    pub client: u64,
    /// The query's 0-based sequence number within that client's stream.
    pub seq: u64,
}

/// A batch of pre-tagged queries from (potentially) many clients — the
/// input shape of [`Service::call_tagged`].
#[derive(Debug, Clone, PartialEq)]
pub struct TaggedRequest {
    /// Envelope schema version (see [`WIRE_VERSION`]).
    pub version: u32,
    /// The tagged queries, answered in order.
    pub queries: Vec<(SlotAddr, Query)>,
}

impl TaggedRequest {
    /// A current-version tagged batch.
    pub fn new(queries: Vec<(SlotAddr, Query)>) -> Self {
        TaggedRequest { version: WIRE_VERSION, queries }
    }
}

/// A service's answer to a [`TaggedRequest`]: slot-addressed replies in
/// request order plus the batch telemetry.
#[derive(Debug, Clone)]
pub struct TaggedReply {
    /// One `(slot, response)` pair per tagged query, in request order —
    /// each response carries the exact tag its query arrived with.
    pub replies: Vec<(SlotAddr, Response)>,
    /// Present when the request used a deprecated (but accepted) version.
    pub deprecation: Option<String>,
    /// What the pipeline did for the whole coalesced batch.
    pub telemetry: BatchTelemetry,
}

/// Anything that can answer a [`Request`]. [`Engine`] is the canonical
/// implementation; wrap it to add authentication, rate limiting, remoting —
/// the envelope stays the same.
pub trait Service {
    /// Answers every query of the request, in order. `Err` is reserved for
    /// envelope-level failures (unsupported version); per-query failures
    /// come back as [`Response::Invalid`] or error outcomes in their own
    /// slots.
    fn call(&self, request: &Request) -> Result<ServiceReply, ParspeedError>;

    /// Answers a pre-tagged multi-client batch with slot-addressed
    /// replies. This is the entry point concurrent frontends funnel
    /// coalesced cross-client traffic through: the queries run as *one*
    /// batch (so dedup and the result cache amortize across clients), and
    /// every response comes back paired with the [`SlotAddr`] its query
    /// arrived with, in request order. The default implementation
    /// delegates to [`Service::call`], so every service gets slot
    /// addressing for free.
    fn call_tagged(&self, request: &TaggedRequest) -> Result<TaggedReply, ParspeedError> {
        let queries: Vec<Query> = request.queries.iter().map(|(_, q)| q.clone()).collect();
        let reply = self.call(&Request { version: request.version, queries })?;
        debug_assert_eq!(reply.responses.len(), request.queries.len());
        let replies = request.queries.iter().map(|(slot, _)| *slot).zip(reply.responses).collect();
        Ok(TaggedReply { replies, deprecation: reply.deprecation, telemetry: reply.telemetry })
    }

    /// Installs a per-stage latency [`Recorder`](crate::Recorder) —
    /// how a serving layer asks the service to attribute
    /// plan/dedup/cache/exec time without the engine depending on the
    /// server. The default is a no-op (most services have nothing to
    /// attribute); [`Engine`] stores the recorder and reports through
    /// it on every subsequent batch.
    fn install_recorder(&self, _recorder: Arc<dyn crate::Recorder>) {}

    /// True when `query` would be answered entirely from warm state (for
    /// [`Engine`], the result cache) without fresh evaluation. Serving
    /// layers use this as the brownout probe: under pressure they keep
    /// answering warm queries and shed cold ones as `overloaded`. Must
    /// be cheap and side-effect free — it runs on the admission path.
    /// The default says nothing is warm, which degrades brownout to
    /// plain shedding.
    fn probe_cached(&self, _query: &Query) -> bool {
        false
    }
}

impl Service for Engine {
    fn call(&self, request: &Request) -> Result<ServiceReply, ParspeedError> {
        let deprecation = match request.version {
            WIRE_VERSION => None,
            MIN_WIRE_VERSION => Some(format!(
                "request used deprecated wire v{MIN_WIRE_VERSION}; migrate to v{WIRE_VERSION}"
            )),
            v => {
                return Err(ParspeedError::unsupported(format!(
                    "unsupported request version {v}; this service speaks v{WIRE_VERSION} \
                     (v{MIN_WIRE_VERSION} still accepted)"
                )))
            }
        };
        let out = self.run_batch(&request.queries);
        Ok(ServiceReply {
            version: WIRE_VERSION,
            deprecation,
            responses: out.responses,
            telemetry: out.telemetry,
        })
    }

    fn install_recorder(&self, recorder: Arc<dyn crate::Recorder>) {
        self.set_recorder(Some(recorder));
    }

    fn probe_cached(&self, query: &Query) -> bool {
        self.is_cached(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::EvalValue;

    #[test]
    fn builders_fill_cli_defaults() {
        let q = Request::optimize(ArchKind::SyncBus, 256).query();
        match q {
            Query::Optimize { workload, procs, memory_words, .. } => {
                assert_eq!(workload.n, 256);
                assert_eq!(workload.stencil, StencilSpec::FivePoint);
                assert_eq!(workload.shape, ShapeKey::Square);
                assert_eq!(procs, None);
                assert_eq!(memory_words, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        let q = Request::solve(63).solver(SolverKind::Multigrid).query();
        match q {
            Query::Solve { tol, partitions, max_iters, .. } => {
                assert_eq!(tol, 1e-8);
                assert_eq!(partitions, 4);
                assert_eq!(max_iters, 200_000);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn engine_serves_a_builder_request() {
        let engine = Engine::builder().build();
        let reply =
            engine.call(&Request::optimize(ArchKind::SyncBus, 256).procs(64).build()).unwrap();
        assert_eq!(reply.version, WIRE_VERSION);
        assert!(reply.deprecation.is_none());
        match &reply.responses[0] {
            Response::Single(Ok(EvalValue::Optimum { processors, .. })) => {
                assert_eq!(*processors, 14);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn v1_is_accepted_with_a_deprecation_note() {
        let engine = Engine::builder().build();
        let req = Request::table1(256).build().with_version(1);
        let reply = engine.call(&req).unwrap();
        assert!(reply.deprecation.as_deref().unwrap().contains("deprecated"));
        assert!(matches!(&reply.responses[0], Response::Single(Ok(EvalValue::Table1 { .. }))));
    }

    #[test]
    fn future_versions_are_refused() {
        let engine = Engine::builder().build();
        let req = Request::table1(256).build().with_version(3);
        let err = engine.call(&req).unwrap_err();
        assert_eq!(err.kind(), "unsupported");
        assert!(err.to_string().contains("version 3"));
    }

    #[test]
    fn tagged_batches_return_slot_addressed_replies() {
        let engine = Engine::builder().build();
        // Interleaved clients with non-monotonic tags: each reply must
        // carry its own tag and answer its own query, in request order.
        let tagged: Vec<(SlotAddr, Query)> = vec![
            (SlotAddr { client: 2, seq: 0 }, Request::optimize(ArchKind::SyncBus, 256).query()),
            (SlotAddr { client: 0, seq: 7 }, Request::table1(512).query()),
            (SlotAddr { client: 2, seq: 1 }, Request::optimize(ArchKind::SyncBus, 256).query()),
            (SlotAddr { client: 1, seq: 3 }, Request::compare(128).query()),
        ];
        let reply = engine.call_tagged(&TaggedRequest::new(tagged.clone())).unwrap();
        assert_eq!(reply.replies.len(), 4);
        for ((slot, _), (got_slot, _)) in tagged.iter().zip(&reply.replies) {
            assert_eq!(slot, got_slot);
        }
        // The two duplicated optimize slots coalesced onto one evaluation
        // and answer identically.
        assert_eq!(reply.replies[0].1, reply.replies[2].1);
        assert_eq!(reply.telemetry.unique, reply.telemetry.atoms - 1);
        assert!(reply.deprecation.is_none());
    }

    #[test]
    fn tagged_batches_respect_the_version_gate() {
        let engine = Engine::builder().build();
        let mut req = TaggedRequest::new(vec![(
            SlotAddr { client: 0, seq: 0 },
            Request::table1(256).query(),
        )]);
        req.version = 3;
        assert_eq!(engine.call_tagged(&req).unwrap_err().kind(), "unsupported");
    }

    #[test]
    fn mixed_kind_requests_answer_in_order() {
        let engine = Engine::builder().build();
        let req = Request::new(vec![
            Request::table1(512).query(),
            Request::compare(128).query(),
            Request::minsize(MinSizeVariant::SyncSquare, 14).query(),
        ]);
        let reply = engine.call(&req).unwrap();
        assert!(matches!(&reply.responses[0], Response::Single(Ok(EvalValue::Table1 { .. }))));
        assert!(matches!(&reply.responses[1], Response::Sweep(points) if points.len() == 6));
        assert!(matches!(&reply.responses[2], Response::Single(Ok(EvalValue::MinSize { .. }))));
    }
}
