//! A fast, deterministic hasher for canonical keys (the Firefox `FxHash`
//! multiply-rotate scheme).
//!
//! The planner hashes every atom of every batch and the cache hashes every
//! probe; with the std SipHash this is the single largest cost of planning
//! a 10⁴-atom batch. Keys are canonical bit patterns — not attacker
//! controlled — so a non-cryptographic hash is appropriate. Determinism
//! also keeps first-occurrence iteration orders reproducible run to run.

use std::hash::{BuildHasherDefault, Hasher};

/// `BuildHasher` plugging [`FxHasher`] into std collections.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The hasher state.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_ne!(hash_of(&42u64), hash_of(&43u64));
        assert_ne!(hash_of(&(1u64, 2u64)), hash_of(&(2u64, 1u64)));
    }

    #[test]
    fn byte_tail_is_hashed() {
        assert_ne!(hash_of(&[1u8, 2, 3][..]), hash_of(&[1u8, 2, 4][..]));
        assert_ne!(hash_of(&"abc"), hash_of(&"abd"));
    }

    #[test]
    fn spreads_sequential_keys() {
        // Sequential keys must not collide in the low bits (shard index).
        let mut shards = [0usize; 16];
        for i in 0..4096u64 {
            shards[(hash_of(&i) as usize) % 16] += 1;
        }
        for (i, &count) in shards.iter().enumerate() {
            assert!(count > 64, "shard {i} starved: {count}");
        }
    }
}
