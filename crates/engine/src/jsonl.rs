//! JSONL wire format for batch requests and responses — **wire v2**.
//!
//! One JSON object per line; the schema is documented in
//! `crates/engine/src/README.md`. Every request line may carry an explicit
//! `"version"` field: 2 is current, 1 (the PR-1 era implicit schema) is
//! accepted and answered in its legacy shape so old readers keep working,
//! and anything else is a parse error. v2 responses lead with a
//! `"version":2` field and error responses carry a machine-readable
//! `"error_kind"`; error responses of either version carry the 1-based
//! input line number in `"line"`.
//!
//! The environment has no serde, so this module carries a small, strict
//! JSON reader/writer of its own. Floats are written with Rust's
//! shortest-round-trip formatting and parsed with `str::parse::<f64>`, so
//! a value survives a serialize → parse round trip bit-identically.

use crate::error::ParspeedError;
use crate::plan::PointLabel;
use crate::request::{
    ArchKind, CheckSpec, EvalOutcome, EvalValue, Lever, MachineSpec, MinSizeVariant, Query,
    ShapeKey, SimArchKind, SolverKind, StencilSpec, WorkloadSpec,
};
use crate::service::WIRE_VERSION;
use crate::{BatchTelemetry, Response};
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON numbers are doubles on this wire).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= usize::MAX as f64 => {
                Some(*x as usize)
            }
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace), with deterministic field
    /// order (source order).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    let integral =
                        x.fract() == 0.0 && x.abs() < 1e15 && !(*x == 0.0 && x.is_sign_negative());
                    if integral {
                        // Counts print bare; the round trip is still exact.
                        let _ = write!(out, "{}", *x as i64);
                    } else {
                        // Rust's Debug float formatting is shortest-round-
                        // trip and always a valid JSON number.
                        let _ = write!(out, "{x:?}");
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/inf
                }
            }
            Json::Str(s) => {
                out.push('"');
                for ch in s.chars() {
                    match ch {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parses one JSON document (must consume the whole input).
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", ch as char))
    }
}

fn read_hex4(b: &[u8], start: usize) -> Result<u32, String> {
    let hex = b.get(start..start + 4).ok_or("truncated \\u escape")?;
    let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
    u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape `{hex}`"))
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    _ => return Err(format!("object key must be a string at byte {pos}")),
                };
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b'r') => s.push('\r'),
                            Some(b't') => s.push('\t'),
                            Some(b'b') => s.push('\u{8}'),
                            Some(b'f') => s.push('\u{c}'),
                            Some(b'u') => {
                                let hi = read_hex4(b, *pos + 1)?;
                                *pos += 4;
                                let code = if (0xD800..=0xDBFF).contains(&hi) {
                                    // High surrogate: a \\u low surrogate
                                    // must follow; combine the pair into
                                    // one scalar.
                                    if b.get(*pos + 1..*pos + 3) != Some(b"\\u".as_slice()) {
                                        return Err(
                                            "high surrogate not followed by \\u escape".into()
                                        );
                                    }
                                    let lo = read_hex4(b, *pos + 3)?;
                                    if !(0xDC00..=0xDFFF).contains(&lo) {
                                        return Err(format!(
                                            "high surrogate followed by \\u{lo:04x}, not a low surrogate"
                                        ));
                                    }
                                    *pos += 6;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    hi
                                };
                                s.push(
                                    char::from_u32(code)
                                        .ok_or("lone low surrogate in \\u escape")?,
                                );
                            }
                            _ => return Err(format!("bad escape at byte {pos}")),
                        }
                        *pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar.
                        let rest = std::str::from_utf8(&b[*pos..])
                            .map_err(|_| "invalid UTF-8 in string")?;
                        let ch = rest.chars().next().expect("nonempty");
                        s.push(ch);
                        *pos += ch.len_utf8();
                    }
                }
            }
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad number")?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number `{text}` at byte {start}"))
        }
    }
}

fn parse_machine(v: Option<&Json>) -> Result<MachineSpec, String> {
    let mut spec = MachineSpec::default();
    let Some(obj) = v else { return Ok(spec) };
    let Json::Obj(fields) = obj else {
        return Err("`machine` must be an object".into());
    };
    for (key, value) in fields {
        match key.as_str() {
            "preset" => match value.as_str() {
                Some("paper") => spec.flex32 = false,
                Some("flex32") => spec.flex32 = true,
                _ => return Err("machine preset must be \"paper\" or \"flex32\"".into()),
            },
            "tfp" => spec.tfp = Some(req_f64(value, "machine.tfp")?),
            "b" => spec.b = Some(req_f64(value, "machine.b")?),
            "c" => spec.c = Some(req_f64(value, "machine.c")?),
            "alpha" => spec.alpha = Some(req_f64(value, "machine.alpha")?),
            "beta" => spec.beta = Some(req_f64(value, "machine.beta")?),
            "packet" => spec.packet = Some(req_usize(value, "machine.packet")?),
            "w" => spec.w = Some(req_f64(value, "machine.w")?),
            other => return Err(format!("unknown machine field `{other}`")),
        }
    }
    Ok(spec)
}

fn req_f64(v: &Json, what: &str) -> Result<f64, String> {
    v.as_f64().ok_or_else(|| format!("`{what}` must be a number"))
}

fn req_usize(v: &Json, what: &str) -> Result<usize, String> {
    v.as_usize().ok_or_else(|| format!("`{what}` must be a non-negative integer"))
}

fn req_str<'a>(v: &'a Json, what: &str) -> Result<&'a str, String> {
    v.as_str().ok_or_else(|| format!("`{what}` must be a string"))
}

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, String> {
    obj.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn parse_stencil(v: &Json) -> Result<StencilSpec, String> {
    match v {
        Json::Str(name) => StencilSpec::parse(name),
        Json::Obj(_) => {
            let e = req_f64(field(v, "e")?, "stencil.e")?;
            let k = req_usize(field(v, "k")?, "stencil.k")?;
            Ok(StencilSpec::Custom { e, k })
        }
        _ => Err("`stencil` must be a name or {\"e\":..,\"k\":..}".into()),
    }
}

fn parse_workload(obj: &Json) -> Result<WorkloadSpec, String> {
    Ok(WorkloadSpec {
        n: req_usize(field(obj, "n")?, "n")?,
        stencil: parse_stencil(field(obj, "stencil")?)?,
        shape: ShapeKey::parse(req_str(field(obj, "shape")?, "shape")?)?,
    })
}

/// `procs` is optional; absent or `0` means unlimited.
fn parse_procs(obj: &Json) -> Result<Option<usize>, String> {
    match obj.get("procs") {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            let p = req_usize(v, "procs")?;
            Ok(if p == 0 { None } else { Some(p) })
        }
    }
}

/// Rejects top-level fields the op does not define, so a typo'd optional
/// field (e.g. `memory_word`) errors instead of silently changing the
/// query's meaning — the same strictness `machine` objects already get.
/// `version` is always allowed (every op is versioned), and so is
/// `deadline_ms` (every op may carry a deadline; the serving tier reads
/// it, the query does not).
fn check_fields(obj: &Json, op: &str, allowed: &[&str]) -> Result<(), String> {
    let Json::Obj(fields) = obj else { return Err("request must be an object".into()) };
    for (key, _) in fields {
        if key != "op"
            && key != "version"
            && key != "deadline_ms"
            && !allowed.contains(&key.as_str())
        {
            return Err(format!(
                "unknown field `{key}` for op `{op}`; allowed: {}",
                allowed.join(", ")
            ));
        }
    }
    Ok(())
}

/// A request line parsed into a query plus the wire version it spoke
/// (lines without a `version` field are v1).
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedLine {
    /// The parsed query.
    pub query: Query,
    /// The line's declared wire version (1 when absent).
    pub version: u32,
    /// The optional `deadline_ms` budget the line carried: how many
    /// milliseconds the caller gives the serving tier before it would
    /// rather have a `deadline_exceeded` answer than keep waiting.
    /// `None` when absent; never part of the [`Query`] itself (two
    /// lines differing only in deadline dedup to one evaluation).
    pub deadline_ms: Option<u64>,
}

/// A request line that never became a [`Query`]: what went wrong plus the
/// wire version the response should speak (1 when the line was not even
/// valid JSON, so the renderer falls back to the legacy shape).
#[derive(Debug, Clone, PartialEq)]
pub struct LineError {
    /// The wire version the line declared (1 when unknown).
    pub version: u32,
    /// The parse failure.
    pub error: ParspeedError,
}

/// Parses one request line into a [`ParsedLine`]. The line is tokenized
/// exactly once; its declared version is read first so even a line whose
/// query is malformed gets a version-appropriate error response.
pub fn parse_query(line: &str) -> Result<ParsedLine, LineError> {
    let fail = |version, msg| LineError { version, error: ParspeedError::parse(msg) };
    let obj = parse(line).map_err(|e| fail(1, e))?;
    parse_query_value(&obj)
}

/// [`parse_query`] for an already-tokenized request object — for readers
/// that must inspect the raw JSON first (the streaming server peeks at
/// the op to intercept serving-only requests) without paying a second
/// tokenization pass.
pub fn parse_query_value(obj: &Json) -> Result<ParsedLine, LineError> {
    let fail = |version, msg| LineError { version, error: ParspeedError::parse(msg) };
    let version = version_of(obj).map_err(|e| fail(1, e))?;
    let deadline_ms = deadline_of(obj).map_err(|e| fail(version, e))?;
    let query = query_of(obj).map_err(|e| fail(version, e))?;
    Ok(ParsedLine { query, version, deadline_ms })
}

fn deadline_of(obj: &Json) -> Result<Option<u64>, String> {
    match obj.get("deadline_ms") {
        None | Some(Json::Null) => Ok(None),
        Some(v) => match v.as_usize() {
            Some(0) => Err("`deadline_ms` must be a positive integer (got 0)".into()),
            Some(ms) => Ok(Some(ms as u64)),
            None => Err(format!(
                "`deadline_ms` must be a positive integer of milliseconds, got {}",
                v.render()
            )),
        },
    }
}

fn version_of(obj: &Json) -> Result<u32, String> {
    match obj.get("version") {
        None => Ok(1),
        Some(v) => match v.as_usize() {
            Some(1) => Ok(1),
            Some(n) if n == WIRE_VERSION as usize => Ok(WIRE_VERSION),
            _ => Err(format!(
                "unsupported `version` {}; this reader speaks v{WIRE_VERSION} (v1 still accepted)",
                v.render()
            )),
        },
    }
}

fn query_of(obj: &Json) -> Result<Query, String> {
    let op = req_str(field(obj, "op")?, "op")?;
    match op {
        "optimize" => {
            check_fields(
                obj,
                op,
                &["arch", "machine", "n", "stencil", "shape", "procs", "memory_words"],
            )?;
            Ok(Query::Optimize {
                arch: ArchKind::parse(req_str(field(obj, "arch")?, "arch")?)?,
                machine: parse_machine(obj.get("machine"))?,
                workload: parse_workload(obj)?,
                procs: parse_procs(obj)?,
                memory_words: match obj.get("memory_words") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(req_f64(v, "memory_words")?),
                },
            })
        }
        "minsize" => {
            check_fields(obj, op, &["variant", "machine", "e", "k", "procs"])?;
            Ok(Query::MinSize {
                variant: MinSizeVariant::parse(req_str(field(obj, "variant")?, "variant")?)?,
                machine: parse_machine(obj.get("machine"))?,
                e: req_f64(field(obj, "e")?, "e")?,
                k: req_f64(field(obj, "k")?, "k")?,
                procs: req_usize(field(obj, "procs")?, "procs")?,
            })
        }
        "isoeff" => {
            check_fields(obj, op, &["arch", "machine", "stencil", "shape", "procs", "efficiency"])?;
            Ok(Query::Isoefficiency {
                arch: ArchKind::parse(req_str(field(obj, "arch")?, "arch")?)?,
                machine: parse_machine(obj.get("machine"))?,
                stencil: parse_stencil(field(obj, "stencil")?)?,
                shape: ShapeKey::parse(req_str(field(obj, "shape")?, "shape")?)?,
                procs: req_usize(field(obj, "procs")?, "procs")?,
                efficiency: req_f64(field(obj, "efficiency")?, "efficiency")?,
            })
        }
        "leverage" => {
            check_fields(
                obj,
                op,
                &["machine", "n", "stencil", "shape", "procs", "lever", "factor"],
            )?;
            Ok(Query::Leverage {
                machine: parse_machine(obj.get("machine"))?,
                workload: parse_workload(obj)?,
                procs: parse_procs(obj)?,
                lever: Lever::parse(req_str(field(obj, "lever")?, "lever")?)?,
                factor: req_f64(field(obj, "factor")?, "factor")?,
            })
        }
        "sweep" => {
            check_fields(
                obj,
                op,
                &["arch", "machine", "stencil", "shape", "procs", "n_from", "n_to"],
            )?;
            let str_list = |key: &str| -> Result<Vec<&str>, String> {
                let v = field(obj, key)?;
                let arr = v.as_arr().ok_or_else(|| format!("`{key}` must be an array of names"))?;
                arr.iter().map(|e| req_str(e, key)).collect()
            };
            let budgets = match obj.get("procs") {
                None | Some(Json::Null) => vec![None],
                Some(v) => {
                    let arr = v.as_arr().ok_or("`procs` must be an array for sweeps")?;
                    arr.iter()
                        .map(|e| match e {
                            Json::Null => Ok(None),
                            other => {
                                let p = req_usize(other, "procs")?;
                                Ok(if p == 0 { None } else { Some(p) })
                            }
                        })
                        .collect::<Result<Vec<_>, String>>()?
                }
            };
            let stencils = match field(obj, "stencil")? {
                Json::Arr(items) => {
                    items.iter().map(parse_stencil).collect::<Result<Vec<_>, _>>()?
                }
                single => vec![parse_stencil(single)?],
            };
            Ok(Query::Sweep {
                archs: str_list("arch")?
                    .into_iter()
                    .map(ArchKind::parse)
                    .collect::<Result<Vec<_>, _>>()?,
                machine: parse_machine(obj.get("machine"))?,
                stencils,
                shapes: str_list("shape")?
                    .into_iter()
                    .map(ShapeKey::parse)
                    .collect::<Result<Vec<_>, _>>()?,
                budgets,
                n_from: req_usize(field(obj, "n_from")?, "n_from")?,
                n_to: req_usize(field(obj, "n_to")?, "n_to")?,
            })
        }
        "table1" => {
            check_fields(obj, op, &["machine", "n", "stencil"])?;
            Ok(Query::Table1 {
                machine: parse_machine(obj.get("machine"))?,
                n: req_usize(field(obj, "n")?, "n")?,
                stencil: match obj.get("stencil") {
                    None => StencilSpec::FivePoint,
                    Some(v) => parse_stencil(v)?,
                },
            })
        }
        "compare" => {
            check_fields(obj, op, &["machine", "n", "stencil", "shape", "procs"])?;
            Ok(Query::Compare {
                machine: parse_machine(obj.get("machine"))?,
                workload: parse_workload(obj)?,
                procs: parse_procs(obj)?,
            })
        }
        "simulate" => {
            check_fields(obj, op, &["arch", "machine", "n", "stencil", "shape", "procs"])?;
            Ok(Query::Simulate {
                arch: SimArchKind::parse(req_str(field(obj, "arch")?, "arch")?)?,
                machine: parse_machine(obj.get("machine"))?,
                workload: parse_workload(obj)?,
                procs: req_usize(field(obj, "procs")?, "procs")?,
            })
        }
        "solve" => {
            check_fields(
                obj,
                op,
                &["n", "solver", "tol", "stencil", "partitions", "max_iters", "check_policy"],
            )?;
            Ok(Query::Solve {
                n: req_usize(field(obj, "n")?, "n")?,
                solver: SolverKind::parse(req_str(field(obj, "solver")?, "solver")?)?,
                tol: match obj.get("tol") {
                    None => 1e-8,
                    Some(v) => req_f64(v, "tol")?,
                },
                stencil: match obj.get("stencil") {
                    None => StencilSpec::FivePoint,
                    Some(v) => parse_stencil(v)?,
                },
                partitions: match obj.get("partitions") {
                    None => 4,
                    Some(v) => req_usize(v, "partitions")?,
                },
                max_iters: match obj.get("max_iters") {
                    None => 200_000,
                    Some(v) => req_usize(v, "max_iters")?,
                },
                // Absent = the solver's historical default schedule.
                check: match obj.get("check_policy") {
                    None => None,
                    Some(v) => Some(CheckSpec::parse(req_str(v, "check_policy")?)?),
                },
            })
        }
        "threads" => {
            check_fields(obj, op, &["n", "stencil", "shape", "threads", "iters", "repeats"])?;
            let threads = field(obj, "threads")?
                .as_arr()
                .ok_or("`threads` must be an array of positive counts")?
                .iter()
                .map(|v| req_usize(v, "threads"))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Query::Threads {
                n: req_usize(field(obj, "n")?, "n")?,
                stencil: match obj.get("stencil") {
                    None => StencilSpec::FivePoint,
                    Some(v) => parse_stencil(v)?,
                },
                shape: match obj.get("shape") {
                    None => ShapeKey::Strip,
                    Some(v) => ShapeKey::parse(req_str(v, "shape")?)?,
                },
                threads,
                iters: match obj.get("iters") {
                    None => 20,
                    Some(v) => req_usize(v, "iters")?,
                },
                repeats: match obj.get("repeats") {
                    None => 3,
                    Some(v) => req_usize(v, "repeats")?,
                },
            })
        }
        "experiment" => {
            check_fields(obj, op, &["id", "quick"])?;
            Ok(Query::Experiment {
                id: req_str(field(obj, "id")?, "id")?.to_string(),
                quick: match obj.get("quick") {
                    None => false,
                    Some(Json::Bool(b)) => *b,
                    Some(_) => return Err("`quick` must be a boolean".into()),
                },
            })
        }
        other => Err(format!(
            "unknown op `{other}`; one of: optimize, minsize, isoeff, leverage, sweep, table1, \
             compare, simulate, solve, threads, experiment"
        )),
    }
}

fn value_fields(value: &EvalValue) -> Vec<(String, Json)> {
    match value {
        EvalValue::Optimum { processors, area, cycle_time, speedup, efficiency, used_all } => {
            vec![
                ("processors".into(), Json::Num(*processors as f64)),
                ("area".into(), Json::Num(*area)),
                ("cycle_time".into(), Json::Num(*cycle_time)),
                ("speedup".into(), Json::Num(*speedup)),
                ("efficiency".into(), Json::Num(*efficiency)),
                ("used_all".into(), Json::Bool(*used_all)),
            ]
        }
        EvalValue::MinSize { n_side, log2_points } => vec![
            ("n_side".into(), Json::Num(*n_side)),
            ("log2_points".into(), Json::Num(*log2_points)),
        ],
        EvalValue::Isoefficiency { n } => vec![("n".into(), Json::Num(*n as f64))],
        EvalValue::Leverage { baseline, upgraded, factor } => vec![
            ("baseline".into(), Json::Num(*baseline)),
            ("upgraded".into(), Json::Num(*upgraded)),
            ("factor".into(), Json::Num(*factor)),
        ],
        EvalValue::Table1 { rows } => vec![(
            "rows".into(),
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("architecture".into(), Json::Str(r.architecture.into())),
                            ("optimal_speedup".into(), Json::Num(r.optimal_speedup)),
                            ("formula".into(), Json::Str(r.formula.into())),
                        ])
                    })
                    .collect(),
            ),
        )],
        EvalValue::Simulate { cycle_time, max_compute, comm_fraction, predicted, seq_time } => {
            vec![
                ("cycle_time".into(), Json::Num(*cycle_time)),
                ("max_compute".into(), Json::Num(*max_compute)),
                ("comm_fraction".into(), Json::Num(*comm_fraction)),
                ("predicted".into(), Json::Num(*predicted)),
                ("seq_time".into(), Json::Num(*seq_time)),
            ]
        }
        EvalValue::Solve {
            converged,
            iterations,
            final_diff,
            max_error,
            global_reductions,
            resumed_from,
        } => {
            let mut fields = vec![
                ("converged".into(), Json::Bool(*converged)),
                ("iterations".into(), Json::Num(*iterations as f64)),
                ("final_diff".into(), Json::Num(*final_diff)),
                ("max_error".into(), Json::Num(*max_error)),
            ];
            if let Some(r) = global_reductions {
                fields.push(("global_reductions".into(), Json::Num(*r as f64)));
            }
            if let Some(from) = resumed_from {
                fields.push(("resumed_from_iteration".into(), Json::Num(*from as f64)));
            }
            fields
        }
        EvalValue::Threads { points } => vec![(
            "points".into(),
            Json::Arr(
                points
                    .iter()
                    .map(|p| {
                        Json::Obj(vec![
                            ("threads".into(), Json::Num(p.threads as f64)),
                            ("secs_per_iter".into(), Json::Num(p.secs_per_iter)),
                            ("speedup".into(), Json::Num(p.speedup)),
                        ])
                    })
                    .collect(),
            ),
        )],
        EvalValue::Report(text) => vec![("text".into(), Json::Str(text.clone()))],
    }
}

/// The leading fields of a response object: `version` first on wire v2,
/// nothing extra on legacy v1.
fn response_head(op: &str, version: u32) -> Vec<(String, Json)> {
    let mut fields = Vec::new();
    if version >= WIRE_VERSION {
        fields.push(("version".into(), Json::Num(WIRE_VERSION as f64)));
    }
    fields.push(("op".into(), Json::Str(op.into())));
    fields
}

fn error_fields(e: &ParspeedError, version: u32, line: usize) -> Vec<(String, Json)> {
    let mut fields =
        vec![("ok".into(), Json::Bool(false)), ("line".into(), Json::Num(line as f64))];
    if version >= WIRE_VERSION {
        fields.push(("error_kind".into(), Json::Str(e.kind().into())));
    }
    fields.push(("error".into(), Json::Str(e.to_string())));
    fields
}

fn outcome_obj(op: &str, outcome: &EvalOutcome, version: u32, line: usize) -> Json {
    let mut fields = response_head(op, version);
    match outcome {
        Ok(value) => {
            fields.push(("ok".into(), Json::Bool(true)));
            fields.extend(value_fields(value));
        }
        Err(e) => fields.extend(error_fields(e, version, line)),
    }
    Json::Obj(fields)
}

fn point_obj(label: &PointLabel, outcome: &EvalOutcome) -> Json {
    let mut fields = vec![
        ("arch".into(), Json::Str(label.arch.into())),
        ("n".into(), Json::Num(label.n as f64)),
        ("stencil".into(), Json::Str(label.stencil.clone())),
        ("shape".into(), Json::Str(label.shape.into())),
        ("procs".into(), Json::Str(label.budget.clone())),
    ];
    match outcome {
        Ok(value) => {
            fields.push(("ok".into(), Json::Bool(true)));
            fields.extend(value_fields(value));
        }
        Err(e) => {
            fields.push(("ok".into(), Json::Bool(false)));
            fields.push(("error".into(), Json::Str(e.to_string())));
        }
    }
    Json::Obj(fields)
}

/// The wire op name of a query.
pub fn op_name(query: &Query) -> &'static str {
    match query {
        Query::Optimize { .. } => "optimize",
        Query::MinSize { .. } => "minsize",
        Query::Isoefficiency { .. } => "isoeff",
        Query::Leverage { .. } => "leverage",
        Query::Sweep { .. } => "sweep",
        Query::Table1 { .. } => "table1",
        Query::Compare { .. } => "compare",
        Query::Simulate { .. } => "simulate",
        Query::Solve { .. } => "solve",
        Query::Threads { .. } => "threads",
        Query::Experiment { .. } => "experiment",
    }
}

/// Serializes one response line in the shape of the request's wire
/// `version`; `line` is the 1-based input line number, carried on error
/// responses.
pub fn render_response(query: &Query, response: &Response, version: u32, line: usize) -> String {
    let op = op_name(query);
    match response {
        Response::Single(outcome) => outcome_obj(op, outcome, version, line).render(),
        Response::Sweep(points) => {
            let mut fields = response_head(op, version);
            fields.push(("ok".into(), Json::Bool(true)));
            fields.push((
                "points".into(),
                Json::Arr(points.iter().map(|(l, o)| point_obj(l, o)).collect()),
            ));
            Json::Obj(fields).render()
        }
        Response::Invalid(e) => {
            let mut fields = response_head(op, version);
            fields.extend(error_fields(e, version, line));
            Json::Obj(fields).render()
        }
    }
}

/// Serializes a parse failure for one input line (the line never became a
/// [`Query`]); `line` is the 1-based input line number. Lines that
/// declared wire v2 get the v2 error shape (`version`, `error_kind`).
pub fn render_parse_error(e: &LineError, line: usize) -> String {
    let mut fields = Vec::new();
    if e.version >= WIRE_VERSION {
        fields.push(("version".into(), Json::Num(WIRE_VERSION as f64)));
    }
    fields.extend(error_fields(&e.error, e.version, line));
    Json::Obj(fields).render()
}

/// Serializes batch telemetry as a trailing JSONL record (always a
/// wire-v2 record — it is new in this schema).
pub fn render_telemetry(t: &BatchTelemetry) -> String {
    Json::Obj(vec![
        ("version".into(), Json::Num(WIRE_VERSION as f64)),
        ("op".into(), Json::Str("telemetry".into())),
        ("queries".into(), Json::Num(t.queries as f64)),
        ("atoms".into(), Json::Num(t.atoms as f64)),
        ("unique".into(), Json::Num(t.unique as f64)),
        ("dedup_factor".into(), Json::Num(t.dedup_factor())),
        ("cache_hits".into(), Json::Num(t.cache_hits as f64)),
        ("cache_hit_rate".into(), Json::Num(t.hit_rate())),
        ("evaluated".into(), Json::Num(t.evaluated as f64)),
        ("effects".into(), Json::Num(t.effects as f64)),
        ("wall_seconds".into(), Json::Num(t.wall_seconds)),
        ("queries_per_second".into(), Json::Num(t.queries_per_second())),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structure() {
        let v = parse(r#"{"a":1,"b":[true,null,"x"],"c":{"d":-2.5e-3}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(1.0));
        let arr = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0], Json::Bool(true));
        assert_eq!(arr[1], Json::Null);
        assert_eq!(arr[2].as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_f64(), Some(-2.5e-3));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a":}"#).is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for x in [6.0, 0.13642e-6, 1.0 / 3.0, 1e-300, -0.0, 123_456_789.123_456_79] {
            let rendered = Json::Num(x).render();
            let back = parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} → {rendered} → {back}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line1\nline2\t\"quoted\" \\ done";
        let rendered = Json::Str(s.into()).render();
        assert_eq!(parse(&rendered).unwrap().as_str(), Some(s));
    }

    #[test]
    fn optimize_request_parses() {
        let parsed = parse_query(
            r#"{"op":"optimize","arch":"sync-bus","n":256,"stencil":"5pt","shape":"square","procs":64}"#,
        )
        .unwrap();
        assert_eq!(parsed.version, 1, "no version field means legacy v1");
        match parsed.query {
            Query::Optimize { arch, workload, procs, .. } => {
                assert_eq!(arch, ArchKind::SyncBus);
                assert_eq!(workload.n, 256);
                assert_eq!(procs, Some(64));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn deadline_ms_rides_any_op_without_entering_the_query() {
        let with = parse_query(
            r#"{"op":"optimize","version":2,"arch":"sync-bus","n":256,"stencil":"5pt",
                "shape":"square","procs":64,"deadline_ms":250}"#,
        )
        .unwrap();
        assert_eq!(with.deadline_ms, Some(250));
        let without = parse_query(
            r#"{"op":"optimize","version":2,"arch":"sync-bus","n":256,"stencil":"5pt",
                "shape":"square","procs":64}"#,
        )
        .unwrap();
        assert_eq!(without.deadline_ms, None);
        // The deadline is an envelope field, not part of the query: the
        // two lines dedup to the same evaluation.
        assert_eq!(with.query, without.query);
        // Ops with no extra fields of their own carry it too.
        let ping = parse_query(
            r#"{"op":"minsize","version":2,"variant":"sync-strip",
            "e":6.0,"k":2,"procs":64,"deadline_ms":1}"#,
        )
        .unwrap();
        assert_eq!(ping.deadline_ms, Some(1));
    }

    #[test]
    fn deadline_ms_must_be_a_positive_integer() {
        for bad in [r#""soon""#, "0", "-5", "2.5", "true"] {
            let line = format!(
                r#"{{"op":"optimize","version":2,"arch":"sync-bus","n":256,"stencil":"5pt",
                    "shape":"square","procs":64,"deadline_ms":{bad}}}"#
            );
            let err = parse_query(&line).expect_err(&format!("accepted deadline_ms:{bad}"));
            assert_eq!(err.error.kind(), "parse", "deadline_ms:{bad}");
            assert_eq!(err.version, 2, "deadline errors keep the declared version");
            assert!(err.error.message().contains("deadline_ms"), "{}", err.error);
        }
    }

    #[test]
    fn sweep_request_with_machine_overrides_parses() {
        let parsed = parse_query(
            r#"{"op":"sweep","arch":["sync-bus","hypercube"],"stencil":["5pt",{"e":8.5,"k":2}],
                "shape":["square","strip"],"procs":[16,0],"n_from":64,"n_to":512,
                "machine":{"preset":"flex32","b":2e-6}}"#,
        )
        .unwrap();
        match parsed.query {
            Query::Sweep { archs, stencils, shapes, budgets, machine, .. } => {
                assert_eq!(archs.len(), 2);
                assert_eq!(stencils.len(), 2);
                assert!(matches!(stencils[1], StencilSpec::Custom { e, k } if e == 8.5 && k == 2));
                assert_eq!(shapes.len(), 2);
                assert_eq!(budgets, vec![Some(16), None]);
                assert!(machine.flex32);
                assert_eq!(machine.b, Some(2e-6));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn surrogate_pairs_round_trip() {
        // Standard-JSON escaped astral char (😀 = U+1F600).
        let v = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        // Writer emits the raw char; parsing that recovers it too.
        let rendered = Json::Str("\u{1F600}".into()).render();
        assert_eq!(parse(&rendered).unwrap().as_str(), Some("\u{1F600}"));
        // Broken pairs are rejected, not mangled.
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\ud83dx""#).is_err());
        assert!(parse(r#""\ud83d\u0041""#).is_err());
        assert!(parse(r#""\ude00""#).is_err());
    }

    #[test]
    fn typoed_optional_fields_error_instead_of_vanishing() {
        // `memory_word` (typo) must not silently run unconstrained.
        let e = parse_query(
            r#"{"op":"optimize","arch":"sync-bus","n":64,"stencil":"5pt","shape":"square","memory_word":8}"#,
        )
        .unwrap_err()
        .error
        .to_string();
        assert!(e.contains("memory_word"), "{e}");
        assert!(e.contains("memory_words"), "should name the allowed fields: {e}");
        let e2 = parse_query(
            r#"{"op":"minsize","variant":"sync-strip","e":6.0,"k":1.0,"procs":8,"bogus":1}"#,
        )
        .unwrap_err()
        .error
        .to_string();
        assert!(e2.contains("bogus"), "{e2}");
    }

    #[test]
    fn unknown_fields_and_ops_error_loudly() {
        assert!(parse_query(r#"{"op":"frobnicate"}"#).is_err());
        assert!(parse_query(
            r#"{"op":"optimize","arch":"torus","n":1,"stencil":"5pt","shape":"square"}"#
        )
        .is_err());
        assert!(parse_query(r#"{"op":"optimize","n":1,"stencil":"5pt","shape":"square"}"#).is_err());
    }

    #[test]
    fn versions_are_read_and_bounded() {
        let v2 = parse_query(r#"{"op":"table1","version":2,"n":512,"stencil":"5pt"}"#).unwrap();
        assert_eq!(v2.version, 2);
        assert!(matches!(v2.query, Query::Table1 { n: 512, .. }));
        let err = parse_query(r#"{"op":"table1","version":7,"n":512}"#).unwrap_err();
        assert!(err.error.to_string().contains("version"), "{err:?}");
        assert_eq!(err.error.kind(), "parse");
        // A v2 line whose *query* is malformed still answers in v2 shape.
        let err = parse_query(r#"{"op":"frobnicate","version":2}"#).unwrap_err();
        assert_eq!(err.version, 2);
        let rendered = render_parse_error(&err, 9);
        let back = parse(&rendered).unwrap();
        assert_eq!(back.get("version").unwrap().as_usize(), Some(2));
        assert_eq!(back.get("error_kind").unwrap().as_str(), Some("parse"));
        assert_eq!(back.get("line").unwrap().as_usize(), Some(9));
    }

    #[test]
    fn new_ops_parse() {
        let q = parse_query(r#"{"op":"compare","n":128,"stencil":"5pt","shape":"square"}"#)
            .unwrap()
            .query;
        assert!(matches!(q, Query::Compare { .. }));
        let q = parse_query(
            r#"{"op":"simulate","arch":"mesh2d","n":64,"stencil":"5pt","shape":"strip","procs":4}"#,
        )
        .unwrap()
        .query;
        assert!(matches!(q, Query::Simulate { arch: SimArchKind::Mesh2d, procs: 4, .. }));
        let q = parse_query(r#"{"op":"solve","n":31,"solver":"cg","tol":1e-9}"#).unwrap().query;
        assert!(matches!(q, Query::Solve { solver: SolverKind::Cg, n: 31, check: None, .. }));
        let q = parse_query(r#"{"op":"solve","n":31,"solver":"jacobi","check_policy":"every:32"}"#)
            .unwrap()
            .query;
        assert!(matches!(q, Query::Solve { check: Some(CheckSpec::Every(32)), .. }));
        let q =
            parse_query(r#"{"op":"solve","n":31,"solver":"parallel","check_policy":"geometric"}"#)
                .unwrap()
                .query;
        assert!(matches!(q, Query::Solve { check: Some(c), .. } if c == CheckSpec::geometric()));
        let err =
            parse_query(r#"{"op":"solve","n":31,"solver":"jacobi","check_policy":"fibonacci"}"#)
                .unwrap_err();
        assert!(err.error.to_string().contains("check policy"), "{:?}", err.error);
        let q = parse_query(r#"{"op":"threads","n":64,"threads":[1,2]}"#).unwrap().query;
        assert!(matches!(q, Query::Threads { ref threads, .. } if threads == &[1, 2]));
        let q = parse_query(r#"{"op":"experiment","id":"e1","quick":true}"#).unwrap().query;
        assert!(matches!(q, Query::Experiment { quick: true, .. }));
    }

    #[test]
    fn response_rendering_is_parseable_json() {
        let value = EvalValue::Optimum {
            processors: 14,
            area: 4681.142857142857,
            cycle_time: 1.1e-3,
            speedup: 9.6,
            efficiency: 0.685,
            used_all: false,
        };
        let q = parse_query(
            r#"{"op":"optimize","arch":"sync-bus","n":256,"stencil":"5pt","shape":"square"}"#,
        )
        .unwrap();
        let line = render_response(&q.query, &Response::Single(Ok(value)), q.version, 1);
        let back = parse(&line).unwrap();
        assert_eq!(back.get("version"), None, "v1 requests get v1-shaped responses");
        assert_eq!(back.get("op").unwrap().as_str(), Some("optimize"));
        assert_eq!(back.get("ok").unwrap(), &Json::Bool(true));
        assert_eq!(back.get("processors").unwrap().as_usize(), Some(14));
        let area = back.get("area").unwrap().as_f64().unwrap();
        assert_eq!(area.to_bits(), 4681.142857142857f64.to_bits());
    }

    #[test]
    fn v2_responses_carry_version_and_error_kind() {
        let q = parse_query(
            r#"{"op":"optimize","version":2,"arch":"sync-bus","n":256,"stencil":"5pt","shape":"square"}"#,
        )
        .unwrap();
        let ok = render_response(
            &q.query,
            &Response::Single(Ok(EvalValue::Isoefficiency { n: 7 })),
            q.version,
            3,
        );
        assert!(ok.starts_with(r#"{"version":2,"#), "{ok}");
        let err = render_response(
            &q.query,
            &Response::Invalid(ParspeedError::invalid("grid side must be positive")),
            q.version,
            3,
        );
        let back = parse(&err).unwrap();
        assert_eq!(back.get("version").unwrap().as_usize(), Some(2));
        assert_eq!(back.get("line").unwrap().as_usize(), Some(3));
        assert_eq!(back.get("error_kind").unwrap().as_str(), Some("invalid_request"));
    }
}
