//! Canonical serving-shaped workloads, shared by the acceptance tests and
//! the throughput benches so they always measure the same traffic.

use crate::request::{
    ArchKind, Lever, MachineSpec, MinSizeVariant, Query, ShapeKey, SimArchKind, SolverKind,
    StencilSpec, WorkloadSpec,
};

/// A `len`-query mixed-kind batch cycling over a few hundred unique
/// queries — the shape of mixed dashboard + capacity-planning traffic
/// hitting the service: mostly optimizer points, spiced with every other
/// cacheable query kind (table1, compare, minsize, isoefficiency,
/// leverage, simulate, solve). Effects (threads, experiment) are excluded:
/// they are uncacheable by design, so they say nothing about the
/// dedup/cache pipeline this workload exists to measure.
pub fn mixed_batch(len: usize) -> Vec<Query> {
    let stencils = [StencilSpec::FivePoint, StencilSpec::NinePointBox];
    let shapes = [ShapeKey::Strip, ShapeKey::Square];
    let sizes = [256usize, 512, 1024, 2048, 4096];
    let budgets = [Some(8), Some(16), Some(32), Some(64), None];
    let archs = [ArchKind::SyncBus, ArchKind::AsyncBus, ArchKind::Hypercube, ArchKind::Banyan];
    let spec = MachineSpec::default();
    let mut unique = Vec::new();
    for arch in archs {
        for stencil in stencils {
            for shape in shapes {
                for n in sizes {
                    for procs in budgets {
                        unique.push(Query::Optimize {
                            arch,
                            machine: spec,
                            workload: WorkloadSpec { n, stencil, shape },
                            procs,
                            memory_words: None,
                        });
                    }
                }
            }
        }
    }
    // The newer service variants, sprinkled through the optimizer traffic.
    for n in sizes {
        unique.push(Query::Table1 { machine: spec, n, stencil: StencilSpec::FivePoint });
        unique.push(Query::Compare {
            machine: spec,
            workload: WorkloadSpec { n, stencil: StencilSpec::FivePoint, shape: ShapeKey::Square },
            procs: Some(32),
        });
    }
    for procs in [8usize, 14, 32] {
        unique.push(Query::MinSize {
            variant: MinSizeVariant::SyncSquare,
            machine: spec,
            e: 6.0,
            k: 1.0,
            procs,
        });
        unique.push(Query::Isoefficiency {
            arch: ArchKind::SyncBus,
            machine: spec,
            stencil: StencilSpec::FivePoint,
            shape: ShapeKey::Square,
            procs,
            efficiency: 0.5,
        });
        unique.push(Query::Leverage {
            machine: spec,
            workload: WorkloadSpec {
                n: 1024,
                stencil: StencilSpec::FivePoint,
                shape: ShapeKey::Square,
            },
            procs: Some(procs),
            lever: Lever::Bus,
            factor: 2.0,
        });
    }
    for procs in [2usize, 4] {
        unique.push(Query::Simulate {
            arch: SimArchKind::SyncBus,
            machine: spec,
            workload: WorkloadSpec {
                n: 64,
                stencil: StencilSpec::FivePoint,
                shape: ShapeKey::Strip,
            },
            procs,
        });
    }
    for solver in [SolverKind::Cg, SolverKind::Jacobi] {
        unique.push(Query::Solve {
            n: 15,
            solver,
            tol: 1e-6,
            stencil: StencilSpec::FivePoint,
            partitions: 4,
            max_iters: 10_000,
            check: None,
        });
    }
    (0..len).map(|i| unique[i % unique.len()].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_batch_contains_every_cacheable_kind_and_cycles() {
        let batch = mixed_batch(1000);
        assert_eq!(batch.len(), 1000);
        let has = |f: fn(&Query) -> bool| batch.iter().any(f);
        assert!(has(|q| matches!(q, Query::Optimize { .. })));
        assert!(has(|q| matches!(q, Query::Table1 { .. })));
        assert!(has(|q| matches!(q, Query::Compare { .. })));
        assert!(has(|q| matches!(q, Query::MinSize { .. })));
        assert!(has(|q| matches!(q, Query::Isoefficiency { .. })));
        assert!(has(|q| matches!(q, Query::Leverage { .. })));
        assert!(has(|q| matches!(q, Query::Simulate { .. })));
        assert!(has(|q| matches!(q, Query::Solve { .. })));
    }
}
