//! The planner: expands macro-queries, canonicalizes every atom into an
//! [`EvalKey`], and dedups the batch into the unique evaluation set.
//!
//! Planning is pure and sequential — it touches no cache and spawns no
//! threads — so the mapping from a batch to its unique keys is trivially
//! deterministic. The executor and cache only ever see unique keys; the
//! plan remembers which response slot each input query's atoms land in.
//!
//! Impure queries (wall-clock measurements, experiment regenerations)
//! plan into [`EffectKey`]s instead: one per query, never deduplicated,
//! never cached.

use crate::error::ParspeedError;
use crate::fxhash::FxBuildHasher;
use crate::request::{
    ArchKind, BudgetKey, CheckKey, CheckSpec, EffectKey, EvalKey, F64Key, MachineKey, Query,
    ShapeKey, SolverKind, StencilKey, StencilSpec,
};
use std::collections::HashMap;

/// Presentation labels for one expanded point of a macro-query (everything
/// the key deliberately forgets).
#[derive(Debug, Clone, PartialEq)]
pub struct PointLabel {
    /// Architecture name.
    pub arch: &'static str,
    /// Grid side.
    pub n: usize,
    /// Stencil display name.
    pub stencil: String,
    /// Shape name.
    pub shape: &'static str,
    /// Budget display (`∞` for unlimited).
    pub budget: String,
}

/// How one input query's response is assembled from unique-key results.
#[derive(Debug, Clone, PartialEq)]
pub enum Slot {
    /// A single atomic query: index into the unique-key set.
    Single(usize),
    /// A macro-query (sweep or compare): one `(label, unique index)` pair
    /// per expanded point, in deterministic grid order.
    Sweep(Vec<(PointLabel, usize)>),
    /// An impure query: index into the plan's effect list.
    Effect(usize),
    /// The query could not be planned (bad spec); carries the error.
    Invalid(ParspeedError),
}

/// A planned batch: the deduplicated evaluation set, the effect list, and
/// the response assembly map.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Unique evaluation keys, in first-occurrence order.
    pub unique: Vec<EvalKey>,
    /// Impure effects, one per effect query, in input order.
    pub effects: Vec<EffectKey>,
    /// One slot per input query, in input order.
    pub slots: Vec<Slot>,
    /// Number of pure atoms before deduplication (macro points count
    /// individually; effects and invalid queries count zero).
    pub atoms: usize,
}

impl Plan {
    /// Plans a batch.
    pub fn build(queries: &[Query]) -> Plan {
        Self::assemble(queries.iter().map(plan_query).collect())
    }

    /// Plans a batch and attributes the two phases separately: the
    /// *plan* phase (macro-query expansion + canonicalization, the
    /// per-query work) and the *dedup* phase (interning atoms into the
    /// unique evaluation set, the cross-query work). Used when a
    /// recorder is installed; [`build`](Plan::build) stays the untimed
    /// path so the library costs nothing by default.
    pub fn build_timed(queries: &[Query]) -> (Plan, PlanTiming) {
        let t0 = std::time::Instant::now();
        let planned: Vec<Result<Planned, ParspeedError>> = queries.iter().map(plan_query).collect();
        let plan_nanos = t0.elapsed().as_nanos() as u64;
        let t1 = std::time::Instant::now();
        let plan = Self::assemble(planned);
        (plan, PlanTiming { plan_nanos, dedup_nanos: t1.elapsed().as_nanos() as u64 })
    }

    /// The dedup pass: interns every planned atom into the unique
    /// evaluation set and lays out the response slots.
    fn assemble(planned: Vec<Result<Planned, ParspeedError>>) -> Plan {
        let mut unique: Vec<EvalKey> = Vec::new();
        let mut effects: Vec<EffectKey> = Vec::new();
        let mut index: HashMap<EvalKey, usize, FxBuildHasher> = HashMap::default();
        let mut atoms = 0usize;
        let mut intern = |key: EvalKey| -> usize {
            *index.entry(key).or_insert_with(|| {
                unique.push(key);
                unique.len() - 1
            })
        };

        let mut slots = Vec::with_capacity(planned.len());
        for q in planned {
            let slot = match q {
                Err(e) => Slot::Invalid(e),
                Ok(Planned::Single(key)) => {
                    atoms += 1;
                    Slot::Single(intern(key))
                }
                Ok(Planned::Multi(points)) => {
                    atoms += points.len();
                    Slot::Sweep(
                        points.into_iter().map(|(label, key)| (label, intern(key))).collect(),
                    )
                }
                Ok(Planned::Effect(effect)) => {
                    effects.push(effect);
                    Slot::Effect(effects.len() - 1)
                }
            };
            slots.push(slot);
        }
        Plan { unique, effects, slots, atoms }
    }

    /// Dedup factor: atoms per unique evaluation (1.0 when nothing
    /// repeats; 0 atoms give 1.0 by convention).
    pub fn dedup_factor(&self) -> f64 {
        if self.unique.is_empty() {
            1.0
        } else {
            self.atoms as f64 / self.unique.len() as f64
        }
    }
}

/// Nanosecond attribution of the two planning phases (see
/// [`Plan::build_timed`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct PlanTiming {
    /// Expansion + canonicalization time.
    pub plan_nanos: u64,
    /// Interning / slot-assembly time.
    pub dedup_nanos: u64,
}

enum Planned {
    Single(EvalKey),
    Multi(Vec<(PointLabel, EvalKey)>),
    Effect(EffectKey),
}

/// The canonical 64-bit routing hash of a query: the engine's FxHash of
/// whatever the query *evaluates* — its canonical [`EvalKey`] (atomic
/// queries), the first expanded point's key (macro-queries, which route
/// with their leading atom), the [`EffectKey`] (impure queries), or the
/// planning error itself (unplannable queries, so malformed duplicates
/// still agree on a destination).
///
/// Because the hash is taken *after* canonicalization, two spellings of
/// the same evaluation — named vs. custom stencil, explicit vs. implicit
/// defaults — hash identically, exactly like they share a cache line.
/// A consistent-hash router keyed on this value therefore sends
/// duplicate traffic from different clients to the same warm shard.
/// The outputs are pinned by test and must stay stable across releases:
/// ring placement depends on them.
pub fn routing_hash(q: &Query) -> u64 {
    use std::hash::BuildHasher as _;
    let hasher = FxBuildHasher::default();
    match plan_query(q) {
        Ok(Planned::Single(key)) => hasher.hash_one(key),
        Ok(Planned::Multi(points)) => match points.first() {
            Some((_, key)) => hasher.hash_one(key),
            None => 0,
        },
        Ok(Planned::Effect(effect)) => hasher.hash_one(&effect),
        Err(e) => hasher.hash_one(&e),
    }
}

fn budget_key(procs: Option<usize>) -> BudgetKey {
    match procs {
        Some(p) => BudgetKey::Limited(p),
        None => BudgetKey::Unlimited,
    }
}

fn optimize_key(
    arch: ArchKind,
    machine: MachineKey,
    n: usize,
    stencil: StencilSpec,
    shape: ShapeKey,
    procs: Option<usize>,
    memory_words: Option<f64>,
) -> Result<EvalKey, ParspeedError> {
    if n == 0 {
        return Err(ParspeedError::invalid("grid side must be positive"));
    }
    let (e, k) = stencil.constants(shape.to_shape());
    if !(e.is_finite() && e > 0.0) {
        return Err(ParspeedError::invalid(format!("E(S) must be positive and finite, got {e}")));
    }
    if let Some(words) = memory_words {
        if !(words.is_finite() && words > 0.0) {
            return Err(ParspeedError::invalid(format!(
                "memory budget must be positive and finite, got {words}"
            )));
        }
    }
    Ok(EvalKey::Optimize {
        arch,
        machine,
        n,
        shape,
        e: F64Key::new(e),
        k,
        budget: budget_key(procs),
        memory_words: memory_words.map(F64Key::new),
    })
}

fn plan_query(q: &Query) -> Result<Planned, ParspeedError> {
    match q {
        Query::Optimize { arch, machine, workload, procs, memory_words } => {
            Ok(Planned::Single(optimize_key(
                *arch,
                machine.to_key(),
                workload.n,
                workload.stencil,
                workload.shape,
                *procs,
                *memory_words,
            )?))
        }
        Query::MinSize { variant, machine, e, k, procs } => {
            if *procs == 0 {
                return Err(ParspeedError::invalid("minsize needs at least one processor"));
            }
            if !(e.is_finite() && *e > 0.0) {
                return Err(ParspeedError::invalid(format!(
                    "E(S) must be positive and finite, got {e}"
                )));
            }
            Ok(Planned::Single(EvalKey::MinSize {
                variant: *variant,
                machine: machine.to_key(),
                e: F64Key::new(*e),
                k: F64Key::new(*k),
                procs: *procs,
            }))
        }
        Query::Isoefficiency { arch, machine, stencil, shape, procs, efficiency } => {
            if !(*efficiency > 0.0 && *efficiency < 1.0) {
                return Err(ParspeedError::invalid(format!(
                    "efficiency must be in (0, 1), got {efficiency}"
                )));
            }
            if *procs == 0 {
                return Err(ParspeedError::invalid("isoefficiency needs at least one processor"));
            }
            let (e, k) = stencil.constants(shape.to_shape());
            Ok(Planned::Single(EvalKey::Isoefficiency {
                arch: *arch,
                machine: machine.to_key(),
                shape: *shape,
                e: F64Key::new(e),
                k,
                procs: *procs,
                efficiency: F64Key::new(*efficiency),
            }))
        }
        Query::Leverage { machine, workload, procs, lever, factor } => {
            if !(factor.is_finite() && *factor > 0.0) {
                return Err(ParspeedError::invalid(format!(
                    "lever factor must be positive and finite, got {factor}"
                )));
            }
            if workload.n == 0 {
                return Err(ParspeedError::invalid("grid side must be positive"));
            }
            let (e, k) = workload.stencil.constants(workload.shape.to_shape());
            Ok(Planned::Single(EvalKey::Leverage {
                machine: machine.to_key(),
                n: workload.n,
                shape: workload.shape,
                e: F64Key::new(e),
                k,
                budget: budget_key(*procs),
                lever: *lever,
                factor: F64Key::new(*factor),
            }))
        }
        Query::Table1 { machine, n, stencil } => {
            if *n == 0 {
                return Err(ParspeedError::invalid("grid side must be positive"));
            }
            Ok(Planned::Single(EvalKey::Table1 {
                machine: machine.to_key(),
                n: *n,
                stencil: StencilKey::from_spec(*stencil)?,
            }))
        }
        Query::Compare { machine, workload, procs } => {
            let mkey = machine.to_key();
            let mut points = Vec::with_capacity(6);
            for arch in ArchKind::all() {
                let key = optimize_key(
                    arch,
                    mkey,
                    workload.n,
                    workload.stencil,
                    workload.shape,
                    *procs,
                    None,
                )?;
                points.push((
                    PointLabel {
                        arch: arch.name(),
                        n: workload.n,
                        stencil: workload.stencil.name(),
                        shape: workload.shape.name(),
                        budget: budget_key(*procs).label(),
                    },
                    key,
                ));
            }
            Ok(Planned::Multi(points))
        }
        Query::Simulate { arch, machine, workload, procs } => {
            if workload.n == 0 {
                return Err(ParspeedError::invalid("grid side must be positive"));
            }
            if *procs == 0 {
                return Err(ParspeedError::invalid("simulate needs at least one processor"));
            }
            let stencil = StencilKey::from_spec(workload.stencil)?;
            let (n, p) = (workload.n, *procs);
            // Same validation (and messages) the evaluator applies.
            crate::exec::build_decomposition(n, p, workload.shape)?;
            Ok(Planned::Single(EvalKey::Simulate {
                arch: *arch,
                machine: machine.to_key(),
                n,
                shape: workload.shape,
                stencil,
                procs: p,
            }))
        }
        Query::Solve { n, solver, tol, stencil, partitions, max_iters, check } => {
            if *n == 0 {
                return Err(ParspeedError::invalid("grid side must be positive"));
            }
            if !(tol.is_finite() && *tol > 0.0) {
                return Err(ParspeedError::invalid(format!(
                    "tolerance must be positive and finite, got {tol}"
                )));
            }
            if let Some(spec) = check {
                match spec {
                    CheckSpec::Every(0) => {
                        return Err(ParspeedError::invalid("check period must be ≥ 1"))
                    }
                    CheckSpec::Geometric { factor, max_interval, .. } => {
                        if !(factor.is_finite() && *factor > 1.0) {
                            return Err(ParspeedError::invalid(format!(
                                "geometric check factor must exceed 1, got {factor}"
                            )));
                        }
                        if *max_interval == 0 {
                            return Err(ParspeedError::invalid(
                                "geometric check max_interval must be ≥ 1",
                            ));
                        }
                    }
                    CheckSpec::Every(_) => {}
                }
            }
            if let Some(e) = crate::exec::solve_plan_error(*n, *solver) {
                return Err(e);
            }
            // Canonicalize away whatever this solver ignores, so
            // equivalent runs share a key (and a cache line).
            let stencil = if solver.uses_stencil() {
                StencilKey::from_spec(*stencil)?
            } else {
                StencilKey::FivePoint
            };
            let partitions = match solver {
                SolverKind::Parallel => (*partitions).clamp(1, *n),
                _ => 0,
            };
            // An explicitly spelled-out default collapses onto the unset
            // form, and solvers that check every iteration by construction
            // ignore the policy entirely.
            let check = match check {
                Some(spec) if solver.uses_check_policy() && *spec != solver.default_check() => {
                    Some(CheckKey::from_spec(*spec))
                }
                _ => None,
            };
            Ok(Planned::Single(EvalKey::Solve {
                n: *n,
                solver: *solver,
                tol: F64Key::new(*tol),
                stencil,
                partitions,
                max_iters: *max_iters,
                check,
            }))
        }
        Query::Threads { n, stencil, shape, threads, iters, repeats } => {
            if *n == 0 {
                return Err(ParspeedError::invalid("grid side must be positive"));
            }
            if threads.is_empty() || threads.contains(&0) {
                return Err(ParspeedError::invalid("threads needs a list of positive counts"));
            }
            Ok(Planned::Effect(EffectKey::Threads {
                n: *n,
                stencil: StencilKey::from_spec(*stencil)?,
                shape: *shape,
                threads: threads.clone(),
                iters: (*iters).max(1),
                repeats: (*repeats).max(1),
            }))
        }
        Query::Experiment { id, quick } => {
            Ok(Planned::Effect(EffectKey::Experiment { id: id.clone(), quick: *quick }))
        }
        Query::Sweep { archs, machine, stencils, shapes, budgets, n_from, n_to } => {
            if *n_from == 0 || n_to < n_from {
                return Err(ParspeedError::invalid(format!("bad sweep range {n_from}..{n_to}")));
            }
            if archs.is_empty() || stencils.is_empty() || shapes.is_empty() || budgets.is_empty() {
                return Err(ParspeedError::invalid("sweep grid has an empty axis"));
            }
            let mkey = machine.to_key();
            let mut points = Vec::new();
            // Grid order: arch, stencil, shape, budget, then the doubling
            // grid sides — the same order the CLI sweep prints.
            for arch in archs {
                for stencil in stencils {
                    for shape in shapes {
                        for procs in budgets {
                            let mut n = *n_from;
                            loop {
                                let key =
                                    optimize_key(*arch, mkey, n, *stencil, *shape, *procs, None)?;
                                points.push((
                                    PointLabel {
                                        arch: arch.name(),
                                        n,
                                        stencil: stencil.name(),
                                        shape: shape.name(),
                                        budget: budget_key(*procs).label(),
                                    },
                                    key,
                                ));
                                if n > *n_to / 2 {
                                    break;
                                }
                                n *= 2;
                            }
                        }
                    }
                }
            }
            Ok(Planned::Multi(points))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{MachineSpec, SimArchKind, WorkloadSpec};

    fn opt(n: usize, procs: Option<usize>) -> Query {
        Query::Optimize {
            arch: ArchKind::SyncBus,
            machine: MachineSpec::default(),
            workload: WorkloadSpec { n, stencil: StencilSpec::FivePoint, shape: ShapeKey::Square },
            procs,
            memory_words: None,
        }
    }

    #[test]
    fn duplicate_queries_collapse() {
        let batch: Vec<Query> = (0..100).map(|_| opt(256, Some(64))).collect();
        let plan = Plan::build(&batch);
        assert_eq!(plan.unique.len(), 1);
        assert_eq!(plan.atoms, 100);
        assert!((plan.dedup_factor() - 100.0).abs() < 1e-12);
        for s in &plan.slots {
            assert_eq!(s, &Slot::Single(0));
        }
    }

    #[test]
    fn named_and_custom_stencils_dedup_together() {
        let (e, k) = StencilSpec::FivePoint.constants(ShapeKey::Square.to_shape());
        let custom = Query::Optimize {
            arch: ArchKind::SyncBus,
            machine: MachineSpec::default(),
            workload: WorkloadSpec {
                n: 256,
                stencil: StencilSpec::Custom { e, k },
                shape: ShapeKey::Square,
            },
            procs: Some(64),
            memory_words: None,
        };
        let plan = Plan::build(&[opt(256, Some(64)), custom]);
        assert_eq!(plan.unique.len(), 1, "same numbers must share a key");
    }

    #[test]
    fn sweep_expands_with_doubling_sides() {
        let q = Query::Sweep {
            archs: vec![ArchKind::SyncBus],
            machine: MachineSpec::default(),
            stencils: vec![StencilSpec::FivePoint],
            shapes: vec![ShapeKey::Square],
            budgets: vec![None],
            n_from: 64,
            n_to: 512,
        };
        let plan = Plan::build(&[q]);
        match &plan.slots[0] {
            Slot::Sweep(points) => {
                let ns: Vec<usize> = points.iter().map(|(l, _)| l.n).collect();
                assert_eq!(ns, vec![64, 128, 256, 512]);
            }
            other => panic!("expected sweep slot, got {other:?}"),
        }
        assert_eq!(plan.unique.len(), 4);
    }

    #[test]
    fn sweeps_and_singles_share_the_unique_set() {
        let sweep = Query::Sweep {
            archs: vec![ArchKind::SyncBus],
            machine: MachineSpec::default(),
            stencils: vec![StencilSpec::FivePoint],
            shapes: vec![ShapeKey::Square],
            budgets: vec![Some(64)],
            n_from: 256,
            n_to: 256,
        };
        let plan = Plan::build(&[sweep, opt(256, Some(64))]);
        assert_eq!(plan.unique.len(), 1);
        assert_eq!(plan.atoms, 2);
    }

    #[test]
    fn compare_expands_to_all_six_architectures_and_dedups_with_optimize() {
        let compare = Query::Compare {
            machine: MachineSpec::default(),
            workload: WorkloadSpec {
                n: 256,
                stencil: StencilSpec::FivePoint,
                shape: ShapeKey::Square,
            },
            procs: Some(64),
        };
        let plan = Plan::build(&[compare, opt(256, Some(64))]);
        match &plan.slots[0] {
            Slot::Sweep(points) => {
                let archs: Vec<&str> = points.iter().map(|(l, _)| l.arch).collect();
                assert_eq!(
                    archs,
                    vec!["hypercube", "mesh", "sync-bus", "async-bus", "scheduled-bus", "banyan"]
                );
            }
            other => panic!("expected multi slot, got {other:?}"),
        }
        // The sync-bus point of the compare and the plain optimize share a key.
        assert_eq!(plan.unique.len(), 6);
        assert_eq!(plan.atoms, 7);
    }

    #[test]
    fn solve_canonicalization_dedups_ignored_fields() {
        let solve = |stencil, partitions| Query::Solve {
            n: 31,
            solver: SolverKind::Cg,
            tol: 1e-8,
            stencil,
            partitions,
            max_iters: 1000,
            check: None,
        };
        // CG ignores both the stencil and the partition count.
        let plan =
            Plan::build(&[solve(StencilSpec::FivePoint, 4), solve(StencilSpec::NinePointBox, 9)]);
        assert_eq!(plan.unique.len(), 1);
    }

    #[test]
    fn check_policy_canonicalization_dedups_defaults() {
        let solve = |solver, check| Query::Solve {
            n: 15,
            solver,
            tol: 1e-6,
            stencil: StencilSpec::FivePoint,
            partitions: 4,
            max_iters: 1000,
            check,
        };
        // Spelling out a solver's own default collapses onto unset.
        let plan = Plan::build(&[
            solve(SolverKind::Jacobi, None),
            solve(SolverKind::Jacobi, Some(CheckSpec::Every(1))),
            solve(SolverKind::Parallel, None),
            solve(SolverKind::Parallel, Some(CheckSpec::geometric())),
        ]);
        assert_eq!(plan.unique.len(), 2);
        // A non-default policy is a distinct evaluation…
        let plan = Plan::build(&[
            solve(SolverKind::Jacobi, None),
            solve(SolverKind::Jacobi, Some(CheckSpec::Every(32))),
        ]);
        assert_eq!(plan.unique.len(), 2);
        // …except for solvers that ignore the policy entirely.
        let plan = Plan::build(&[
            solve(SolverKind::Cg, None),
            solve(SolverKind::Cg, Some(CheckSpec::Every(32))),
        ]);
        assert_eq!(plan.unique.len(), 1);
    }

    #[test]
    fn effects_are_never_deduplicated() {
        let q = Query::Threads {
            n: 64,
            stencil: StencilSpec::FivePoint,
            shape: ShapeKey::Strip,
            threads: vec![1, 2],
            iters: 1,
            repeats: 1,
        };
        let plan = Plan::build(&[q.clone(), q]);
        assert_eq!(plan.effects.len(), 2, "measurements must run once per request");
        assert_eq!(plan.slots, vec![Slot::Effect(0), Slot::Effect(1)]);
        assert_eq!(plan.atoms, 0);
    }

    #[test]
    fn simulate_rejects_impossible_decompositions_at_plan_time() {
        let sim = |n, procs, shape| Query::Simulate {
            arch: SimArchKind::SyncBus,
            machine: MachineSpec::default(),
            workload: WorkloadSpec { n, stencil: StencilSpec::FivePoint, shape },
            procs,
        };
        let plan = Plan::build(&[sim(8, 16, ShapeKey::Strip), sim(8, 97, ShapeKey::Square)]);
        assert!(matches!(&plan.slots[0], Slot::Invalid(e) if e.to_string().contains("strips")));
        assert!(
            matches!(&plan.slots[1], Slot::Invalid(e) if e.to_string().contains("near-square"))
        );
    }

    #[test]
    fn invalid_queries_keep_their_slot() {
        let bad = opt(0, None);
        let plan = Plan::build(&[bad, opt(64, None)]);
        assert!(matches!(plan.slots[0], Slot::Invalid(_)));
        assert!(matches!(plan.slots[1], Slot::Single(0)));
        assert_eq!(plan.atoms, 1);
    }

    /// Ring placement depends on these exact values: a change here is a
    /// wire-compatibility break (every key moves to a different shard and
    /// a rolling router upgrade loses its cache affinity). Update only
    /// with a conscious decision, never as a side effect.
    #[test]
    fn routing_hashes_are_pinned() {
        use crate::routing_hash;
        let pinned: &[(Query, u64)] = &[
            (opt(256, Some(64)), 5_712_715_353_655_322_337),
            (opt(256, None), 7_661_062_608_780_813_326),
            (opt(64, Some(64)), 5_119_102_712_921_739_844),
            (crate::Request::solve(31).solver(SolverKind::Cg).query(), 11_528_373_132_180_569_655),
            (
                crate::Request::minsize(crate::MinSizeVariant::SyncSquare, 14).query(),
                4_027_797_555_404_432_814,
            ),
        ];
        for (q, want) in pinned {
            assert_eq!(
                routing_hash(q),
                *want,
                "routing hash moved for {q:?} — this breaks ring placement"
            );
        }
    }

    #[test]
    fn routing_hash_ignores_presentation_differences() {
        use crate::routing_hash;
        // Named and custom stencils with the same constants share a cache
        // line, so they must share a routing hash too.
        let (e, k) = StencilSpec::FivePoint.constants(ShapeKey::Square.to_shape());
        let custom = Query::Optimize {
            arch: ArchKind::SyncBus,
            machine: MachineSpec::default(),
            workload: WorkloadSpec {
                n: 256,
                stencil: StencilSpec::Custom { e, k },
                shape: ShapeKey::Square,
            },
            procs: Some(64),
            memory_words: None,
        };
        assert_eq!(routing_hash(&opt(256, Some(64))), routing_hash(&custom));
        // Distinct evaluations should (overwhelmingly) land apart.
        assert_ne!(routing_hash(&opt(256, Some(64))), routing_hash(&opt(128, Some(64))));
    }

    #[test]
    fn macro_queries_route_by_their_leading_atom() {
        use crate::routing_hash;
        // A one-point sweep routes where its only atom routes.
        let sweep = Query::Sweep {
            archs: vec![ArchKind::SyncBus],
            machine: MachineSpec::default(),
            stencils: vec![StencilSpec::FivePoint],
            shapes: vec![ShapeKey::Square],
            budgets: vec![Some(64)],
            n_from: 256,
            n_to: 256,
        };
        assert_eq!(routing_hash(&sweep), routing_hash(&opt(256, Some(64))));
        // Invalid queries still hash deterministically (duplicates agree).
        let bad = opt(0, None);
        assert_eq!(routing_hash(&bad), routing_hash(&bad.clone()));
    }

    #[test]
    fn bad_sweep_axes_are_reported() {
        let q = Query::Sweep {
            archs: vec![],
            machine: MachineSpec::default(),
            stencils: vec![StencilSpec::FivePoint],
            shapes: vec![ShapeKey::Square],
            budgets: vec![None],
            n_from: 64,
            n_to: 128,
        };
        let plan = Plan::build(&[q]);
        assert!(matches!(&plan.slots[0], Slot::Invalid(e) if e.to_string().contains("empty axis")));
    }
}
