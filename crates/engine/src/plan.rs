//! The planner: expands macro-queries, canonicalizes every atom into an
//! [`EvalKey`], and dedups the batch into the unique evaluation set.
//!
//! Planning is pure and sequential — it touches no cache and spawns no
//! threads — so the mapping from a batch to its unique keys is trivially
//! deterministic. The executor and cache only ever see unique keys; the
//! plan remembers which response slot each input query's atoms land in.

use crate::fxhash::FxBuildHasher;
use crate::request::{
    ArchKind, BudgetKey, EvalKey, F64Key, MachineKey, Query, ShapeKey, StencilSpec,
};
use std::collections::HashMap;

/// Presentation labels for one expanded sweep point (everything the key
/// deliberately forgets).
#[derive(Debug, Clone, PartialEq)]
pub struct PointLabel {
    /// Architecture name.
    pub arch: &'static str,
    /// Grid side.
    pub n: usize,
    /// Stencil display name.
    pub stencil: String,
    /// Shape name.
    pub shape: &'static str,
    /// Budget display (`∞` for unlimited).
    pub budget: String,
}

/// How one input query's response is assembled from unique-key results.
#[derive(Debug, Clone, PartialEq)]
pub enum Slot {
    /// A single atomic query: index into the unique-key set.
    Single(usize),
    /// A sweep: one `(label, unique index)` pair per expanded point, in
    /// deterministic grid order.
    Sweep(Vec<(PointLabel, usize)>),
    /// The query could not be planned (bad spec); carries the message.
    Invalid(String),
}

/// A planned batch: the deduplicated evaluation set plus the response
/// assembly map.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Unique evaluation keys, in first-occurrence order.
    pub unique: Vec<EvalKey>,
    /// One slot per input query, in input order.
    pub slots: Vec<Slot>,
    /// Number of atoms before deduplication (sweep points count
    /// individually; invalid queries count zero).
    pub atoms: usize,
}

impl Plan {
    /// Plans a batch.
    pub fn build(queries: &[Query]) -> Plan {
        let mut unique: Vec<EvalKey> = Vec::new();
        let mut index: HashMap<EvalKey, usize, FxBuildHasher> = HashMap::default();
        let mut atoms = 0usize;
        let mut intern = |key: EvalKey| -> usize {
            *index.entry(key).or_insert_with(|| {
                unique.push(key);
                unique.len() - 1
            })
        };

        let mut slots = Vec::with_capacity(queries.len());
        for q in queries {
            let slot = match plan_query(q) {
                Err(msg) => Slot::Invalid(msg),
                Ok(Planned::Single(key)) => {
                    atoms += 1;
                    Slot::Single(intern(key))
                }
                Ok(Planned::Sweep(points)) => {
                    atoms += points.len();
                    Slot::Sweep(
                        points.into_iter().map(|(label, key)| (label, intern(key))).collect(),
                    )
                }
            };
            slots.push(slot);
        }
        Plan { unique, slots, atoms }
    }

    /// Dedup factor: atoms per unique evaluation (1.0 when nothing
    /// repeats; 0 atoms give 1.0 by convention).
    pub fn dedup_factor(&self) -> f64 {
        if self.unique.is_empty() {
            1.0
        } else {
            self.atoms as f64 / self.unique.len() as f64
        }
    }
}

enum Planned {
    Single(EvalKey),
    Sweep(Vec<(PointLabel, EvalKey)>),
}

fn budget_key(procs: Option<usize>) -> BudgetKey {
    match procs {
        Some(p) => BudgetKey::Limited(p),
        None => BudgetKey::Unlimited,
    }
}

fn optimize_key(
    arch: ArchKind,
    machine: MachineKey,
    n: usize,
    stencil: StencilSpec,
    shape: ShapeKey,
    procs: Option<usize>,
    memory_words: Option<usize>,
) -> Result<EvalKey, String> {
    if n == 0 {
        return Err("grid side must be positive".into());
    }
    let (e, k) = stencil.constants(shape.to_shape());
    if !(e.is_finite() && e > 0.0) {
        return Err(format!("E(S) must be positive and finite, got {e}"));
    }
    Ok(EvalKey::Optimize {
        arch,
        machine,
        n,
        shape,
        e: F64Key::new(e),
        k,
        budget: budget_key(procs),
        memory_words,
    })
}

fn plan_query(q: &Query) -> Result<Planned, String> {
    match q {
        Query::Optimize { arch, machine, workload, procs, memory_words } => {
            Ok(Planned::Single(optimize_key(
                *arch,
                machine.to_key(),
                workload.n,
                workload.stencil,
                workload.shape,
                *procs,
                *memory_words,
            )?))
        }
        Query::MinSize { variant, machine, e, k, procs } => {
            if *procs == 0 {
                return Err("minsize needs at least one processor".into());
            }
            if !(e.is_finite() && *e > 0.0) {
                return Err(format!("E(S) must be positive and finite, got {e}"));
            }
            Ok(Planned::Single(EvalKey::MinSize {
                variant: *variant,
                machine: machine.to_key(),
                e: F64Key::new(*e),
                k: F64Key::new(*k),
                procs: *procs,
            }))
        }
        Query::Isoefficiency { arch, machine, stencil, shape, procs, efficiency } => {
            if !(*efficiency > 0.0 && *efficiency < 1.0) {
                return Err(format!("efficiency must be in (0, 1), got {efficiency}"));
            }
            if *procs == 0 {
                return Err("isoefficiency needs at least one processor".into());
            }
            let (e, k) = stencil.constants(shape.to_shape());
            Ok(Planned::Single(EvalKey::Isoefficiency {
                arch: *arch,
                machine: machine.to_key(),
                shape: *shape,
                e: F64Key::new(e),
                k,
                procs: *procs,
                efficiency: F64Key::new(*efficiency),
            }))
        }
        Query::Leverage { machine, workload, procs, lever, factor } => {
            if !(factor.is_finite() && *factor > 0.0) {
                return Err(format!("lever factor must be positive and finite, got {factor}"));
            }
            if workload.n == 0 {
                return Err("grid side must be positive".into());
            }
            let (e, k) = workload.stencil.constants(workload.shape.to_shape());
            Ok(Planned::Single(EvalKey::Leverage {
                machine: machine.to_key(),
                n: workload.n,
                shape: workload.shape,
                e: F64Key::new(e),
                k,
                budget: budget_key(*procs),
                lever: *lever,
                factor: F64Key::new(*factor),
            }))
        }
        Query::Sweep { archs, machine, stencils, shapes, budgets, n_from, n_to } => {
            if *n_from == 0 || n_to < n_from {
                return Err(format!("bad sweep range {n_from}..{n_to}"));
            }
            if archs.is_empty() || stencils.is_empty() || shapes.is_empty() || budgets.is_empty() {
                return Err("sweep grid has an empty axis".into());
            }
            let mkey = machine.to_key();
            let mut points = Vec::new();
            // Grid order: arch, stencil, shape, budget, then the doubling
            // grid sides — the same order the CLI sweep prints.
            for arch in archs {
                for stencil in stencils {
                    for shape in shapes {
                        for procs in budgets {
                            let mut n = *n_from;
                            loop {
                                let key =
                                    optimize_key(*arch, mkey, n, *stencil, *shape, *procs, None)?;
                                points.push((
                                    PointLabel {
                                        arch: arch.name(),
                                        n,
                                        stencil: stencil.name(),
                                        shape: shape.name(),
                                        budget: budget_key(*procs).label(),
                                    },
                                    key,
                                ));
                                if n > *n_to / 2 {
                                    break;
                                }
                                n *= 2;
                            }
                        }
                    }
                }
            }
            Ok(Planned::Sweep(points))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{MachineSpec, WorkloadSpec};

    fn opt(n: usize, procs: Option<usize>) -> Query {
        Query::Optimize {
            arch: ArchKind::SyncBus,
            machine: MachineSpec::default(),
            workload: WorkloadSpec { n, stencil: StencilSpec::FivePoint, shape: ShapeKey::Square },
            procs,
            memory_words: None,
        }
    }

    #[test]
    fn duplicate_queries_collapse() {
        let batch: Vec<Query> = (0..100).map(|_| opt(256, Some(64))).collect();
        let plan = Plan::build(&batch);
        assert_eq!(plan.unique.len(), 1);
        assert_eq!(plan.atoms, 100);
        assert!((plan.dedup_factor() - 100.0).abs() < 1e-12);
        for s in &plan.slots {
            assert_eq!(s, &Slot::Single(0));
        }
    }

    #[test]
    fn named_and_custom_stencils_dedup_together() {
        let (e, k) = StencilSpec::FivePoint.constants(ShapeKey::Square.to_shape());
        let custom = Query::Optimize {
            arch: ArchKind::SyncBus,
            machine: MachineSpec::default(),
            workload: WorkloadSpec {
                n: 256,
                stencil: StencilSpec::Custom { e, k },
                shape: ShapeKey::Square,
            },
            procs: Some(64),
            memory_words: None,
        };
        let plan = Plan::build(&[opt(256, Some(64)), custom]);
        assert_eq!(plan.unique.len(), 1, "same numbers must share a key");
    }

    #[test]
    fn sweep_expands_with_doubling_sides() {
        let q = Query::Sweep {
            archs: vec![ArchKind::SyncBus],
            machine: MachineSpec::default(),
            stencils: vec![StencilSpec::FivePoint],
            shapes: vec![ShapeKey::Square],
            budgets: vec![None],
            n_from: 64,
            n_to: 512,
        };
        let plan = Plan::build(&[q]);
        match &plan.slots[0] {
            Slot::Sweep(points) => {
                let ns: Vec<usize> = points.iter().map(|(l, _)| l.n).collect();
                assert_eq!(ns, vec![64, 128, 256, 512]);
            }
            other => panic!("expected sweep slot, got {other:?}"),
        }
        assert_eq!(plan.unique.len(), 4);
    }

    #[test]
    fn sweeps_and_singles_share_the_unique_set() {
        let sweep = Query::Sweep {
            archs: vec![ArchKind::SyncBus],
            machine: MachineSpec::default(),
            stencils: vec![StencilSpec::FivePoint],
            shapes: vec![ShapeKey::Square],
            budgets: vec![Some(64)],
            n_from: 256,
            n_to: 256,
        };
        let plan = Plan::build(&[sweep, opt(256, Some(64))]);
        assert_eq!(plan.unique.len(), 1);
        assert_eq!(plan.atoms, 2);
    }

    #[test]
    fn invalid_queries_keep_their_slot() {
        let bad = opt(0, None);
        let plan = Plan::build(&[bad, opt(64, None)]);
        assert!(matches!(plan.slots[0], Slot::Invalid(_)));
        assert!(matches!(plan.slots[1], Slot::Single(0)));
        assert_eq!(plan.atoms, 1);
    }

    #[test]
    fn bad_sweep_axes_are_reported() {
        let q = Query::Sweep {
            archs: vec![],
            machine: MachineSpec::default(),
            stencils: vec![StencilSpec::FivePoint],
            shapes: vec![ShapeKey::Square],
            budgets: vec![None],
            n_from: 64,
            n_to: 128,
        };
        let plan = Plan::build(&[q]);
        assert!(matches!(&plan.slots[0], Slot::Invalid(m) if m.contains("empty axis")));
    }
}
