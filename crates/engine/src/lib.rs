//! `parspeed-engine` — the versioned service surface of the workspace: a
//! batched, cached, parallel query engine over the models, simulators,
//! and solvers of the Nicol & Willard reproduction.
//!
//! The paper answers point queries — optimal processor count, minimum
//! gainful problem size, speedup — for one (architecture, workload) pair
//! at a time. At serving scale the unit of work is a *batch* of thousands
//! of such queries, most of them near-duplicates. This crate turns the
//! whole workspace into one serving-shaped subsystem:
//!
//! 1. **Service** ([`service`]) — the public surface: a wire-versioned
//!    [`Request`] envelope of [`Query`]s, builder-style constructors
//!    (`Request::optimize(arch, n).procs(64).build()`), and the
//!    [`Service`] trait [`Engine`] implements;
//! 2. **Planner** ([`plan`]) — expands macro-queries (grid sweeps,
//!    all-architecture compares) into atomic evaluations, canonicalizes
//!    each into an [`EvalKey`] (floats keyed by bit pattern; presets,
//!    named stencils, and equivalent explicit constants collapse
//!    together), and dedups the batch;
//! 3. **Cache** ([`cache`]) — a sharded LRU from canonical keys to
//!    outcomes with hit/miss/eviction counters, so repeated traffic
//!    short-circuits across batches;
//! 4. **Executor** ([`exec`]) — shards the remaining unique keys across a
//!    rayon thread pool and evaluates them: analytic queries through
//!    `parspeed-core`, event-level simulations through `parspeed-arch`,
//!    real solves through `parspeed-solver`/`parspeed-exec`. Impure
//!    queries (wall-clock measurements, experiment regenerations) run
//!    sequentially after the parallel phase and are never cached.
//!
//! Failures speak one language, [`ParspeedError`] ([`error`]), at every
//! layer. Responses are **bit-identical** to direct calls into the
//! underlying crates — canonicalization never rounds, the cache stores
//! exact outcomes, and the tests pin this down — and every batch returns
//! [`BatchTelemetry`] (wall time, queries/s, dedup factor, cache hit
//! rate).
//!
//! ```
//! use parspeed_engine::{Engine, Query, ArchKind, MachineSpec, StencilSpec, ShapeKey, WorkloadSpec};
//!
//! let engine = Engine::builder().build();
//! let q = Query::Optimize {
//!     arch: ArchKind::SyncBus,
//!     machine: MachineSpec::default(),
//!     workload: WorkloadSpec { n: 256, stencil: StencilSpec::FivePoint, shape: ShapeKey::Square },
//!     procs: Some(64),
//!     memory_words: None,
//! };
//! // 1000 copies of the same query: one evaluation, 1000 answers.
//! let out = engine.run_batch(&vec![q; 1000]);
//! assert_eq!(out.telemetry.unique, 1);
//! assert_eq!(out.responses.len(), 1000);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod error;
pub mod exec;
pub mod fxhash;
pub mod jsonl;
pub mod plan;
pub mod request;
pub mod service;
pub mod telemetry;
pub mod workloads;

pub use cache::CacheStatsSnapshot;
pub use error::ParspeedError;
pub use exec::{checkpoint_key, ExperimentRunner};
pub use fxhash::{FxBuildHasher, FxHasher};
pub use parspeed_obs::{Recorder, Stage};
pub use parspeed_solver::{CheckpointPolicy, CheckpointStore};
pub use plan::{routing_hash, Plan, PlanTiming, PointLabel, Slot};
pub use request::{
    ArchKind, CheckKey, CheckSpec, EffectKey, EvalKey, EvalOutcome, EvalValue, Lever, MachineSpec,
    MinSizeVariant, Query, ShapeKey, SimArchKind, SolverKind, StencilKey, StencilSpec,
    WorkloadSpec,
};
pub use service::{
    Request, Service, ServiceReply, SlotAddr, TaggedReply, TaggedRequest, MIN_WIRE_VERSION,
    WIRE_VERSION,
};
pub use telemetry::{BatchTelemetry, EngineReport};

use cache::ShardedLru;
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// One response, in the input order of the batch.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// An atomic query's outcome.
    Single(EvalOutcome),
    /// A macro-query's outcomes (sweep points or compared architectures),
    /// one per expanded point, in deterministic grid order.
    Sweep(Vec<(PointLabel, EvalOutcome)>),
    /// The query was malformed; nothing was evaluated for it.
    Invalid(ParspeedError),
}

impl Response {
    /// The single outcome, if this is an atomic response.
    pub fn single(&self) -> Option<&EvalOutcome> {
        match self {
            Response::Single(out) => Some(out),
            _ => None,
        }
    }

    /// The expanded points, if this is a macro-query response.
    pub fn sweep(&self) -> Option<&[(PointLabel, EvalOutcome)]> {
        match self {
            Response::Sweep(points) => Some(points),
            _ => None,
        }
    }
}

/// A batch's responses plus its telemetry.
#[derive(Debug, Clone)]
pub struct BatchOutput {
    /// One response per input query, in input order.
    pub responses: Vec<Response>,
    /// What the pipeline did.
    pub telemetry: BatchTelemetry,
}

/// Configuration for an [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    cache_capacity: usize,
    cache_shards: usize,
    threads: usize,
    experiment_runner: Option<ExperimentRunner>,
    checkpoints: Option<(Arc<CheckpointStore>, CheckpointPolicy)>,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        Self {
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            cache_shards: 16,
            threads: 0,
            experiment_runner: None,
            checkpoints: None,
        }
    }
}

/// The default result-cache capacity, in cached outcomes
/// (see [`EngineBuilder::cache_capacity`]).
pub const DEFAULT_CACHE_CAPACITY: usize = 65_536;

impl EngineBuilder {
    /// Total cached outcomes kept across batches. Defaults to
    /// [`DEFAULT_CACHE_CAPACITY`] (65 536 entries) — the CLI exposes this
    /// as `--cache-capacity` on `parspeed batch` and `parspeed sweep`.
    pub fn cache_capacity(mut self, entries: usize) -> Self {
        self.cache_capacity = entries;
        self
    }

    /// Number of cache shards (default 16).
    pub fn cache_shards(mut self, shards: usize) -> Self {
        self.cache_shards = shards;
        self
    }

    /// Executor worker threads; 0 (default) uses the machine parallelism,
    /// 1 runs strictly sequentially.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Registers the hook that serves [`Query::Experiment`] requests (the
    /// experiment harness lives above this crate). Without one, experiment
    /// queries answer [`ParspeedError::Unsupported`].
    pub fn experiment_runner(mut self, runner: ExperimentRunner) -> Self {
        self.experiment_runner = Some(runner);
        self
    }

    /// Enables checkpoint/restart for long solves: snapshots land in
    /// `store` at `policy`'s cadence, and a solve whose key already has a
    /// snapshot (left by an interrupted evaluation) resumes from it
    /// instead of restarting at iteration zero. Share one store
    /// (`Arc`-clone it into every engine of a fleet) so a solve killed on
    /// one shard resumes on the shard it fails over to. Resumed answers
    /// are bit-identical to uninterrupted ones; the reply carries
    /// `resumed_from` as provenance.
    pub fn checkpoints(mut self, store: Arc<CheckpointStore>, policy: CheckpointPolicy) -> Self {
        self.checkpoints = Some((store, policy));
        self
    }

    /// Builds the engine. A fixed thread count builds the worker pool
    /// here, once — the per-batch path only borrows it.
    pub fn build(self) -> Engine {
        let pool = (self.threads > 0).then(|| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(self.threads)
                .build()
                .expect("engine thread pool")
        });
        Engine {
            cache: ShardedLru::new(self.cache_capacity, self.cache_shards),
            threads: self.threads,
            pool,
            experiment_runner: self.experiment_runner,
            checkpoints: self.checkpoints,
            recorder: RwLock::new(None),
        }
    }
}

/// The query engine: owns the result cache; stateless otherwise. Batches
/// may be submitted from multiple threads (`&self`). Implements
/// [`Service`], which is how callers should reach it.
pub struct Engine {
    cache: ShardedLru<EvalKey, EvalOutcome>,
    threads: usize,
    pool: Option<rayon::ThreadPool>,
    experiment_runner: Option<ExperimentRunner>,
    checkpoints: Option<(Arc<CheckpointStore>, CheckpointPolicy)>,
    /// Per-stage latency recorder, installed by a serving layer (or any
    /// embedder) through [`Service::install_recorder`]. `None` — the
    /// default — skips every clock read in [`run_batch`](Engine::run_batch),
    /// so the library path costs nothing when observability is off.
    recorder: RwLock<Option<Arc<dyn Recorder>>>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::builder().build()
    }
}

impl Engine {
    /// Starts a configuration builder. Defaults: a result cache of
    /// [`DEFAULT_CACHE_CAPACITY`] (65 536) outcomes across 16 shards,
    /// machine-default executor parallelism, and no experiment runner.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Runs one batch through plan → cache → execute → assemble. Impure
    /// effect queries (thread measurements, experiments) execute
    /// sequentially after the parallel phase.
    ///
    /// With a [`Recorder`] installed (see [`Service::install_recorder`])
    /// the phases report per-stage wall time: `plan` (expansion +
    /// canonicalization), `dedup` (interning), `cache` (probes +
    /// insertions), and `exec` (parallel evaluation + sequential
    /// effects). Without one, no clocks beyond the single telemetry
    /// timestamp are read.
    pub fn run_batch(&self, queries: &[Query]) -> BatchOutput {
        let recorder = self.recorder.read().unwrap().clone();
        let t0 = Instant::now();
        let plan = match &recorder {
            None => Plan::build(queries),
            Some(rec) => {
                let (plan, timing) = Plan::build_timed(queries);
                rec.record(Stage::Plan, timing.plan_nanos);
                rec.record(Stage::Dedup, timing.dedup_nanos);
                plan
            }
        };

        // Cache probe: split unique keys into hits and misses.
        let t_cache = recorder.as_ref().map(|_| Instant::now());
        let mut outcomes: Vec<Option<EvalOutcome>> = Vec::with_capacity(plan.unique.len());
        let mut miss_idx: Vec<usize> = Vec::new();
        for (i, key) in plan.unique.iter().enumerate() {
            let cached = self.cache.get(key);
            if cached.is_none() {
                miss_idx.push(i);
            }
            outcomes.push(cached);
        }
        let cache_hits = plan.unique.len() - miss_idx.len();
        let mut cache_nanos = t_cache.map_or(0, |t| t.elapsed().as_nanos() as u64);

        // Evaluate the misses in parallel, in deterministic key order.
        let t_exec = recorder.as_ref().map(|_| Instant::now());
        let miss_keys: Vec<EvalKey> = miss_idx.iter().map(|&i| plan.unique[i]).collect();
        let ckpt = self.checkpoints.as_ref().map(|(store, policy)| (store.as_ref(), *policy));
        let fresh = exec::evaluate_all_ckpt(&miss_keys, self.pool.as_ref(), ckpt);
        let mut exec_nanos = t_exec.map_or(0, |t| t.elapsed().as_nanos() as u64);

        let t_insert = recorder.as_ref().map(|_| Instant::now());
        for (&i, outcome) in miss_idx.iter().zip(fresh) {
            // The cache stores the normalized outcome: `resumed_from` is
            // provenance of *this* evaluation (the value itself is
            // bit-identical either way), and a later cache hit did not
            // resume anything.
            self.cache.insert(plan.unique[i], normalize_resume(&outcome));
            outcomes[i] = Some(outcome);
        }
        cache_nanos += t_insert.map_or(0, |t| t.elapsed().as_nanos() as u64);

        // Effects run after the parallel phase, one at a time, so
        // wall-clock measurements see a quiet machine.
        let t_effects = recorder.as_ref().map(|_| Instant::now());
        let effect_outcomes: Vec<EvalOutcome> = plan
            .effects
            .iter()
            .map(|effect| exec::run_effect(effect, self.experiment_runner))
            .collect();
        exec_nanos += t_effects.map_or(0, |t| t.elapsed().as_nanos() as u64);
        if let Some(rec) = &recorder {
            rec.record(Stage::Cache, cache_nanos);
            rec.record(Stage::Exec, exec_nanos);
        }

        // Assemble responses in input order.
        let resolve =
            |i: usize| -> EvalOutcome { outcomes[i].clone().expect("every unique key resolved") };
        let responses: Vec<Response> = plan
            .slots
            .iter()
            .map(|slot| match slot {
                Slot::Single(i) => Response::Single(resolve(*i)),
                Slot::Sweep(points) => Response::Sweep(
                    points.iter().map(|(label, i)| (label.clone(), resolve(*i))).collect(),
                ),
                Slot::Effect(i) => Response::Single(effect_outcomes[*i].clone()),
                Slot::Invalid(e) => Response::Invalid(e.clone()),
            })
            .collect();

        BatchOutput {
            responses,
            telemetry: BatchTelemetry {
                queries: queries.len(),
                atoms: plan.atoms,
                unique: plan.unique.len(),
                cache_hits,
                evaluated: miss_idx.len(),
                effects: plan.effects.len(),
                threads: self.threads,
                wall_seconds: t0.elapsed().as_secs_f64(),
            },
        }
    }

    /// Installs (or, with `None`, removes) the per-stage latency
    /// recorder [`run_batch`](Engine::run_batch) reports through. Most
    /// callers go through [`Service::install_recorder`]; this is the
    /// typed entry point for embedders holding a concrete [`Engine`].
    pub fn set_recorder(&self, recorder: Option<Arc<dyn Recorder>>) {
        *self.recorder.write().unwrap() = recorder;
    }

    /// True when `query` would be answered entirely from the result
    /// cache: every unique evaluation it plans to is resident, and the
    /// query is a pure evaluation (effect queries — thread
    /// measurements, experiments — are never cached, and invalid
    /// queries have nothing to serve). A pure peek: neither recency nor
    /// the hit/miss counters move, so probing is free of observable
    /// side effects. This is the engine half of the serving tier's
    /// brownout mode — under pressure a server can answer exactly the
    /// queries this says are warm and shed the rest.
    pub fn is_cached(&self, query: &Query) -> bool {
        let plan = Plan::build(std::slice::from_ref(query));
        match &plan.slots[0] {
            Slot::Effect(_) | Slot::Invalid(_) => false,
            Slot::Single(_) | Slot::Sweep(_) => {
                plan.unique.iter().all(|key| self.cache.contains(key))
            }
        }
    }

    /// The checkpoint store this engine snapshots into, when
    /// checkpoint/restart is enabled (see [`EngineBuilder::checkpoints`]).
    /// Serving layers aggregate its counters into their metrics.
    pub fn checkpoint_store(&self) -> Option<&Arc<CheckpointStore>> {
        self.checkpoints.as_ref().map(|(store, _)| store)
    }

    /// Cumulative cache counters.
    pub fn cache_stats(&self) -> CacheStatsSnapshot {
        self.cache.stats()
    }

    /// Live cached outcomes.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }
}

/// The cache-ready copy of an outcome: a resumed solve is stored as if it
/// had run uninterrupted.
fn normalize_resume(outcome: &EvalOutcome) -> EvalOutcome {
    let mut normalized = outcome.clone();
    if let Ok(EvalValue::Solve { resumed_from: resumed @ Some(_), .. }) = &mut normalized {
        *resumed = None;
    }
    normalized
}

/// The naive baseline the engine is benchmarked against: evaluates every
/// atom of every query sequentially, with no dedup, no cache, and no
/// thread pool — exactly what a caller looping over direct point calls
/// would do. Effect queries run with no experiment runner (register one
/// through [`EngineBuilder::experiment_runner`] and use the engine for
/// those).
pub fn eval_naive(queries: &[Query]) -> Vec<Response> {
    queries
        .iter()
        .map(|q| {
            let plan = Plan::build(std::slice::from_ref(q));
            match &plan.slots[0] {
                Slot::Single(i) => Response::Single(exec::evaluate(&plan.unique[*i])),
                Slot::Sweep(points) => Response::Sweep(
                    points
                        .iter()
                        .map(|(label, i)| (label.clone(), exec::evaluate(&plan.unique[*i])))
                        .collect(),
                ),
                Slot::Effect(i) => Response::Single(exec::run_effect(&plan.effects[*i], None)),
                Slot::Invalid(e) => Response::Invalid(e.clone()),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(n: usize, procs: Option<usize>) -> Query {
        Query::Optimize {
            arch: ArchKind::SyncBus,
            machine: MachineSpec::default(),
            workload: WorkloadSpec { n, stencil: StencilSpec::FivePoint, shape: ShapeKey::Square },
            procs,
            memory_words: None,
        }
    }

    #[test]
    fn batch_matches_naive_exactly() {
        let batch: Vec<Query> = (1..=50).map(|i| q(32 + 7 * i, Some(i))).collect();
        let engine = Engine::builder().build();
        let fast = engine.run_batch(&batch);
        let slow = eval_naive(&batch);
        assert_eq!(fast.responses, slow);
    }

    #[test]
    fn duplicates_cost_one_evaluation() {
        let engine = Engine::builder().build();
        let out = engine.run_batch(&vec![q(256, Some(64)); 500]);
        assert_eq!(out.telemetry.atoms, 500);
        assert_eq!(out.telemetry.unique, 1);
        assert_eq!(out.telemetry.evaluated, 1);
        assert!((out.telemetry.dedup_factor() - 500.0).abs() < 1e-12);
        let first = out.responses[0].clone();
        assert!(out.responses.iter().all(|r| *r == first));
    }

    #[test]
    fn cache_carries_across_batches_without_changing_answers() {
        let engine = Engine::builder().build();
        let batch: Vec<Query> = (1..=30).map(|i| q(64 * i, None)).collect();
        let cold = engine.run_batch(&batch);
        assert_eq!(cold.telemetry.cache_hits, 0);
        assert_eq!(cold.telemetry.evaluated, 30);
        let warm = engine.run_batch(&batch);
        assert_eq!(warm.telemetry.cache_hits, 30);
        assert_eq!(warm.telemetry.evaluated, 0);
        assert_eq!(cold.responses, warm.responses);
    }

    #[test]
    fn invalid_queries_answer_in_place_without_poisoning_the_batch() {
        let engine = Engine::builder().build();
        let out = engine.run_batch(&[q(128, None), q(0, None), q(256, None)]);
        assert!(matches!(out.responses[0], Response::Single(Ok(_))));
        assert!(
            matches!(&out.responses[1], Response::Invalid(e) if e.to_string().contains("positive"))
        );
        assert!(matches!(out.responses[2], Response::Single(Ok(_))));
        assert_eq!(out.telemetry.atoms, 2);
    }

    #[test]
    fn is_cached_tracks_the_result_cache_without_touching_it() {
        let engine = Engine::builder().build();
        assert!(!engine.is_cached(&q(128, None)), "cold cache has nothing");
        engine.run_batch(&[q(128, None)]);
        let stats_before = engine.cache_stats();
        assert!(engine.is_cached(&q(128, None)));
        assert!(!engine.is_cached(&q(256, None)));
        // Probing moved no counters: it must be invisible on the
        // admission path.
        let stats_after = engine.cache_stats();
        assert_eq!(
            (stats_before.hits, stats_before.misses),
            (stats_after.hits, stats_after.misses)
        );
        // Invalid and effect queries are never "cached".
        assert!(!engine.is_cached(&q(0, None)));
        assert!(!engine.is_cached(&Query::Experiment { id: "e1".into(), quick: true }));
    }

    #[test]
    fn tiny_cache_still_answers_correctly() {
        let engine = Engine::builder().cache_capacity(2).cache_shards(1).build();
        let batch: Vec<Query> = (1..=20).map(|i| q(32 * i, None)).collect();
        let a = engine.run_batch(&batch);
        let b = engine.run_batch(&batch);
        assert_eq!(a.responses, b.responses);
        assert!(engine.cache_len() <= 2);
        assert!(engine.cache_stats().evictions > 0);
    }

    #[test]
    fn sequential_engine_matches_parallel_engine() {
        let batch: Vec<Query> = (1..=40).map(|i| q(48 * i, Some(i * 2))).collect();
        let seq = Engine::builder().threads(1).build().run_batch(&batch);
        let par = Engine::builder().threads(4).build().run_batch(&batch);
        assert_eq!(seq.responses, par.responses);
    }

    #[test]
    fn installed_recorder_attributes_engine_stages_without_changing_answers() {
        use parspeed_obs::StageSet;
        let engine = Engine::builder().build();
        let batch = vec![q(256, Some(64)); 100];
        let bare = engine.run_batch(&batch);

        let recorder = Arc::new(StageSet::new());
        engine.set_recorder(Some(recorder.clone()));
        let observed = engine.run_batch(&batch);
        assert_eq!(bare.responses, observed.responses);
        for stage in [Stage::Plan, Stage::Dedup, Stage::Cache, Stage::Exec] {
            assert_eq!(recorder.snapshot(stage).count(), 1, "one sample per batch for {stage:?}");
        }
        // The serving-layer stages are not the engine's to report.
        for stage in [Stage::Queue, Stage::Window, Stage::Route] {
            assert_eq!(recorder.snapshot(stage).count(), 0, "{stage:?} belongs to the server");
        }

        // Uninstalling stops attribution cold.
        engine.set_recorder(None);
        engine.run_batch(&batch);
        assert_eq!(recorder.snapshot(Stage::Plan).count(), 1);
    }

    #[test]
    fn effect_queries_execute_and_count_in_telemetry() {
        let engine = Engine::builder().build();
        let out = engine.run_batch(&[
            q(128, None),
            Query::Threads {
                n: 32,
                stencil: StencilSpec::FivePoint,
                shape: ShapeKey::Strip,
                threads: vec![1],
                iters: 1,
                repeats: 1,
            },
        ]);
        assert_eq!(out.telemetry.effects, 1);
        assert_eq!(out.telemetry.atoms, 1);
        assert!(matches!(
            &out.responses[1],
            Response::Single(Ok(EvalValue::Threads { points })) if points.len() == 1
        ));
    }
}
