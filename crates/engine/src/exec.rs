//! The executor: evaluates unique keys, fanning misses out across a
//! rayon-style thread pool.
//!
//! [`evaluate`] is the single source of truth for what a key *means*: it
//! reconstructs the exact `parspeed-core` call a direct caller would make
//! and forwards the result untouched, which is what the bit-identity tests
//! pin down. Everything above it (sharding, caching) only moves results
//! around.

use crate::request::{EvalKey, EvalOutcome, EvalValue, Lever};
use parspeed_core::isoefficiency::min_grid_for_efficiency;
use parspeed_core::minsize::{min_grid_side, min_problem_size_log2};
use parspeed_core::{leverage, optimize_constrained, MemoryBudget, Workload};
use rayon::prelude::*;
use rayon::ThreadPool;

/// Evaluates one canonical key through `parspeed-core`.
pub fn evaluate(key: &EvalKey) -> EvalOutcome {
    match *key {
        EvalKey::Optimize { arch, machine, n, shape, e, k, budget, memory_words } => {
            let m = machine.to_params();
            let model = arch.model(&m);
            let w = Workload::with_constants(n, shape.to_shape(), e.get(), k);
            let memory = memory_words.map(|words| MemoryBudget::words(words as f64));
            match optimize_constrained(model.as_ref(), &w, budget.to_budget(), memory) {
                Ok(opt) => Ok(EvalValue::Optimum {
                    processors: opt.processors,
                    area: opt.area,
                    cycle_time: opt.cycle_time,
                    speedup: opt.speedup,
                    efficiency: opt.efficiency,
                    used_all: opt.used_all,
                }),
                Err(infeasible) => Err(infeasible.to_string()),
            }
        }
        EvalKey::MinSize { variant, machine, e, k, procs } => {
            let m = machine.to_params();
            let v = variant.to_variant();
            Ok(EvalValue::MinSize {
                n_side: min_grid_side(&m, e.get(), k.get(), procs, v),
                log2_points: min_problem_size_log2(&m, e.get(), k.get(), procs, v),
            })
        }
        EvalKey::Isoefficiency { arch, machine, shape, e, k, procs, efficiency } => {
            let m = machine.to_params();
            let model = arch.model(&m);
            // The template's own grid side is irrelevant: the search scales
            // it; only shape and the stencil constants carry through.
            let template = Workload::with_constants(2, shape.to_shape(), e.get(), k);
            Ok(EvalValue::Isoefficiency {
                n: min_grid_for_efficiency(model.as_ref(), &template, procs, efficiency.get()),
            })
        }
        EvalKey::Leverage { machine, n, shape, e, k, budget, lever, factor } => {
            let m = machine.to_params();
            let w = Workload::with_constants(n, shape.to_shape(), e.get(), k);
            let b = budget.to_budget();
            let report = match lever {
                Lever::Bus => leverage::bus_speedup(&m, &w, b, factor.get()),
                Lever::Flop => leverage::flop_speedup(&m, &w, b, factor.get()),
                Lever::Overhead => leverage::overhead_scaling(&m, &w, b, factor.get()),
            };
            Ok(EvalValue::Leverage {
                baseline: report.baseline,
                upgraded: report.upgraded,
                factor: report.factor(),
            })
        }
    }
}

/// Evaluates `keys` in parallel, returning outcomes in input order.
///
/// `pool` is the caller's long-lived worker pool ([`crate::Engine`] builds
/// one at construction so the per-batch hot path never pays pool setup);
/// `None` uses the machine-default parallelism. Single-key batches skip
/// the pool entirely.
pub fn evaluate_all(keys: &[EvalKey], pool: Option<&ThreadPool>) -> Vec<EvalOutcome> {
    if keys.len() <= 1 {
        return keys.iter().map(evaluate).collect();
    }
    let run = || keys.par_iter().map(evaluate).collect();
    match pool {
        Some(pool) => pool.install(run),
        None => run(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{ArchKind, BudgetKey, F64Key, MachineKey, ShapeKey};
    use parspeed_core::{ArchModel, MachineParams, ProcessorBudget, SyncBus};

    fn key_256_square_64() -> EvalKey {
        EvalKey::Optimize {
            arch: ArchKind::SyncBus,
            machine: MachineKey::new(&MachineParams::paper_defaults()),
            n: 256,
            shape: ShapeKey::Square,
            e: F64Key::new(6.0),
            k: 1,
            budget: BudgetKey::Limited(64),
            memory_words: None,
        }
    }

    #[test]
    fn optimize_matches_direct_core_call_bit_for_bit() {
        let m = MachineParams::paper_defaults();
        let w = Workload::with_constants(256, ShapeKey::Square.to_shape(), 6.0, 1);
        let direct = SyncBus::new(&m).optimize(&w, ProcessorBudget::Limited(64));
        match evaluate(&key_256_square_64()).unwrap() {
            EvalValue::Optimum { processors, area, cycle_time, speedup, efficiency, used_all } => {
                assert_eq!(processors, direct.processors);
                assert_eq!(area.to_bits(), direct.area.to_bits());
                assert_eq!(cycle_time.to_bits(), direct.cycle_time.to_bits());
                assert_eq!(speedup.to_bits(), direct.speedup.to_bits());
                assert_eq!(efficiency.to_bits(), direct.efficiency.to_bits());
                assert_eq!(used_all, direct.used_all);
            }
            other => panic!("expected optimum, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_memory_becomes_an_error_outcome() {
        let key = EvalKey::Optimize {
            arch: ArchKind::SyncBus,
            machine: MachineKey::new(&MachineParams::paper_defaults()),
            n: 1024,
            shape: ShapeKey::Square,
            e: F64Key::new(6.0),
            k: 1,
            budget: BudgetKey::Limited(4),
            memory_words: Some(8), // 1024²/4 words needed per processor
        };
        let out = evaluate(&key);
        assert!(matches!(&out, Err(msg) if msg.contains("does not fit")));
    }

    #[test]
    fn parallel_and_sequential_evaluation_agree_exactly() {
        let keys: Vec<EvalKey> = (0..40)
            .map(|i| EvalKey::Optimize {
                arch: ArchKind::all()[i % 6],
                machine: MachineKey::new(&MachineParams::paper_defaults()),
                n: 64 << (i % 4),
                shape: if i % 2 == 0 { ShapeKey::Square } else { ShapeKey::Strip },
                e: F64Key::new(6.0),
                k: 1,
                budget: BudgetKey::Limited(1 + i),
                memory_words: None,
            })
            .collect();
        let seq: Vec<EvalOutcome> = keys.iter().map(evaluate).collect();
        let single = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let four = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(seq, evaluate_all(&keys, Some(&single)));
        assert_eq!(seq, evaluate_all(&keys, Some(&four)));
        assert_eq!(seq, evaluate_all(&keys, None));
    }
}
