//! The executor: evaluates unique keys, fanning misses out across a
//! rayon-style thread pool, and runs impure effects sequentially.
//!
//! [`evaluate`] is the single source of truth for what a key *means*: it
//! reconstructs the exact call a direct caller would make — into
//! `parspeed-core` for the analytic queries, `parspeed-arch` for
//! event-level simulations, `parspeed-solver`/`parspeed-exec` for real
//! solves — and forwards the result untouched, which is what the
//! bit-identity tests pin down. Everything above it (sharding, caching)
//! only moves results around.
//!
//! [`run_effect`] is the impure counterpart: wall-clock measurements and
//! experiment regenerations execute here, one at a time, after the
//! parallel phase, so timings are never polluted by concurrent model
//! evaluations.

use crate::error::ParspeedError;
use crate::request::{
    CheckKey, EffectKey, EvalKey, EvalOutcome, EvalValue, Lever, ShapeKey, SolverKind,
};
use parspeed_arch::{
    AsyncBusSim, BanyanSim, CycleReport, IterationSpec, Mesh2dSim, NeighborExchangeSim,
    ScheduledBusSim, SyncBusSim,
};
use parspeed_core::isoefficiency::min_grid_for_efficiency;
use parspeed_core::minsize::{min_grid_side, min_problem_size_log2};
use parspeed_core::{leverage, optimize_constrained, table1, MemoryBudget, Workload};
use parspeed_exec::measure::measure_scaling;
use parspeed_exec::PartitionedJacobi;
use parspeed_grid::{Decomposition, Grid2D, RectDecomposition, StripDecomposition};
use parspeed_solver::{
    CgSolver, CheckpointCtx, CheckpointPolicy, CheckpointStore, JacobiSolver, Manufactured,
    MultigridSolver, PoissonProblem, RedBlackSolver, SolveStatus, SorSolver,
};
use rayon::prelude::*;
use rayon::ThreadPool;

/// Halo depth for `solver=parallel` runs: one exchange funds up to this
/// many local sub-iterations. Results and check schedules are identical
/// at any depth (the executor is bit-identical to sequential Jacobi);
/// deeper halos trade redundant ghost arithmetic for fewer exchange
/// rounds, with diminishing returns past a handful of sub-iterations.
const DEEP_HALO_DEPTH: usize = 4;

/// The hook through which [`Query::Experiment`](crate::Query::Experiment)
/// requests are served. The experiment harness lives *above* this crate
/// (it depends on the engine), so the engine takes the runner by
/// dependency inversion: register one with
/// [`EngineBuilder::experiment_runner`](crate::EngineBuilder::experiment_runner).
pub type ExperimentRunner = fn(&str, bool) -> Result<String, String>;

/// Builds the decomposition a simulate query runs on, or the error that
/// makes it impossible. The single home of these validations and their
/// messages: the planner calls this (discarding the decomposition) to
/// reject impossible queries up front, and [`evaluate`] calls it again to
/// run — the two can never drift.
pub fn build_decomposition(
    n: usize,
    procs: usize,
    shape: ShapeKey,
) -> Result<Box<dyn Decomposition>, ParspeedError> {
    match shape {
        ShapeKey::Strip => {
            if procs > n {
                return Err(ParspeedError::invalid(format!(
                    "{procs} strips need a grid of at least {procs} rows"
                )));
            }
            Ok(Box::new(StripDecomposition::new(n, procs)))
        }
        ShapeKey::Square => RectDecomposition::near_square(n, procs)
            .map(|d| Box::new(d) as Box<dyn Decomposition>)
            .ok_or_else(|| {
                ParspeedError::invalid(format!(
                    "no near-square decomposition of a {n}×{n} grid into {procs} blocks; \
                     try a processor count with a factor dividing {n}"
                ))
            }),
    }
}

/// The validation a solve query must pass before it can run — shared by
/// the planner and the evaluator so the message never forks.
pub fn solve_plan_error(n: usize, solver: SolverKind) -> Option<ParspeedError> {
    if solver == SolverKind::Multigrid && !parspeed_solver::multigrid_valid_side(n) {
        return Some(ParspeedError::invalid(format!(
            "multigrid needs n = 2^k − 1 (e.g. 63, 127, 255); got {n}"
        )));
    }
    None
}

/// The checkpoint-store key for a canonical evaluation: the same hash
/// family as [`crate::routing_hash`], so every shard of a fleet —
/// including the one a solve fails over to — derives the same key from
/// the same canonical evaluation.
pub fn checkpoint_key(key: &EvalKey) -> u64 {
    use std::hash::BuildHasher as _;
    crate::fxhash::FxBuildHasher::default().hash_one(key)
}

/// Evaluates one canonical key (without checkpoint/restart — the naive
/// baseline and single ad-hoc callers).
pub fn evaluate(key: &EvalKey) -> EvalOutcome {
    evaluate_ckpt(key, None)
}

/// Evaluates one canonical key, resuming long solves from (and
/// snapshotting them into) `ckpt`'s store when one is supplied.
pub fn evaluate_ckpt(key: &EvalKey, ckpt: Option<CheckpointCtx<'_>>) -> EvalOutcome {
    match *key {
        EvalKey::Optimize { arch, machine, n, shape, e, k, budget, memory_words } => {
            let m = machine.to_params();
            let model = arch.model(&m);
            let w = Workload::with_constants(n, shape.to_shape(), e.get(), k);
            let memory = memory_words.map(|words| MemoryBudget::words(words.get()));
            match optimize_constrained(model.as_ref(), &w, budget.to_budget(), memory) {
                Ok(opt) => Ok(EvalValue::Optimum {
                    processors: opt.processors,
                    area: opt.area,
                    cycle_time: opt.cycle_time,
                    speedup: opt.speedup,
                    efficiency: opt.efficiency,
                    used_all: opt.used_all,
                }),
                Err(infeasible) => Err(infeasible.into()),
            }
        }
        EvalKey::MinSize { variant, machine, e, k, procs } => {
            let m = machine.to_params();
            let v = variant.to_variant();
            Ok(EvalValue::MinSize {
                n_side: min_grid_side(&m, e.get(), k.get(), procs, v),
                log2_points: min_problem_size_log2(&m, e.get(), k.get(), procs, v),
            })
        }
        EvalKey::Isoefficiency { arch, machine, shape, e, k, procs, efficiency } => {
            let m = machine.to_params();
            let model = arch.model(&m);
            // The template's own grid side is irrelevant: the search scales
            // it; only shape and the stencil constants carry through.
            let template = Workload::with_constants(2, shape.to_shape(), e.get(), k);
            Ok(EvalValue::Isoefficiency {
                n: min_grid_for_efficiency(model.as_ref(), &template, procs, efficiency.get()),
            })
        }
        EvalKey::Leverage { machine, n, shape, e, k, budget, lever, factor } => {
            let m = machine.to_params();
            let w = Workload::with_constants(n, shape.to_shape(), e.get(), k);
            let b = budget.to_budget();
            let report = match lever {
                Lever::Bus => leverage::bus_speedup(&m, &w, b, factor.get()),
                Lever::Flop => leverage::flop_speedup(&m, &w, b, factor.get()),
                Lever::Overhead => leverage::overhead_scaling(&m, &w, b, factor.get()),
            };
            Ok(EvalValue::Leverage {
                baseline: report.baseline,
                upgraded: report.upgraded,
                factor: report.factor(),
            })
        }
        EvalKey::Table1 { machine, n, stencil } => {
            let m = machine.to_params();
            Ok(EvalValue::Table1 { rows: table1::rows(&m, n, &stencil.to_stencil()) })
        }
        EvalKey::Simulate { arch, machine, n, shape, stencil, procs } => {
            let m = machine.to_params();
            let stencil = stencil.to_stencil();
            let decomp = build_decomposition(n, procs, shape)?;
            let spec = IterationSpec::new(decomp.as_ref(), &stencil);
            use crate::request::SimArchKind::*;
            let report: CycleReport = match arch {
                Hypercube => NeighborExchangeSim::hypercube(&m).simulate(&spec),
                Mesh => NeighborExchangeSim::mesh(&m).simulate(&spec),
                Mesh2d => Mesh2dSim::new(&m).simulate(&spec).cycle,
                SyncBus => SyncBusSim::new(&m).simulate(&spec),
                AsyncBus => AsyncBusSim::new(&m).simulate(&spec),
                ScheduledBus => ScheduledBusSim::new(&m).simulate(&spec),
                Banyan => BanyanSim::new(&m).simulate(&spec).cycle,
            };
            let model = arch.model_kind().model(&m);
            let w = Workload::new(n, &stencil, shape.to_shape());
            Ok(EvalValue::Simulate {
                cycle_time: report.cycle_time,
                max_compute: report.max_compute,
                comm_fraction: report.comm_fraction(),
                predicted: model.cycle_time(&w, w.points() / procs as f64),
                seq_time: model.seq_time(&w),
            })
        }
        EvalKey::Solve { n, solver, tol, stencil, partitions, max_iters, check } => {
            solve(n, solver, tol.get(), stencil.to_stencil(), partitions, max_iters, check, ckpt)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn solve(
    n: usize,
    solver: SolverKind,
    tol: f64,
    stencil: parspeed_stencil::Stencil,
    partitions: usize,
    max_iters: usize,
    check: Option<CheckKey>,
    ckpt: Option<CheckpointCtx<'_>>,
) -> EvalOutcome {
    let problem = PoissonProblem::manufactured(n, Manufactured::SinSin);
    let mut global_reductions = None;
    let mut resumed_from = None;
    // An unset policy runs the solver's historical default schedule.
    let policy =
        check.map(CheckKey::to_policy).unwrap_or_else(|| solver.default_check().to_policy());
    let (u, status): (Grid2D, SolveStatus) = match solver {
        SolverKind::Jacobi => {
            let s = JacobiSolver { tol, max_iters, check: policy, ..Default::default() };
            let (u, status, resumed) = s.solve_checkpointed(&problem, &stencil, ckpt);
            resumed_from = resumed;
            (u, status)
        }
        SolverKind::Sor => SorSolver { max_iters, check: policy, ..SorSolver::optimal(n, tol) }
            .solve(&problem, &stencil),
        SolverKind::RedBlack => {
            RedBlackSolver { max_iters, ..RedBlackSolver::optimal(n, tol) }.solve(&problem)
        }
        SolverKind::Cg => {
            let (u, s, stats) = CgSolver { tol, max_iters }.solve(&problem);
            global_reductions = Some(stats.global_reductions);
            (u, s)
        }
        SolverKind::Multigrid => {
            if let Some(e) = solve_plan_error(n, solver) {
                return Err(e);
            }
            MultigridSolver { tol, max_cycles: max_iters.min(1000), ..Default::default() }
                .solve(&problem)
        }
        SolverKind::Parallel => {
            let parts = partitions.clamp(1, n);
            let d = StripDecomposition::new(n, parts);
            // Deep halos: one exchange funds up to a block of local
            // sub-iterations (identical iterates and check schedule, ~depth×
            // fewer exchange rounds). Blocks never outrun the next check,
            // so cap the depth by the policy's first gap — an every:1
            // schedule gets the classic depth-1 executor rather than
            // paying for ghost frames it can never amortize.
            let depth = DEEP_HALO_DEPTH.min(policy.first_check()).max(1);
            let mut exec = PartitionedJacobi::with_depth(&problem, &stencil, &d, depth);
            let (run, resumed) = exec.solve_checkpointed(tol, max_iters, policy, ckpt);
            resumed_from = resumed;
            let status = SolveStatus {
                converged: run.converged,
                iterations: run.iterations,
                final_diff: run.final_diff,
            };
            (exec.solution(), status)
        }
    };
    Ok(EvalValue::Solve {
        converged: status.converged,
        iterations: status.iterations,
        final_diff: status.final_diff,
        max_error: error_vs_exact(&problem, &u),
        global_reductions,
        resumed_from,
    })
}

/// Max-norm error of a solution grid against the manufactured sin·sin
/// exact solution (the solve queries' quality figure).
fn error_vs_exact(problem: &PoissonProblem, u: &Grid2D) -> f64 {
    let exact = Manufactured::SinSin;
    let h = problem.h();
    let mut worst = 0.0f64;
    for r in 0..problem.n() {
        for c in 0..problem.n() {
            let x = (c as f64 + 1.0) * h;
            let y = (r as f64 + 1.0) * h;
            worst = worst.max((u.get(r, c) - exact.u(x, y)).abs());
        }
    }
    worst
}

/// Runs one impure effect. `runner` serves experiment requests; without
/// one they answer [`ParspeedError::Unsupported`].
pub fn run_effect(effect: &EffectKey, runner: Option<ExperimentRunner>) -> EvalOutcome {
    match effect {
        EffectKey::Threads { n, stencil, shape, threads, iters, repeats } => {
            let problem = PoissonProblem::laplace(*n, 0.0);
            let points = measure_scaling(
                &problem,
                &stencil.to_stencil(),
                shape.to_shape(),
                threads,
                *iters,
                *repeats,
            );
            Ok(EvalValue::Threads { points })
        }
        EffectKey::Experiment { id, quick } => match runner {
            None => {
                Err(ParspeedError::unsupported("no experiment runner registered on this engine"))
            }
            Some(run) => match run(id, *quick) {
                Ok(text) => Ok(EvalValue::Report(text)),
                Err(msg) => Err(ParspeedError::invalid(msg)),
            },
        },
    }
}

/// Evaluates `keys` in parallel, returning outcomes in input order.
///
/// `pool` is the caller's long-lived worker pool ([`crate::Engine`] builds
/// one at construction so the per-batch hot path never pays pool setup);
/// `None` uses the machine-default parallelism. Single-key batches skip
/// the pool entirely.
pub fn evaluate_all(keys: &[EvalKey], pool: Option<&ThreadPool>) -> Vec<EvalOutcome> {
    evaluate_all_ckpt(keys, pool, None)
}

/// [`evaluate_all`] with checkpoint/restart: when `ckpt` supplies a
/// store and cadence, long solves snapshot at check boundaries under
/// [`checkpoint_key`] and resume from any snapshot a previous
/// (interrupted) evaluation of the same key left behind.
pub fn evaluate_all_ckpt(
    keys: &[EvalKey],
    pool: Option<&ThreadPool>,
    ckpt: Option<(&CheckpointStore, CheckpointPolicy)>,
) -> Vec<EvalOutcome> {
    let eval = |key: &EvalKey| {
        let ctx =
            ckpt.map(|(store, policy)| CheckpointCtx { store, policy, key: checkpoint_key(key) });
        evaluate_ckpt(key, ctx)
    };
    if keys.len() <= 1 {
        return keys.iter().map(eval).collect();
    }
    let run = || keys.par_iter().map(eval).collect();
    match pool {
        Some(pool) => pool.install(run),
        None => run(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{
        ArchKind, BudgetKey, F64Key, MachineKey, ShapeKey, SimArchKind, StencilKey,
    };
    use parspeed_core::{ArchModel, MachineParams, ProcessorBudget, SyncBus};

    fn key_256_square_64() -> EvalKey {
        EvalKey::Optimize {
            arch: ArchKind::SyncBus,
            machine: MachineKey::new(&MachineParams::paper_defaults()),
            n: 256,
            shape: ShapeKey::Square,
            e: F64Key::new(6.0),
            k: 1,
            budget: BudgetKey::Limited(64),
            memory_words: None,
        }
    }

    #[test]
    fn optimize_matches_direct_core_call_bit_for_bit() {
        let m = MachineParams::paper_defaults();
        let w = Workload::with_constants(256, ShapeKey::Square.to_shape(), 6.0, 1);
        let direct = SyncBus::new(&m).optimize(&w, ProcessorBudget::Limited(64));
        match evaluate(&key_256_square_64()).unwrap() {
            EvalValue::Optimum { processors, area, cycle_time, speedup, efficiency, used_all } => {
                assert_eq!(processors, direct.processors);
                assert_eq!(area.to_bits(), direct.area.to_bits());
                assert_eq!(cycle_time.to_bits(), direct.cycle_time.to_bits());
                assert_eq!(speedup.to_bits(), direct.speedup.to_bits());
                assert_eq!(efficiency.to_bits(), direct.efficiency.to_bits());
                assert_eq!(used_all, direct.used_all);
            }
            other => panic!("expected optimum, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_memory_becomes_an_error_outcome() {
        let key = EvalKey::Optimize {
            arch: ArchKind::SyncBus,
            machine: MachineKey::new(&MachineParams::paper_defaults()),
            n: 1024,
            shape: ShapeKey::Square,
            e: F64Key::new(6.0),
            k: 1,
            budget: BudgetKey::Limited(4),
            memory_words: Some(crate::request::F64Key::new(8.0)), // 1024²/4 words needed
        };
        let out = evaluate(&key);
        assert!(matches!(&out, Err(e) if e.to_string().contains("does not fit")));
        assert!(matches!(&out, Err(e) if e.kind() == "infeasible"));
    }

    #[test]
    fn table1_matches_direct_rows() {
        let m = MachineParams::paper_defaults();
        let key = EvalKey::Table1 {
            machine: MachineKey::new(&m),
            n: 1024,
            stencil: StencilKey::FivePoint,
        };
        let direct = table1::rows(&m, 1024, &StencilKey::FivePoint.to_stencil());
        match evaluate(&key).unwrap() {
            EvalValue::Table1 { rows } => assert_eq!(rows, direct),
            other => panic!("expected table1, got {other:?}"),
        }
    }

    #[test]
    fn simulate_matches_direct_simulator_run() {
        let m = MachineParams::paper_defaults();
        let key = EvalKey::Simulate {
            arch: SimArchKind::SyncBus,
            machine: MachineKey::new(&m),
            n: 64,
            shape: ShapeKey::Strip,
            stencil: StencilKey::FivePoint,
            procs: 4,
        };
        let stencil = StencilKey::FivePoint.to_stencil();
        let decomp = StripDecomposition::new(64, 4);
        let spec = IterationSpec::new(&decomp, &stencil);
        let direct = SyncBusSim::new(&m).simulate(&spec);
        match evaluate(&key).unwrap() {
            EvalValue::Simulate { cycle_time, max_compute, comm_fraction, .. } => {
                assert_eq!(cycle_time.to_bits(), direct.cycle_time.to_bits());
                assert_eq!(max_compute.to_bits(), direct.max_compute.to_bits());
                assert_eq!(comm_fraction.to_bits(), direct.comm_fraction().to_bits());
            }
            other => panic!("expected simulate, got {other:?}"),
        }
    }

    #[test]
    fn solve_matches_direct_solver_run() {
        let key = EvalKey::Solve {
            n: 31,
            solver: SolverKind::Cg,
            tol: F64Key::new(1e-9),
            stencil: StencilKey::FivePoint,
            partitions: 0,
            max_iters: 10_000,
            check: None,
        };
        let problem = PoissonProblem::manufactured(31, Manufactured::SinSin);
        let (u, s, stats) = CgSolver { tol: 1e-9, max_iters: 10_000 }.solve(&problem);
        match evaluate(&key).unwrap() {
            EvalValue::Solve {
                converged,
                iterations,
                final_diff,
                max_error,
                global_reductions,
                resumed_from,
            } => {
                assert_eq!(converged, s.converged);
                assert_eq!(iterations, s.iterations);
                assert_eq!(final_diff.to_bits(), s.final_diff.to_bits());
                assert_eq!(max_error.to_bits(), error_vs_exact(&problem, &u).to_bits());
                assert_eq!(global_reductions, Some(stats.global_reductions));
                assert_eq!(resumed_from, None);
            }
            other => panic!("expected solve, got {other:?}"),
        }
    }

    #[test]
    fn checkpointed_evaluation_resumes_bit_identically_and_cleans_up() {
        let key = EvalKey::Solve {
            n: 16,
            solver: SolverKind::Jacobi,
            tol: F64Key::new(1e-8),
            stencil: StencilKey::FivePoint,
            partitions: 0,
            max_iters: 10_000,
            check: None,
        };
        let clean = evaluate(&key).unwrap();

        // Interrupt: a budget-capped run of the same solve stands in for a
        // shard dying mid-evaluation — its snapshots stay in the shared
        // store under the canonical checkpoint key.
        let store = CheckpointStore::new(8);
        let problem = PoissonProblem::manufactured(16, Manufactured::SinSin);
        let policy = SolverKind::Jacobi.default_check().to_policy();
        let ctx = CheckpointCtx {
            store: &store,
            policy: CheckpointPolicy::default(),
            key: checkpoint_key(&key),
        };
        let capped = JacobiSolver { tol: 1e-8, max_iters: 40, check: policy, ..Default::default() };
        let (_, partial, _) =
            capped.solve_checkpointed(&problem, &StencilKey::FivePoint.to_stencil(), Some(ctx));
        assert!(!partial.converged && !store.is_empty(), "the interruption left a snapshot");

        // Failover: evaluating the same canonical key against the store
        // resumes the solve instead of restarting it — and the answer is
        // bit-identical to the uninterrupted run.
        let out = evaluate_all_ckpt(&[key], None, Some((&store, CheckpointPolicy::default())));
        match (clean, out[0].clone().unwrap()) {
            (
                EvalValue::Solve { converged, iterations, final_diff, max_error, .. },
                EvalValue::Solve {
                    converged: c2,
                    iterations: i2,
                    final_diff: f2,
                    max_error: e2,
                    resumed_from,
                    ..
                },
            ) => {
                assert_eq!(converged, c2);
                assert_eq!(iterations, i2);
                assert_eq!(final_diff.to_bits(), f2.to_bits());
                assert_eq!(max_error.to_bits(), e2.to_bits());
                let from = resumed_from.expect("the failover run resumed");
                assert!(from > 0 && from < iterations);
            }
            other => panic!("expected two solves, got {other:?}"),
        }
        assert!(store.is_empty(), "a converged solve cleans up its snapshot");
        assert_eq!(store.resumes(), 1);
    }

    #[test]
    fn experiment_effect_without_runner_is_unsupported() {
        let out = run_effect(&EffectKey::Experiment { id: "e1".into(), quick: true }, None);
        assert!(matches!(&out, Err(e) if e.kind() == "unsupported"));
    }

    #[test]
    fn experiment_effect_routes_through_the_runner() {
        fn runner(id: &str, quick: bool) -> Result<String, String> {
            match id {
                "e1" => Ok(format!("report quick={quick}")),
                other => Err(format!("unknown experiment `{other}`")),
            }
        }
        let ok = run_effect(&EffectKey::Experiment { id: "e1".into(), quick: true }, Some(runner));
        assert_eq!(ok.unwrap(), EvalValue::Report("report quick=true".into()));
        let err =
            run_effect(&EffectKey::Experiment { id: "e99".into(), quick: false }, Some(runner));
        assert!(matches!(&err, Err(e) if e.to_string().contains("e99")));
    }

    #[test]
    fn parallel_and_sequential_evaluation_agree_exactly() {
        let keys: Vec<EvalKey> = (0..40)
            .map(|i| EvalKey::Optimize {
                arch: ArchKind::all()[i % 6],
                machine: MachineKey::new(&MachineParams::paper_defaults()),
                n: 64 << (i % 4),
                shape: if i % 2 == 0 { ShapeKey::Square } else { ShapeKey::Strip },
                e: F64Key::new(6.0),
                k: 1,
                budget: BudgetKey::Limited(1 + i),
                memory_words: None,
            })
            .collect();
        let seq: Vec<EvalOutcome> = keys.iter().map(evaluate).collect();
        let single = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let four = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(seq, evaluate_all(&keys, Some(&single)));
        assert_eq!(seq, evaluate_all(&keys, Some(&four)));
        assert_eq!(seq, evaluate_all(&keys, None));
    }
}
