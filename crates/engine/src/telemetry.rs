//! Per-batch telemetry: what the pipeline did and how fast.

use crate::cache::CacheStatsSnapshot;
use std::fmt;

/// Measurements for one [`run_batch`](crate::Engine::run_batch) call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchTelemetry {
    /// Input queries in the batch (sweeps count once here).
    pub queries: usize,
    /// Atomic evaluations after sweep expansion, before dedup.
    pub atoms: usize,
    /// Unique evaluation keys after dedup.
    pub unique: usize,
    /// Unique keys served from the cache.
    pub cache_hits: usize,
    /// Unique keys actually evaluated this batch.
    pub evaluated: usize,
    /// Impure effects (measurements, experiment runs) executed this
    /// batch — never deduplicated or cached.
    pub effects: usize,
    /// Worker threads targeted by the executor (0 = machine default).
    pub threads: usize,
    /// Wall-clock seconds for the whole batch.
    pub wall_seconds: f64,
}

impl BatchTelemetry {
    /// Atoms per unique evaluation (1.0 when nothing repeats).
    pub fn dedup_factor(&self) -> f64 {
        if self.unique == 0 {
            1.0
        } else {
            self.atoms as f64 / self.unique as f64
        }
    }

    /// Fraction of unique keys served from the cache.
    pub fn hit_rate(&self) -> f64 {
        if self.unique == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.unique as f64
        }
    }

    /// Answered atoms per second of wall time.
    pub fn queries_per_second(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.atoms as f64 / self.wall_seconds
        } else {
            f64::INFINITY
        }
    }
}

impl fmt::Display for BatchTelemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} queries → {} atoms → {} unique ({:.1}× dedup), {} cache hits \
             ({:.0}% of unique), {} evaluated in {:.3} ms ({:.0} queries/s)",
            self.queries,
            self.atoms,
            self.unique,
            self.dedup_factor(),
            self.cache_hits,
            100.0 * self.hit_rate(),
            self.evaluated,
            self.wall_seconds * 1e3,
            self.queries_per_second(),
        )
    }
}

/// Telemetry plus the cumulative cache counters at batch end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineReport {
    /// The batch measurements.
    pub batch: BatchTelemetry,
    /// Cumulative cache counters (across the engine's lifetime).
    pub cache: CacheStatsSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> BatchTelemetry {
        BatchTelemetry {
            queries: 10,
            atoms: 100,
            unique: 25,
            cache_hits: 5,
            evaluated: 20,
            effects: 0,
            threads: 4,
            wall_seconds: 0.05,
        }
    }

    #[test]
    fn derived_ratios() {
        let t = t();
        assert!((t.dedup_factor() - 4.0).abs() < 1e-12);
        assert!((t.hit_rate() - 0.2).abs() < 1e-12);
        assert!((t.queries_per_second() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn empty_batch_is_well_defined() {
        let z = BatchTelemetry {
            queries: 0,
            atoms: 0,
            unique: 0,
            cache_hits: 0,
            evaluated: 0,
            effects: 0,
            threads: 0,
            wall_seconds: 0.0,
        };
        assert_eq!(z.dedup_factor(), 1.0);
        assert_eq!(z.hit_rate(), 0.0);
        assert!(z.queries_per_second().is_infinite());
    }

    #[test]
    fn display_mentions_the_load_bearing_numbers() {
        let s = t().to_string();
        assert!(s.contains("100 atoms"));
        assert!(s.contains("4.0× dedup"));
        assert!(s.contains("5 cache hits"));
    }
}
