//! Sharded LRU result cache.
//!
//! Keys are canonical [`EvalKey`](crate::EvalKey)s, so the cache can only ever serve a hit
//! for a bit-identical evaluation — caching is invisible in the responses
//! by construction and the tests assert it. Sharding (hash-partitioned
//! mutexes) keeps the executor's worker threads from serializing on one
//! lock; recency is tracked per shard with a lazily-invalidated queue, so
//! `get`/`insert` stay amortized O(1).
//!
//! Each operation hashes its key with [`FxHasher`] exactly **once**: the
//! high bits pick the shard and the full value doubles as the bucket key
//! of the shard's map (which uses an identity hasher), instead of the
//! key being hashed a second time by the inner `HashMap`. Hash collisions
//! are handled by the buckets comparing full keys.

use crate::fxhash::FxHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Pass-through hasher for keys that already *are* an `FxHasher` output;
/// used by the shard maps so a cached hash is never re-hashed.
#[derive(Default)]
struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("identity hasher only accepts u64 keys");
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

type IdentityBuild = BuildHasherDefault<IdentityHasher>;

fn fx_hash<K: Hash>(key: &K) -> u64 {
    let mut h = FxHasher::default();
    key.hash(&mut h);
    h.finish()
}

/// Monotonic cache counters (atomics: workers record hits concurrently).
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

/// A point-in-time copy of the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStatsSnapshot {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Values stored.
    pub insertions: u64,
    /// Values displaced by capacity pressure.
    pub evictions: u64,
}

impl CacheStatsSnapshot {
    /// Hits per lookup, 0.0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Shard<K, V> {
    /// Buckets keyed by the caller-supplied `FxHasher` value (identity
    /// hasher: the value is used as-is). A bucket holds every live entry
    /// whose key hashes to that value — almost always exactly one.
    map: HashMap<u64, Vec<Entry<K, V>>, IdentityBuild>,
    /// Live entries across all buckets.
    len: usize,
    /// Recency queue of `(stamp, hash, key)`; stale stamps are skipped on
    /// pop.
    order: VecDeque<(u64, u64, K)>,
    tick: u64,
}

struct Entry<K, V> {
    key: K,
    value: V,
    stamp: u64,
}

impl<K: Hash + Eq + Clone, V: Clone> Shard<K, V> {
    fn new() -> Self {
        Shard { map: HashMap::default(), len: 0, order: VecDeque::new(), tick: 0 }
    }

    fn touch(&mut self, hash: u64, key: &K) -> u64 {
        self.tick += 1;
        self.order.push_back((self.tick, hash, key.clone()));
        self.tick
    }

    fn entry_is_live(&self, hash: u64, key: &K, stamp: u64) -> bool {
        self.map.get(&hash).is_some_and(|b| b.iter().any(|e| e.stamp == stamp && &e.key == key))
    }

    /// Drops stale recency records once the queue far outgrows the live
    /// set. Hits and inserts both append records, so both must trim — a
    /// hit-only steady state (the warm serving case) would otherwise grow
    /// the queue forever. Callers invoke this only *after* syncing the
    /// touched key's map stamp: retaining earlier would discard the
    /// current operation's own record and leave its key unevictable.
    fn trim(&mut self) {
        if self.order.len() > 8 * (self.len + 8) {
            let map = &self.map;
            self.order.retain(|(stamp, hash, key)| {
                map.get(hash).is_some_and(|b| b.iter().any(|e| e.stamp == *stamp && &e.key == key))
            });
        }
    }

    fn get(&mut self, hash: u64, key: &K) -> Option<V> {
        let hit = self.map.get(&hash).is_some_and(|bucket| bucket.iter().any(|e| &e.key == key));
        if !hit {
            return None;
        }
        let stamp = self.touch(hash, key);
        let bucket = self.map.get_mut(&hash)?;
        let entry = bucket.iter_mut().find(|e| &e.key == key)?;
        entry.stamp = stamp;
        let value = entry.value.clone();
        self.trim();
        Some(value)
    }

    fn insert(&mut self, hash: u64, key: K, value: V, capacity: usize) -> u64 {
        let stamp = self.touch(hash, &key);
        let bucket = self.map.entry(hash).or_default();
        match bucket.iter_mut().find(|e| e.key == key) {
            Some(entry) => {
                entry.value = value;
                entry.stamp = stamp;
            }
            None => {
                bucket.push(Entry { key, value, stamp });
                self.len += 1;
            }
        }
        let mut evicted = 0u64;
        while self.len > capacity {
            let Some((stamp, hash, key)) = self.order.pop_front() else { break };
            if self.entry_is_live(hash, &key, stamp) {
                let bucket = self.map.get_mut(&hash).expect("live entry has a bucket");
                bucket.retain(|e| e.key != key);
                if bucket.is_empty() {
                    self.map.remove(&hash);
                }
                self.len -= 1;
                evicted += 1;
            }
        }
        self.trim();
        evicted
    }
}

/// A sharded least-recently-used map from canonical keys to results.
pub struct ShardedLru<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    capacity_per_shard: usize,
    stats: CacheStats,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedLru<K, V> {
    /// Builds a cache with `capacity` total entries spread over `shards`
    /// hash-partitioned shards (both floored at 1).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let capacity_per_shard = (capacity.max(1)).div_ceil(shards);
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            capacity_per_shard,
            stats: CacheStats::default(),
        }
    }

    /// Shard pick from an already-computed hash: the high bits, so the
    /// inner buckets (which consume the same hash from the low bits up)
    /// stay well spread within a shard.
    fn shard_of(&self, hash: u64) -> &Mutex<Shard<K, V>> {
        &self.shards[(hash >> 48) as usize % self.shards.len()]
    }

    /// Looks `key` up, refreshing its recency on a hit. The key is hashed
    /// once; the value picks the shard *and* serves as the bucket key.
    pub fn get(&self, key: &K) -> Option<V> {
        let hash = fx_hash(key);
        let out = self.shard_of(hash).lock().expect("cache shard poisoned").get(hash, key);
        match &out {
            Some(_) => self.stats.hits.fetch_add(1, Ordering::Relaxed),
            None => self.stats.misses.fetch_add(1, Ordering::Relaxed),
        };
        out
    }

    /// True when `key` is resident, without promoting it or touching the
    /// hit/miss counters — a pure peek for callers (the brownout prober)
    /// that ask "would this be a hit?" without committing to a lookup.
    /// Answering the probe must not distort recency or the measured hit
    /// rate, or the probe itself would keep cold keys warm.
    pub fn contains(&self, key: &K) -> bool {
        let hash = fx_hash(key);
        let shard = self.shard_of(hash).lock().expect("cache shard poisoned");
        shard.map.get(&hash).is_some_and(|bucket| bucket.iter().any(|e| &e.key == key))
    }

    /// Stores `value` under `key`, evicting least-recently-used entries of
    /// the same shard if the shard is over capacity.
    pub fn insert(&self, key: K, value: V) {
        let hash = fx_hash(&key);
        let evicted = self.shard_of(hash).lock().expect("cache shard poisoned").insert(
            hash,
            key,
            value,
            self.capacity_per_shard,
        );
        self.stats.insertions.fetch_add(1, Ordering::Relaxed);
        if evicted > 0 {
            self.stats.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Number of live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache shard poisoned").len).sum()
    }

    /// True when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time copy of the counters.
    pub fn stats(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            insertions: self.stats.insertions.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_the_stored_value() {
        let c: ShardedLru<u64, String> = ShardedLru::new(16, 4);
        assert_eq!(c.get(&1), None);
        c.insert(1, "one".into());
        assert_eq!(c.get(&1).as_deref(), Some("one"));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn contains_neither_promotes_nor_counts() {
        let c: ShardedLru<u64, String> = ShardedLru::new(16, 4);
        assert!(!c.contains(&1));
        c.insert(1, "one".into());
        assert!(c.contains(&1));
        assert!(!c.contains(&2));
        // The peek left the stats untouched: no hits, no misses.
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (0, 0, 1));
    }

    #[test]
    fn contains_does_not_refresh_recency() {
        // One shard, capacity 2: insert a, b, peek a, insert c. If the
        // peek promoted, b would be evicted; it must be a that goes.
        let c: ShardedLru<u64, u64> = ShardedLru::new(2, 1);
        c.insert(1, 10);
        c.insert(2, 20);
        assert!(c.contains(&1));
        c.insert(3, 30);
        assert!(!c.contains(&1), "peek must not have promoted key 1");
        assert!(c.contains(&2));
        assert!(c.contains(&3));
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        // Single shard so the recency order is global.
        let c: ShardedLru<u64, u64> = ShardedLru::new(2, 1);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(&1), Some(10)); // 1 is now most recent
        c.insert(3, 30); // evicts 2
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), Some(30));
        assert_eq!(c.len(), 2);
        assert!(c.stats().evictions >= 1);
    }

    #[test]
    fn reinsert_refreshes_not_duplicates() {
        let c: ShardedLru<u64, u64> = ShardedLru::new(4, 1);
        for _ in 0..100 {
            c.insert(7, 7);
        }
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&7), Some(7));
    }

    #[test]
    fn heavy_reuse_keeps_queue_bounded() {
        let c: ShardedLru<u64, u64> = ShardedLru::new(8, 1);
        for i in 0..10_000u64 {
            c.insert(i % 8, i);
            let _ = c.get(&(i % 8));
        }
        let shard = c.shards[0].lock().unwrap();
        assert!(shard.order.len() <= 8 * (shard.len + 8) + 8);
    }

    #[test]
    fn colliding_hashes_share_a_bucket_but_not_entries() {
        // Two distinct keys forced onto the same hash value: the bucket
        // must keep both and evict them independently.
        let mut shard: Shard<u64, u64> = Shard::new();
        shard.insert(42, 1, 10, 8);
        shard.insert(42, 2, 20, 8);
        assert_eq!(shard.len, 2);
        assert_eq!(shard.map.len(), 1, "same hash ⇒ one bucket");
        assert_eq!(shard.get(42, &1), Some(10));
        assert_eq!(shard.get(42, &2), Some(20));
        assert_eq!(shard.get(42, &3), None);
        // Over-capacity eviction removes the least recent of the two.
        shard.insert(7, 3, 30, 2);
        assert_eq!(shard.len, 2);
        assert_eq!(shard.get(42, &1), None, "LRU colliding entry evicted");
        assert_eq!(shard.get(42, &2), Some(20));
    }

    #[test]
    fn trim_never_orphans_the_key_being_touched() {
        // Regression: a trim running mid-operation (before the map stamp
        // is synced) used to drop the current key's own recency record,
        // making it unevictable and instantly evicting every later insert.
        let c: ShardedLru<u64, u64> = ShardedLru::new(1, 1);
        c.insert(0, 0);
        for _ in 0..200 {
            let _ = c.get(&0); // grow the queue to the trim threshold
        }
        for k in 1..50u64 {
            c.insert(k, k * 10);
            assert_eq!(c.get(&k), Some(k * 10), "fresh insert of {k} was evicted immediately");
        }
        assert_eq!(c.len(), 1, "capacity-1 shard must hold exactly one entry");
    }

    #[test]
    fn hit_only_steady_state_keeps_queue_bounded() {
        // The warm serving case: populate once, then only hits.
        let c: ShardedLru<u64, u64> = ShardedLru::new(64, 1);
        for k in 0..8u64 {
            c.insert(k, k);
        }
        for i in 0..100_000u64 {
            assert_eq!(c.get(&(i % 8)), Some(i % 8));
        }
        let shard = c.shards[0].lock().unwrap();
        assert!(
            shard.order.len() <= 8 * (shard.len + 8) + 8,
            "recency queue leaked: {} entries for {} live keys",
            shard.order.len(),
            shard.len
        );
    }

    #[test]
    fn concurrent_access_is_safe_and_counted() {
        let c: std::sync::Arc<ShardedLru<u64, u64>> = std::sync::Arc::new(ShardedLru::new(1024, 8));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..1000u64 {
                        let k = (t * 1000 + i) % 256;
                        if c.get(&k).is_none() {
                            c.insert(k, k * 2);
                        }
                    }
                });
            }
        });
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 4000);
        for k in 0..256u64 {
            if let Some(v) = c.get(&k) {
                assert_eq!(v, k * 2);
            }
        }
    }
}
