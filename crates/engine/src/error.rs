//! The unified error taxonomy of the service surface.
//!
//! Before the service layer existed, every crate reported failure in its
//! own shape: `parspeed-core` returned [`Infeasible`] structs, the planner
//! and JSONL reader returned bare `String`s, and the CLI wrapped whatever
//! it caught in its own error type. [`ParspeedError`] replaces all of
//! those at the service boundary: every error a [`Request`](crate::Request)
//! can produce is one of seven kinds, each kind has a stable wire name
//! ([`ParspeedError::kind`]), and the human-readable message is preserved
//! verbatim so rerouting a caller through the service never changes what
//! they see.
//!
//! Errors are values here, not aborts: a malformed query answers in its
//! own response slot and the rest of the batch proceeds. Model-level
//! errors (e.g. a memory-infeasible instance) are deterministic properties
//! of the query and are cached exactly like successful outcomes.

use parspeed_core::Infeasible;
use std::fmt;

/// Every way a service request can fail, as one taxonomy.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ParspeedError {
    /// The request could not be read at all (malformed JSONL, bad JSON
    /// value, unknown op).
    Parse(String),
    /// The request parsed but asks something meaningless (zero grid side,
    /// efficiency outside `(0, 1)`, empty sweep axis).
    InvalidRequest(String),
    /// The model says no: the instance is well-formed but has no feasible
    /// answer (e.g. the problem does not fit the per-processor memory).
    Infeasible(String),
    /// The request is understood but this engine cannot serve it (wire
    /// version from the future, no experiment runner registered).
    Unsupported(String),
    /// A concurrent frontend refused admission: its bounded submission
    /// queue was full (or it was draining for shutdown) when the request
    /// arrived. The request was *not* evaluated; retrying later is safe.
    /// Never produced by [`Engine`](crate::Engine) itself — this is the
    /// serving layer's documented overload answer, delivered in the
    /// request's own reply slot rather than by disconnecting the client.
    Overloaded(String),
    /// The request's deadline (`deadline_ms` on the wire, or a serving
    /// tier default) expired before the result could be produced. The
    /// request may or may not have been evaluated — only retry-safe
    /// (idempotent) queries should be resubmitted. Answered in the
    /// request's own reply slot, like every other refusal; never
    /// produced by [`Engine`](crate::Engine) itself.
    DeadlineExceeded(String),
    /// An invariant broke inside the engine. Should never happen; kept in
    /// the taxonomy so nothing maps to a panic.
    Internal(String),
}

impl ParspeedError {
    /// Parse-stage error.
    pub fn parse(msg: impl Into<String>) -> Self {
        ParspeedError::Parse(msg.into())
    }

    /// Validation-stage error.
    pub fn invalid(msg: impl Into<String>) -> Self {
        ParspeedError::InvalidRequest(msg.into())
    }

    /// Model-level infeasibility.
    pub fn infeasible(msg: impl Into<String>) -> Self {
        ParspeedError::Infeasible(msg.into())
    }

    /// Capability mismatch.
    pub fn unsupported(msg: impl Into<String>) -> Self {
        ParspeedError::Unsupported(msg.into())
    }

    /// Admission-control rejection by a concurrent frontend.
    pub fn overloaded(msg: impl Into<String>) -> Self {
        ParspeedError::Overloaded(msg.into())
    }

    /// Deadline expiry at the serving tier.
    pub fn deadline_exceeded(msg: impl Into<String>) -> Self {
        ParspeedError::DeadlineExceeded(msg.into())
    }

    /// The stable wire name of this error's kind (the JSONL `error_kind`
    /// field of wire v2).
    pub fn kind(&self) -> &'static str {
        match self {
            ParspeedError::Parse(_) => "parse",
            ParspeedError::InvalidRequest(_) => "invalid_request",
            ParspeedError::Infeasible(_) => "infeasible",
            ParspeedError::Unsupported(_) => "unsupported",
            ParspeedError::Overloaded(_) => "overloaded",
            ParspeedError::DeadlineExceeded(_) => "deadline_exceeded",
            ParspeedError::Internal(_) => "internal",
        }
    }

    /// The human-readable message, without the kind.
    pub fn message(&self) -> &str {
        match self {
            ParspeedError::Parse(m)
            | ParspeedError::InvalidRequest(m)
            | ParspeedError::Infeasible(m)
            | ParspeedError::Unsupported(m)
            | ParspeedError::Overloaded(m)
            | ParspeedError::DeadlineExceeded(m)
            | ParspeedError::Internal(m) => m,
        }
    }
}

impl fmt::Display for ParspeedError {
    /// Displays the message alone: callers that printed a pre-taxonomy
    /// `String` error print the identical text after migrating.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.message())
    }
}

impl std::error::Error for ParspeedError {}

impl From<Infeasible> for ParspeedError {
    fn from(e: Infeasible) -> Self {
        ParspeedError::Infeasible(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_the_bare_message() {
        let e = ParspeedError::invalid("grid side must be positive");
        assert_eq!(e.to_string(), "grid side must be positive");
        assert_eq!(e.kind(), "invalid_request");
    }

    #[test]
    fn infeasible_converts_verbatim() {
        let core = Infeasible { needed: 2048.0, capacity: 100.0 };
        let e: ParspeedError = core.into();
        assert_eq!(e.to_string(), core.to_string());
        assert_eq!(e.kind(), "infeasible");
    }

    #[test]
    fn kinds_have_stable_wire_names() {
        let kinds: Vec<&str> = [
            ParspeedError::parse("x"),
            ParspeedError::invalid("x"),
            ParspeedError::infeasible("x"),
            ParspeedError::unsupported("x"),
            ParspeedError::overloaded("x"),
            ParspeedError::deadline_exceeded("x"),
            ParspeedError::Internal("x".into()),
        ]
        .iter()
        .map(ParspeedError::kind)
        .collect();
        assert_eq!(
            kinds,
            vec![
                "parse",
                "invalid_request",
                "infeasible",
                "unsupported",
                "overloaded",
                "deadline_exceeded",
                "internal"
            ]
        );
    }
}
