//! Query and response types: what callers submit in a batch, the canonical
//! evaluation keys the planner dedups on, and the values that come back.
//!
//! The canonical form is the load-bearing idea. Two requests that *mean*
//! the same evaluation — a named stencil vs. its explicit `(E, k)`
//! constants, a machine preset vs. the same numbers spelled out, a budget
//! larger than the shape admits — collapse onto one [`EvalKey`], so the
//! executor computes each distinct point exactly once and the cache is
//! maximally effective. Floats are keyed by their IEEE-754 bit patterns:
//! canonicalization never rounds or rescales, which is what keeps engine
//! responses bit-identical to direct `parspeed-core` calls.

use crate::error::ParspeedError;
use parspeed_core::minsize::BusVariant;
use parspeed_core::table1::Table1Row;
use parspeed_core::{
    ArchModel, AsyncBus, Banyan, BusParams, Hypercube, HypercubeParams, MachineParams, Mesh,
    ProcessorBudget, ScheduledBus, SwitchParams, SyncBus, Workload,
};
use parspeed_exec::measure::MeasuredPoint;
use parspeed_stencil::{PartitionShape, Stencil};

/// An `f64` keyed by its exact bit pattern (hashable, totally equatable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct F64Key(u64);

impl F64Key {
    /// Keys a float by its bits.
    pub fn new(x: f64) -> Self {
        Self(x.to_bits())
    }

    /// Recovers the exact float.
    pub fn get(self) -> f64 {
        f64::from_bits(self.0)
    }
}

/// The architecture classes the engine can evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchKind {
    /// Message-passing hypercube (§4).
    Hypercube,
    /// Nearest-neighbour mesh (§4–5).
    Mesh,
    /// Synchronous shared bus (§6).
    SyncBus,
    /// Asynchronous shared bus (§6.2).
    AsyncBus,
    /// The §8 batch-staggered bus scheduler.
    ScheduledBus,
    /// Banyan switching network (§7).
    Banyan,
}

impl ArchKind {
    /// Every architecture, in the paper's presentation order.
    pub fn all() -> [ArchKind; 6] {
        [
            ArchKind::Hypercube,
            ArchKind::Mesh,
            ArchKind::SyncBus,
            ArchKind::AsyncBus,
            ArchKind::ScheduledBus,
            ArchKind::Banyan,
        ]
    }

    /// The CLI/JSONL name.
    pub fn name(self) -> &'static str {
        match self {
            ArchKind::Hypercube => "hypercube",
            ArchKind::Mesh => "mesh",
            ArchKind::SyncBus => "sync-bus",
            ArchKind::AsyncBus => "async-bus",
            ArchKind::ScheduledBus => "scheduled-bus",
            ArchKind::Banyan => "banyan",
        }
    }

    /// Parses the CLI/JSONL name.
    pub fn parse(name: &str) -> Result<Self, String> {
        Ok(match name {
            "hypercube" => ArchKind::Hypercube,
            "mesh" | "mesh2d" => ArchKind::Mesh,
            "sync-bus" => ArchKind::SyncBus,
            "async-bus" => ArchKind::AsyncBus,
            "scheduled-bus" => ArchKind::ScheduledBus,
            "banyan" => ArchKind::Banyan,
            other => {
                return Err(format!(
                    "unknown architecture `{other}`; one of: hypercube, mesh, sync-bus, \
                     async-bus, scheduled-bus, banyan"
                ))
            }
        })
    }

    /// Builds the analytic model for this architecture.
    pub fn model(self, m: &MachineParams) -> Box<dyn ArchModel> {
        match self {
            ArchKind::Hypercube => Box::new(Hypercube::new(m)),
            ArchKind::Mesh => Box::new(Mesh::new(m)),
            ArchKind::SyncBus => Box::new(SyncBus::new(m)),
            ArchKind::AsyncBus => Box::new(AsyncBus::new(m)),
            ArchKind::ScheduledBus => Box::new(ScheduledBus::new(m)),
            ArchKind::Banyan => Box::new(Banyan::new(m)),
        }
    }
}

/// A stencil, by catalog name or explicit model constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StencilSpec {
    /// Classic 5-point Laplacian cross.
    FivePoint,
    /// Mehrstellen 3×3 box.
    NinePointBox,
    /// Fourth-order star with arms of reach 2.
    NinePointStar,
    /// Reach-2 star plus unit diagonals.
    ThirteenPoint,
    /// Explicit `(E(S), k(P,S))` constants for what-if analyses.
    Custom {
        /// Flops per point update.
        e: f64,
        /// Perimeters communicated per iteration.
        k: usize,
    },
}

impl StencilSpec {
    /// The CLI/JSONL name (custom stencils render their constants).
    pub fn name(self) -> String {
        match self {
            StencilSpec::FivePoint => "5pt".into(),
            StencilSpec::NinePointBox => "9pt-box".into(),
            StencilSpec::NinePointStar => "9pt-star".into(),
            StencilSpec::ThirteenPoint => "13pt".into(),
            StencilSpec::Custom { e, k } => format!("custom(e={e},k={k})"),
        }
    }

    /// Parses a catalog name.
    pub fn parse(name: &str) -> Result<Self, String> {
        Ok(match name {
            "5pt" | "5-point" => StencilSpec::FivePoint,
            "9pt-box" | "9-point-box" => StencilSpec::NinePointBox,
            "9pt-star" | "9-point-star" => StencilSpec::NinePointStar,
            "13pt" | "13-point-star" => StencilSpec::ThirteenPoint,
            other => {
                return Err(format!(
                    "unknown stencil `{other}`; one of: 5pt, 9pt-box, 9pt-star, 13pt"
                ))
            }
        })
    }

    /// The canonical `(E(S), k(P,S))` constants for this spec under
    /// `shape` — exactly the constants [`Workload::new`] would derive.
    ///
    /// The named-stencil table is derived from the catalog once and
    /// memoized: the planner calls this for every atom of every batch, and
    /// rebuilding tap lists 10⁴ times per batch is measurable.
    pub fn constants(self, shape: PartitionShape) -> (f64, usize) {
        use std::sync::OnceLock;
        static NAMED: OnceLock<[[(f64, usize); 2]; 4]> = OnceLock::new();
        let idx = match self {
            StencilSpec::Custom { e, k } => return (e, k),
            StencilSpec::FivePoint => 0,
            StencilSpec::NinePointBox => 1,
            StencilSpec::NinePointStar => 2,
            StencilSpec::ThirteenPoint => 3,
        };
        let table = NAMED.get_or_init(|| {
            let specs = [
                StencilSpec::FivePoint,
                StencilSpec::NinePointBox,
                StencilSpec::NinePointStar,
                StencilSpec::ThirteenPoint,
            ];
            specs.map(|spec| {
                let s = spec.to_stencil().expect("named spec");
                let e = s.calibrated_e().unwrap_or_else(|| s.flops_per_point());
                [
                    (e, s.perimeters(PartitionShape::Strip)),
                    (e, s.perimeters(PartitionShape::Square)),
                ]
            })
        });
        let shape_idx = match shape {
            PartitionShape::Strip => 0,
            PartitionShape::Square => 1,
        };
        table[idx][shape_idx]
    }

    /// The catalog [`Stencil`] a named spec denotes (`None` for
    /// [`StencilSpec::Custom`], which has no tap geometry).
    pub fn to_stencil(self) -> Option<Stencil> {
        Some(match self {
            StencilSpec::FivePoint => Stencil::five_point(),
            StencilSpec::NinePointBox => Stencil::nine_point_box(),
            StencilSpec::NinePointStar => Stencil::nine_point_star(),
            StencilSpec::ThirteenPoint => Stencil::thirteen_point_star(),
            StencilSpec::Custom { .. } => return None,
        })
    }
}

/// A *catalog* stencil in canonical (hashable) form: the stencils with tap
/// geometry, which the simulators and solvers require. [`StencilSpec`]
/// additionally admits bare `(E, k)` constants; queries that need real tap
/// lists canonicalize through here and reject custom constants at plan
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StencilKey {
    /// Classic 5-point Laplacian cross.
    FivePoint,
    /// Mehrstellen 3×3 box.
    NinePointBox,
    /// Fourth-order star with arms of reach 2.
    NinePointStar,
    /// Reach-2 star plus unit diagonals.
    ThirteenPoint,
}

impl StencilKey {
    /// Canonicalizes a spec, rejecting custom constants (which have no tap
    /// geometry to simulate or solve with).
    pub fn from_spec(spec: StencilSpec) -> Result<Self, ParspeedError> {
        Ok(match spec {
            StencilSpec::FivePoint => StencilKey::FivePoint,
            StencilSpec::NinePointBox => StencilKey::NinePointBox,
            StencilSpec::NinePointStar => StencilKey::NinePointStar,
            StencilSpec::ThirteenPoint => StencilKey::ThirteenPoint,
            StencilSpec::Custom { .. } => {
                return Err(ParspeedError::invalid(
                    "this query needs a catalog stencil (5pt, 9pt-box, 9pt-star, 13pt); \
                     custom (e, k) constants have no tap geometry",
                ))
            }
        })
    }

    /// The catalog stencil this key denotes.
    pub fn to_stencil(self) -> Stencil {
        match self {
            StencilKey::FivePoint => Stencil::five_point(),
            StencilKey::NinePointBox => Stencil::nine_point_box(),
            StencilKey::NinePointStar => Stencil::nine_point_star(),
            StencilKey::ThirteenPoint => Stencil::thirteen_point_star(),
        }
    }

    /// The equivalent spec.
    pub fn to_spec(self) -> StencilSpec {
        match self {
            StencilKey::FivePoint => StencilSpec::FivePoint,
            StencilKey::NinePointBox => StencilSpec::NinePointBox,
            StencilKey::NinePointStar => StencilSpec::NinePointStar,
            StencilKey::ThirteenPoint => StencilSpec::ThirteenPoint,
        }
    }

    /// The CLI/JSONL name.
    pub fn name(self) -> &'static str {
        match self {
            StencilKey::FivePoint => "5pt",
            StencilKey::NinePointBox => "9pt-box",
            StencilKey::NinePointStar => "9pt-star",
            StencilKey::ThirteenPoint => "13pt",
        }
    }
}

/// The machines the event-level simulator can run: the six model
/// architectures plus the XY-routed store-and-forward mesh, which has no
/// closed form of its own (it is compared against the [`ArchKind::Mesh`]
/// model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimArchKind {
    /// Message-passing hypercube.
    Hypercube,
    /// Nearest-neighbour mesh (model-matched exchange simulator).
    Mesh,
    /// XY-routed store-and-forward mesh (corner traffic pays real transit).
    Mesh2d,
    /// Synchronous shared bus.
    SyncBus,
    /// Asynchronous shared bus.
    AsyncBus,
    /// The §8 batch-staggered bus scheduler.
    ScheduledBus,
    /// Banyan switching network.
    Banyan,
}

impl SimArchKind {
    /// The analytic model this simulator is compared against (`Mesh2d`
    /// compares against the mesh model, as the CLI always has).
    pub fn model_kind(self) -> ArchKind {
        match self {
            SimArchKind::Hypercube => ArchKind::Hypercube,
            SimArchKind::Mesh | SimArchKind::Mesh2d => ArchKind::Mesh,
            SimArchKind::SyncBus => ArchKind::SyncBus,
            SimArchKind::AsyncBus => ArchKind::AsyncBus,
            SimArchKind::ScheduledBus => ArchKind::ScheduledBus,
            SimArchKind::Banyan => ArchKind::Banyan,
        }
    }

    /// The CLI/JSONL name.
    pub fn name(self) -> &'static str {
        match self {
            SimArchKind::Hypercube => "hypercube",
            SimArchKind::Mesh => "mesh",
            SimArchKind::Mesh2d => "mesh2d",
            SimArchKind::SyncBus => "sync-bus",
            SimArchKind::AsyncBus => "async-bus",
            SimArchKind::ScheduledBus => "scheduled-bus",
            SimArchKind::Banyan => "banyan",
        }
    }

    /// Parses the CLI/JSONL name.
    pub fn parse(name: &str) -> Result<Self, String> {
        Ok(match name {
            "hypercube" => SimArchKind::Hypercube,
            "mesh" => SimArchKind::Mesh,
            "mesh2d" => SimArchKind::Mesh2d,
            "sync-bus" => SimArchKind::SyncBus,
            "async-bus" => SimArchKind::AsyncBus,
            "scheduled-bus" => SimArchKind::ScheduledBus,
            "banyan" => SimArchKind::Banyan,
            other => {
                return Err(format!(
                    "unknown simulator architecture `{other}`; one of: hypercube, mesh, mesh2d, \
                     sync-bus, async-bus, scheduled-bus, banyan"
                ))
            }
        })
    }
}

/// A convergence-check schedule in wire form — when the solver checks the
/// max-norm update difference against its tolerance (§4's scheduling
/// knob, [`parspeed_solver::CheckPolicy`] on the wire). The gap between
/// checks is also the block budget the communication-avoiding loops
/// spend: temporal tiling in the sequential solvers, deep-halo
/// sub-iteration blocks in the partitioned one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CheckSpec {
    /// Check at iterations `d, 2d, 3d, …`.
    Every(usize),
    /// Check at `start`, then grow the gap geometrically by `factor` up
    /// to `max_interval`.
    Geometric {
        /// First check iteration.
        start: usize,
        /// Gap growth factor (> 1).
        factor: f64,
        /// Largest allowed gap between checks.
        max_interval: usize,
    },
}

impl CheckSpec {
    /// The default geometric schedule (first check at 8, ×1.5 growth,
    /// gaps capped at 256) — what `solver=parallel` uses when no policy
    /// is given.
    pub fn geometric() -> Self {
        CheckSpec::Geometric { start: 8, factor: 1.5, max_interval: 256 }
    }

    /// The CLI/JSONL name: `every:N`, or `geometric:start,factor,max`.
    pub fn name(self) -> String {
        match self {
            CheckSpec::Every(d) => format!("every:{d}"),
            CheckSpec::Geometric { start, factor, max_interval } => {
                format!("geometric:{start},{factor},{max_interval}")
            }
        }
    }

    /// Parses the CLI/JSONL name: `every` (= `every:1`), `every:N`,
    /// `geometric` (the default schedule), or
    /// `geometric:start,factor,max_interval`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let err = || {
            format!(
                "unknown check policy `{s}`; one of: every, every:N, geometric, \
                 geometric:start,factor,max_interval"
            )
        };
        let (head, args) = match s.split_once(':') {
            Some((h, a)) => (h, Some(a)),
            None => (s, None),
        };
        match (head, args) {
            ("every", None) => Ok(CheckSpec::Every(1)),
            ("every", Some(a)) => {
                let d: usize = a.trim().parse().map_err(|_| err())?;
                Ok(CheckSpec::Every(d))
            }
            ("geometric", None) => Ok(CheckSpec::geometric()),
            ("geometric", Some(a)) => {
                let parts: Vec<&str> = a.split(',').map(str::trim).collect();
                if parts.len() != 3 {
                    return Err(err());
                }
                Ok(CheckSpec::Geometric {
                    start: parts[0].parse().map_err(|_| err())?,
                    factor: parts[1].parse().map_err(|_| err())?,
                    max_interval: parts[2].parse().map_err(|_| err())?,
                })
            }
            _ => Err(err()),
        }
    }

    /// The solver-side policy this spec denotes.
    pub fn to_policy(self) -> parspeed_solver::CheckPolicy {
        match self {
            CheckSpec::Every(d) => parspeed_solver::CheckPolicy::Every(d),
            CheckSpec::Geometric { start, factor, max_interval } => {
                parspeed_solver::CheckPolicy::Geometric { start, factor, max_interval }
            }
        }
    }
}

/// The canonical (bit-exact, hashable) form of a [`CheckSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckKey {
    /// Check at iterations `d, 2d, 3d, …`.
    Every(usize),
    /// Geometric gap growth.
    Geometric {
        /// First check iteration.
        start: usize,
        /// Factor bits.
        factor: F64Key,
        /// Gap cap.
        max_interval: usize,
    },
}

impl CheckKey {
    /// Canonicalizes a spec.
    pub fn from_spec(spec: CheckSpec) -> Self {
        match spec {
            CheckSpec::Every(d) => CheckKey::Every(d),
            CheckSpec::Geometric { start, factor, max_interval } => {
                CheckKey::Geometric { start, factor: F64Key::new(factor), max_interval }
            }
        }
    }

    /// The equivalent spec (bit-identical round trip).
    pub fn to_spec(self) -> CheckSpec {
        match self {
            CheckKey::Every(d) => CheckSpec::Every(d),
            CheckKey::Geometric { start, factor, max_interval } => {
                CheckSpec::Geometric { start, factor: factor.get(), max_interval }
            }
        }
    }

    /// The solver-side policy this key denotes.
    pub fn to_policy(self) -> parspeed_solver::CheckPolicy {
        self.to_spec().to_policy()
    }
}

/// The numerical solvers a [`Query::Solve`] can pick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolverKind {
    /// Point Jacobi.
    Jacobi,
    /// SOR at the optimal relaxation factor.
    Sor,
    /// Red-black SOR.
    RedBlack,
    /// Conjugate gradient.
    Cg,
    /// Geometric multigrid V-cycles (needs `n = 2^k − 1`).
    Multigrid,
    /// Rayon-partitioned Jacobi (bit-identical to sequential Jacobi).
    Parallel,
}

impl SolverKind {
    /// The CLI/JSONL name.
    pub fn name(self) -> &'static str {
        match self {
            SolverKind::Jacobi => "jacobi",
            SolverKind::Sor => "sor",
            SolverKind::RedBlack => "rbsor",
            SolverKind::Cg => "cg",
            SolverKind::Multigrid => "multigrid",
            SolverKind::Parallel => "parallel",
        }
    }

    /// Parses the CLI/JSONL name.
    pub fn parse(name: &str) -> Result<Self, String> {
        Ok(match name {
            "jacobi" => SolverKind::Jacobi,
            "sor" => SolverKind::Sor,
            "rbsor" => SolverKind::RedBlack,
            "cg" => SolverKind::Cg,
            "multigrid" => SolverKind::Multigrid,
            "parallel" => SolverKind::Parallel,
            other => {
                return Err(format!(
                    "unknown solver `{other}`; one of: jacobi, sor, rbsor, cg, multigrid, parallel"
                ))
            }
        })
    }

    /// Whether the solver's iteration reads the stencil's tap list (the
    /// others fix their own 5-point operator, so the stencil field is
    /// canonicalized away and identical runs dedup).
    pub fn uses_stencil(self) -> bool {
        matches!(self, SolverKind::Jacobi | SolverKind::Sor | SolverKind::Parallel)
    }

    /// Whether the solver schedules convergence checks with a
    /// [`CheckSpec`] (the others check every iteration by construction,
    /// so the policy field is canonicalized away and identical runs
    /// dedup).
    pub fn uses_check_policy(self) -> bool {
        matches!(self, SolverKind::Jacobi | SolverKind::Sor | SolverKind::Parallel)
    }

    /// The check schedule this solver runs when the request leaves the
    /// policy unset — the pre-`check_policy` wire behaviour, kept so
    /// legacy v2 requests answer identically.
    pub fn default_check(self) -> CheckSpec {
        match self {
            SolverKind::Parallel => CheckSpec::geometric(),
            _ => CheckSpec::Every(1),
        }
    }
}

/// A machine description: a preset plus optional overrides, mirroring the
/// CLI's machine flags.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MachineSpec {
    /// Start from the FLEX/32 overhead regime instead of the `c = 0`
    /// idealization.
    pub flex32: bool,
    /// Seconds per flop override.
    pub tfp: Option<f64>,
    /// Bus cycle override.
    pub b: Option<f64>,
    /// Bus per-word overhead override.
    pub c: Option<f64>,
    /// Message per-packet cost override (hypercube and mesh).
    pub alpha: Option<f64>,
    /// Message startup override (hypercube and mesh).
    pub beta: Option<f64>,
    /// Packet capacity override (hypercube and mesh).
    pub packet: Option<usize>,
    /// Switch stage traversal override.
    pub w: Option<f64>,
}

impl MachineSpec {
    /// True when no override is set (the spec is exactly a preset).
    fn is_bare_preset(&self) -> bool {
        self.tfp.is_none()
            && self.b.is_none()
            && self.c.is_none()
            && self.alpha.is_none()
            && self.beta.is_none()
            && self.packet.is_none()
            && self.w.is_none()
    }

    /// The canonical key this spec resolves to. Bare presets — the bulk of
    /// real traffic — are memoized; the planner calls this per atom.
    pub fn to_key(&self) -> MachineKey {
        use std::sync::OnceLock;
        static PRESETS: OnceLock<[MachineKey; 2]> = OnceLock::new();
        if self.is_bare_preset() {
            let presets = PRESETS.get_or_init(|| {
                [
                    MachineKey::new(&MachineParams::paper_defaults()),
                    MachineKey::new(&MachineParams::flex32_defaults()),
                ]
            });
            presets[self.flex32 as usize]
        } else {
            MachineKey::new(&self.resolve())
        }
    }

    /// Resolves the spec into concrete machine parameters.
    pub fn resolve(&self) -> MachineParams {
        let mut m = if self.flex32 {
            MachineParams::flex32_defaults()
        } else {
            MachineParams::paper_defaults()
        };
        if let Some(tfp) = self.tfp {
            m.tfp = tfp;
        }
        if let Some(b) = self.b {
            m.bus.b = b;
        }
        if let Some(c) = self.c {
            m.bus.c = c;
        }
        if let Some(alpha) = self.alpha {
            m.hypercube.alpha = alpha;
            m.mesh.alpha = alpha;
        }
        if let Some(beta) = self.beta {
            m.hypercube.beta = beta;
            m.mesh.beta = beta;
        }
        if let Some(packet) = self.packet {
            m.hypercube.packet_words = packet;
            m.mesh.packet_words = packet;
        }
        if let Some(w) = self.w {
            m.switch.w = w;
        }
        m
    }
}

/// The canonical (bit-exact, hashable) form of [`MachineParams`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MachineKey {
    tfp: F64Key,
    bus_b: F64Key,
    bus_c: F64Key,
    hc_alpha: F64Key,
    hc_beta: F64Key,
    hc_packet: usize,
    mesh_alpha: F64Key,
    mesh_beta: F64Key,
    mesh_packet: usize,
    switch_w: F64Key,
}

impl MachineKey {
    /// Canonicalizes resolved machine parameters.
    pub fn new(m: &MachineParams) -> Self {
        Self {
            tfp: F64Key::new(m.tfp),
            bus_b: F64Key::new(m.bus.b),
            bus_c: F64Key::new(m.bus.c),
            hc_alpha: F64Key::new(m.hypercube.alpha),
            hc_beta: F64Key::new(m.hypercube.beta),
            hc_packet: m.hypercube.packet_words,
            mesh_alpha: F64Key::new(m.mesh.alpha),
            mesh_beta: F64Key::new(m.mesh.beta),
            mesh_packet: m.mesh.packet_words,
            switch_w: F64Key::new(m.switch.w),
        }
    }

    /// Recovers the exact machine parameters (bit-identical round trip).
    pub fn to_params(self) -> MachineParams {
        MachineParams {
            tfp: self.tfp.get(),
            bus: BusParams { b: self.bus_b.get(), c: self.bus_c.get() },
            hypercube: HypercubeParams {
                alpha: self.hc_alpha.get(),
                beta: self.hc_beta.get(),
                packet_words: self.hc_packet,
            },
            mesh: HypercubeParams {
                alpha: self.mesh_alpha.get(),
                beta: self.mesh_beta.get(),
                packet_words: self.mesh_packet,
            },
            switch: SwitchParams { w: self.switch_w.get() },
        }
    }
}

/// Partition shape in canonical form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShapeKey {
    /// Full-width row strips.
    Strip,
    /// Squares / working rectangles.
    Square,
}

impl ShapeKey {
    /// The corresponding model shape.
    pub fn to_shape(self) -> PartitionShape {
        match self {
            ShapeKey::Strip => PartitionShape::Strip,
            ShapeKey::Square => PartitionShape::Square,
        }
    }

    /// Canonicalizes a model shape.
    pub fn from_shape(s: PartitionShape) -> Self {
        match s {
            PartitionShape::Strip => ShapeKey::Strip,
            PartitionShape::Square => ShapeKey::Square,
        }
    }

    /// The CLI/JSONL name.
    pub fn name(self) -> &'static str {
        match self {
            ShapeKey::Strip => "strip",
            ShapeKey::Square => "square",
        }
    }

    /// Parses the CLI/JSONL name.
    pub fn parse(name: &str) -> Result<Self, String> {
        Ok(match name {
            "strip" | "strips" => ShapeKey::Strip,
            "square" | "squares" => ShapeKey::Square,
            other => return Err(format!("unknown shape `{other}`; one of: strip, square")),
        })
    }
}

/// Processor budget in canonical form (`Limited(0)` is normalized to
/// `Limited(1)` by [`ProcessorBudget::cap`], so it is kept as given —
/// the core model decides).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetKey {
    /// At most `N` processors.
    Limited(usize),
    /// Machine grows with the problem.
    Unlimited,
}

impl BudgetKey {
    /// The corresponding model budget.
    pub fn to_budget(self) -> ProcessorBudget {
        match self {
            BudgetKey::Limited(n) => ProcessorBudget::Limited(n),
            BudgetKey::Unlimited => ProcessorBudget::Unlimited,
        }
    }

    /// Display form (`∞` for unlimited).
    pub fn label(self) -> String {
        match self {
            BudgetKey::Limited(n) => n.to_string(),
            BudgetKey::Unlimited => "∞".into(),
        }
    }
}

/// The bus variants of the Fig. 7 minimum-problem-size analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MinSizeVariant {
    /// Synchronous bus, strip partitions.
    SyncStrip,
    /// Asynchronous bus, strip partitions.
    AsyncStrip,
    /// Synchronous bus, square partitions.
    SyncSquare,
    /// Asynchronous bus, square partitions.
    AsyncSquare,
}

impl MinSizeVariant {
    /// The corresponding core variant.
    pub fn to_variant(self) -> BusVariant {
        match self {
            MinSizeVariant::SyncStrip => BusVariant::SyncStrip,
            MinSizeVariant::AsyncStrip => BusVariant::AsyncStrip,
            MinSizeVariant::SyncSquare => BusVariant::SyncSquare,
            MinSizeVariant::AsyncSquare => BusVariant::AsyncSquare,
        }
    }

    /// The CLI/JSONL name.
    pub fn name(self) -> &'static str {
        match self {
            MinSizeVariant::SyncStrip => "sync-strip",
            MinSizeVariant::AsyncStrip => "async-strip",
            MinSizeVariant::SyncSquare => "sync-square",
            MinSizeVariant::AsyncSquare => "async-square",
        }
    }

    /// Parses the CLI/JSONL name.
    pub fn parse(name: &str) -> Result<Self, String> {
        Ok(match name {
            "sync-strip" => MinSizeVariant::SyncStrip,
            "async-strip" => MinSizeVariant::AsyncStrip,
            "sync-square" => MinSizeVariant::SyncSquare,
            "async-square" => MinSizeVariant::AsyncSquare,
            other => {
                return Err(format!(
                    "unknown minsize variant `{other}`; one of: sync-strip, async-strip, \
                     sync-square, async-square"
                ))
            }
        })
    }
}

/// Which hardware lever a leverage query pulls (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lever {
    /// Multiply the bus speed.
    Bus,
    /// Multiply the floating-point speed.
    Flop,
    /// Scale the fixed per-word overhead `c`.
    Overhead,
}

impl Lever {
    /// The CLI/JSONL name.
    pub fn name(self) -> &'static str {
        match self {
            Lever::Bus => "bus",
            Lever::Flop => "flop",
            Lever::Overhead => "overhead",
        }
    }

    /// Parses the CLI/JSONL name.
    pub fn parse(name: &str) -> Result<Self, String> {
        Ok(match name {
            "bus" => Lever::Bus,
            "flop" => Lever::Flop,
            "overhead" | "c" => Lever::Overhead,
            other => return Err(format!("unknown lever `{other}`; one of: bus, flop, overhead")),
        })
    }
}

/// A problem instance spec: grid side, stencil, shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Grid side `n`.
    pub n: usize,
    /// Stencil (named or custom constants).
    pub stencil: StencilSpec,
    /// Partition shape.
    pub shape: ShapeKey,
}

impl WorkloadSpec {
    /// Builds the exact [`Workload`] this spec denotes.
    pub fn to_workload(&self) -> Result<Workload, String> {
        if self.n == 0 {
            return Err("grid side must be positive".into());
        }
        let shape = self.shape.to_shape();
        let (e, k) = self.stencil.constants(shape);
        if !(e.is_finite() && e > 0.0) {
            return Err(format!("E(S) must be positive and finite, got {e}"));
        }
        Ok(Workload::with_constants(self.n, shape, e, k))
    }
}

/// One query in a batch. `Sweep` is a macro-query the planner expands into
/// many `Optimize` evaluations.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Optimal processor count and speedup for one instance.
    Optimize {
        /// Architecture to optimize on.
        arch: ArchKind,
        /// Machine description.
        machine: MachineSpec,
        /// Problem instance.
        workload: WorkloadSpec,
        /// Processor budget (`None` = unlimited).
        procs: Option<usize>,
        /// Optional per-processor memory budget in words (fractional
        /// budgets are legal — the model is continuous).
        memory_words: Option<f64>,
    },
    /// Closed-form smallest grid gainfully using all `procs` processors.
    MinSize {
        /// Bus variant.
        variant: MinSizeVariant,
        /// Machine description.
        machine: MachineSpec,
        /// `E(S)` constant.
        e: f64,
        /// `k(P,S)` constant.
        k: f64,
        /// Full machine size.
        procs: usize,
    },
    /// Smallest grid reaching a target efficiency on `procs` processors.
    Isoefficiency {
        /// Architecture.
        arch: ArchKind,
        /// Machine description.
        machine: MachineSpec,
        /// Stencil (supplies `E`, `k`).
        stencil: StencilSpec,
        /// Partition shape.
        shape: ShapeKey,
        /// Processor count held fixed.
        procs: usize,
        /// Target efficiency in `(0, 1)`.
        efficiency: f64,
    },
    /// What a hardware upgrade buys at the re-optimized partitioning
    /// (synchronous bus, as in the paper's §6.1).
    Leverage {
        /// Machine description.
        machine: MachineSpec,
        /// Problem instance.
        workload: WorkloadSpec,
        /// Processor budget (`None` = unlimited).
        procs: Option<usize>,
        /// Which constant improves.
        lever: Lever,
        /// Improvement factor (speed multiplier; scale factor for
        /// [`Lever::Overhead`]).
        factor: f64,
    },
    /// The paper's closing Table I evaluated at one grid size: the four
    /// closed-form optimal-speedup rows.
    Table1 {
        /// Machine description.
        machine: MachineSpec,
        /// Grid side.
        n: usize,
        /// Stencil (catalog only — the formulas need tap geometry).
        stencil: StencilSpec,
    },
    /// Every architecture optimized side by side on one instance — a
    /// macro-query the planner expands into six `Optimize` evaluations, so
    /// compares dedup against plain optimize traffic.
    Compare {
        /// Machine description.
        machine: MachineSpec,
        /// Problem instance.
        workload: WorkloadSpec,
        /// Processor budget (`None` = unlimited).
        procs: Option<usize>,
    },
    /// One event-level iteration on a simulated machine, beside the
    /// analytic model's prediction.
    Simulate {
        /// Machine class to simulate.
        arch: SimArchKind,
        /// Machine description.
        machine: MachineSpec,
        /// Problem instance (catalog stencil only).
        workload: WorkloadSpec,
        /// Processor count (exact, not a budget).
        procs: usize,
    },
    /// Actually solve the manufactured sin·sin Poisson problem with a real
    /// numerical solver.
    Solve {
        /// Grid side.
        n: usize,
        /// Which solver.
        solver: SolverKind,
        /// Convergence tolerance.
        tol: f64,
        /// Stencil for the solvers that read one (catalog only).
        stencil: StencilSpec,
        /// Strip count for [`SolverKind::Parallel`] (ignored otherwise).
        partitions: usize,
        /// Iteration cap.
        max_iters: usize,
        /// Convergence-check schedule for the solvers that take one
        /// (`None` = the solver's historical default: `every:1`, or
        /// `geometric` for the parallel executor).
        check: Option<CheckSpec>,
    },
    /// Time the real rayon-partitioned executor across thread counts. A
    /// wall-clock *measurement*, not a pure evaluation: it is never deduped
    /// or cached, and runs after the parallel phase so timings are not
    /// polluted by concurrent model evaluations.
    Threads {
        /// Grid side.
        n: usize,
        /// Stencil (catalog only).
        stencil: StencilSpec,
        /// Partition shape.
        shape: ShapeKey,
        /// Thread counts to measure.
        threads: Vec<usize>,
        /// Timed iterations per measurement.
        iters: usize,
        /// Repetitions (best-of).
        repeats: usize,
    },
    /// Regenerate a reproduction experiment through the runner registered
    /// at engine construction (dependency-inverted: the experiment harness
    /// sits above this crate). Uncached — some experiments measure wall
    /// time.
    Experiment {
        /// Experiment id (`e1`..`e16` or `all`).
        id: String,
        /// Trim the sweeps.
        quick: bool,
    },
    /// A grid of `Optimize` queries: every combination of architecture,
    /// stencil, shape, and budget, with the grid side doubling from
    /// `n_from` to `n_to`.
    Sweep {
        /// Architectures.
        archs: Vec<ArchKind>,
        /// Machine description (shared by the whole sweep).
        machine: MachineSpec,
        /// Stencils.
        stencils: Vec<StencilSpec>,
        /// Shapes.
        shapes: Vec<ShapeKey>,
        /// Budgets (`None` = unlimited).
        budgets: Vec<Option<usize>>,
        /// First grid side.
        n_from: usize,
        /// Last grid side (inclusive; sides double from `n_from`).
        n_to: usize,
    },
}

impl Query {
    /// Whether re-executing this query after a failure is safe —
    /// i.e. whether the serving tier may transparently retry it on
    /// another shard.
    ///
    /// Every query but two is a pure function of its parameters
    /// (deterministic model evaluation, cached like a value), so
    /// running it twice is invisible. [`Query::Threads`] is a
    /// wall-clock *measurement* and [`Query::Experiment`] may time
    /// real executions, so a retry would silently answer with a
    /// different measurement than the one that was lost; the router
    /// refuses to fail those over and answers `overloaded` with a
    /// `retry_after_ms` hint instead, leaving the retry decision to
    /// the caller.
    pub fn retry_safe(&self) -> bool {
        !matches!(self, Query::Threads { .. } | Query::Experiment { .. })
    }
}

/// The canonical, deduplicated form of one atomic evaluation. Everything
/// the evaluator needs is in the key; everything presentational (names,
/// labels) is not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvalKey {
    /// One optimizer run.
    Optimize {
        /// Architecture.
        arch: ArchKind,
        /// Canonical machine.
        machine: MachineKey,
        /// Grid side.
        n: usize,
        /// Shape.
        shape: ShapeKey,
        /// `E(S)` bits.
        e: F64Key,
        /// `k(P,S)`.
        k: usize,
        /// Budget.
        budget: BudgetKey,
        /// Optional memory budget bits (words per processor).
        memory_words: Option<F64Key>,
    },
    /// One closed-form minimum-size evaluation.
    MinSize {
        /// Bus variant.
        variant: MinSizeVariant,
        /// Canonical machine.
        machine: MachineKey,
        /// `E(S)` bits.
        e: F64Key,
        /// `k` bits (continuous in the closed form).
        k: F64Key,
        /// Machine size.
        procs: usize,
    },
    /// One isoefficiency threshold search.
    Isoefficiency {
        /// Architecture.
        arch: ArchKind,
        /// Canonical machine.
        machine: MachineKey,
        /// Shape.
        shape: ShapeKey,
        /// `E(S)` bits.
        e: F64Key,
        /// `k(P,S)`.
        k: usize,
        /// Processor count.
        procs: usize,
        /// Target efficiency bits.
        efficiency: F64Key,
    },
    /// One leverage what-if.
    Leverage {
        /// Canonical machine.
        machine: MachineKey,
        /// Grid side.
        n: usize,
        /// Shape.
        shape: ShapeKey,
        /// `E(S)` bits.
        e: F64Key,
        /// `k(P,S)`.
        k: usize,
        /// Budget.
        budget: BudgetKey,
        /// Lever pulled.
        lever: Lever,
        /// Factor bits.
        factor: F64Key,
    },
    /// One Table-I evaluation (all four rows).
    Table1 {
        /// Canonical machine.
        machine: MachineKey,
        /// Grid side.
        n: usize,
        /// Catalog stencil.
        stencil: StencilKey,
    },
    /// One event-level iteration simulation.
    Simulate {
        /// Machine class.
        arch: SimArchKind,
        /// Canonical machine.
        machine: MachineKey,
        /// Grid side.
        n: usize,
        /// Shape.
        shape: ShapeKey,
        /// Catalog stencil.
        stencil: StencilKey,
        /// Processor count.
        procs: usize,
    },
    /// One numerical solve. Deterministic (the partitioned executor is
    /// bit-identical to sequential Jacobi), hence cacheable like any other
    /// evaluation. `partitions` is canonicalized to 0 for solvers that
    /// ignore it and `stencil` to the 5-point for solvers that fix their
    /// own operator, so equivalent runs share a key.
    Solve {
        /// Grid side.
        n: usize,
        /// Which solver.
        solver: SolverKind,
        /// Tolerance bits.
        tol: F64Key,
        /// Catalog stencil.
        stencil: StencilKey,
        /// Strip count (0 unless the solver partitions).
        partitions: usize,
        /// Iteration cap.
        max_iters: usize,
        /// Canonical check schedule (`None` = the solver's default, and
        /// for solvers that ignore the policy).
        check: Option<CheckKey>,
    },
}

/// The canonical form of one *impure* request — a measurement or an
/// externally-run report. Effects are planned alongside pure atoms but are
/// never deduplicated, never cached, and always execute sequentially after
/// the parallel phase (so wall-clock measurements are not polluted by
/// concurrent model evaluations).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum EffectKey {
    /// One thread-scaling measurement of the partitioned executor.
    Threads {
        /// Grid side.
        n: usize,
        /// Catalog stencil.
        stencil: StencilKey,
        /// Shape.
        shape: ShapeKey,
        /// Thread counts.
        threads: Vec<usize>,
        /// Timed iterations per point.
        iters: usize,
        /// Best-of repetitions.
        repeats: usize,
    },
    /// One experiment regeneration via the registered runner.
    Experiment {
        /// Experiment id.
        id: String,
        /// Trimmed sweeps.
        quick: bool,
    },
}

/// The successful result of one atomic evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalValue {
    /// Result of an optimizer run (mirrors `parspeed_core::Optimum`).
    Optimum {
        /// Optimal processor count.
        processors: usize,
        /// Largest partition area at the optimum.
        area: f64,
        /// Per-iteration cycle time.
        cycle_time: f64,
        /// Speedup over one processor.
        speedup: f64,
        /// Speedup / processors.
        efficiency: f64,
        /// Whether every available processor is used.
        used_all: bool,
    },
    /// Result of a closed-form minimum-size evaluation.
    MinSize {
        /// Continuous minimal grid side.
        n_side: f64,
        /// Fig. 7 ordinate `log₂(n²)`.
        log2_points: f64,
    },
    /// Result of an isoefficiency threshold search.
    Isoefficiency {
        /// Smallest integer grid side reaching the target.
        n: usize,
    },
    /// Result of a leverage what-if.
    Leverage {
        /// Optimal cycle time before the upgrade.
        baseline: f64,
        /// Optimal cycle time after (re-optimized).
        upgraded: f64,
        /// `upgraded / baseline`.
        factor: f64,
    },
    /// Result of a Table-I evaluation: the four closed-form rows, paper
    /// order, names and formulas included.
    Table1 {
        /// The evaluated rows.
        rows: Vec<Table1Row>,
    },
    /// Result of one simulated iteration, with the model's predictions
    /// alongside (so renderers need no model access).
    Simulate {
        /// Simulated cycle time (seconds).
        cycle_time: f64,
        /// Longest pure-compute span in the cycle.
        max_compute: f64,
        /// Fraction of the cycle that is not pure compute.
        comm_fraction: f64,
        /// The analytic model's predicted cycle time at this allocation.
        predicted: f64,
        /// The model's sequential time for the whole instance.
        seq_time: f64,
    },
    /// Result of a numerical solve.
    Solve {
        /// Whether the tolerance was reached within the iteration cap.
        converged: bool,
        /// Iterations (or V-cycles) taken.
        iterations: usize,
        /// Final successive-update difference.
        final_diff: f64,
        /// Max-norm error against the manufactured exact solution.
        max_error: f64,
        /// Global reductions performed (CG only).
        global_reductions: Option<usize>,
        /// The iteration this solve resumed from, when it restarted from
        /// a checkpoint instead of iteration zero (`None` for a solve
        /// that ran uninterrupted — the overwhelmingly common case). The
        /// value is provenance, not result: a resumed solve is
        /// bit-identical to an uninterrupted one.
        resumed_from: Option<usize>,
    },
    /// Result of a thread-scaling measurement.
    Threads {
        /// One point per measured thread count, input order.
        points: Vec<MeasuredPoint>,
    },
    /// A textual report from the registered experiment runner.
    Report(String),
}

/// The outcome of one atomic evaluation: a value, or a model-level error
/// (e.g. memory-infeasible). Errors are cached like values — they are
/// deterministic properties of the key.
pub type EvalOutcome = Result<EvalValue, ParspeedError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_key_round_trips_bit_exactly() {
        for m in [MachineParams::paper_defaults(), MachineParams::flex32_defaults()] {
            let back = MachineKey::new(&m).to_params();
            assert_eq!(m, back);
        }
    }

    #[test]
    fn only_measurement_queries_are_retry_unsafe() {
        let workload =
            WorkloadSpec { n: 128, stencil: StencilSpec::FivePoint, shape: ShapeKey::Square };
        let pure = Query::Optimize {
            arch: ArchKind::SyncBus,
            machine: MachineSpec::default(),
            workload,
            procs: None,
            memory_words: None,
        };
        assert!(pure.retry_safe());
        assert!(
            Query::Compare { machine: MachineSpec::default(), workload, procs: None }.retry_safe()
        );
        // Wall-clock measurements must not be silently re-run elsewhere.
        assert!(!Query::Threads {
            n: 64,
            stencil: StencilSpec::FivePoint,
            shape: ShapeKey::Square,
            threads: vec![1, 2],
            iters: 1,
            repeats: 1,
        }
        .retry_safe());
        assert!(!Query::Experiment { id: "e1".into(), quick: true }.retry_safe());
    }

    #[test]
    fn named_stencil_constants_match_workload_new() {
        for spec in [
            StencilSpec::FivePoint,
            StencilSpec::NinePointBox,
            StencilSpec::NinePointStar,
            StencilSpec::ThirteenPoint,
        ] {
            let s = spec.to_stencil().unwrap();
            for shape in [PartitionShape::Strip, PartitionShape::Square] {
                let direct = Workload::new(64, &s, shape);
                let (e, k) = spec.constants(shape);
                assert_eq!(direct.e_flops, e, "{spec:?} {shape:?}");
                assert_eq!(direct.k, k, "{spec:?} {shape:?}");
            }
        }
    }

    #[test]
    fn specs_resolving_to_same_numbers_share_a_key() {
        let named =
            WorkloadSpec { n: 128, stencil: StencilSpec::FivePoint, shape: ShapeKey::Square };
        let (e, k) = StencilSpec::FivePoint.constants(PartitionShape::Square);
        let custom =
            WorkloadSpec { n: 128, stencil: StencilSpec::Custom { e, k }, shape: ShapeKey::Square };
        let wa = named.to_workload().unwrap();
        let wb = custom.to_workload().unwrap();
        assert_eq!(wa.e_flops, wb.e_flops);
        assert_eq!(wa.k, wb.k);
    }

    #[test]
    fn names_parse_back() {
        for a in ArchKind::all() {
            assert_eq!(ArchKind::parse(a.name()).unwrap(), a);
        }
        for v in [
            MinSizeVariant::SyncStrip,
            MinSizeVariant::AsyncStrip,
            MinSizeVariant::SyncSquare,
            MinSizeVariant::AsyncSquare,
        ] {
            assert_eq!(MinSizeVariant::parse(v.name()).unwrap(), v);
        }
        for l in [Lever::Bus, Lever::Flop, Lever::Overhead] {
            assert_eq!(Lever::parse(l.name()).unwrap(), l);
        }
        for a in [
            SimArchKind::Hypercube,
            SimArchKind::Mesh,
            SimArchKind::Mesh2d,
            SimArchKind::SyncBus,
            SimArchKind::AsyncBus,
            SimArchKind::ScheduledBus,
            SimArchKind::Banyan,
        ] {
            assert_eq!(SimArchKind::parse(a.name()).unwrap(), a);
        }
        for s in [
            SolverKind::Jacobi,
            SolverKind::Sor,
            SolverKind::RedBlack,
            SolverKind::Cg,
            SolverKind::Multigrid,
            SolverKind::Parallel,
        ] {
            assert_eq!(SolverKind::parse(s.name()).unwrap(), s);
        }
        assert!(ArchKind::parse("torus").is_err());
        assert!(ShapeKey::parse("hexagon").is_err());
        assert!(SimArchKind::parse("torus").is_err());
        assert!(SolverKind::parse("adi").is_err());
    }

    #[test]
    fn check_specs_parse_and_round_trip() {
        for spec in [
            CheckSpec::Every(25),
            CheckSpec::geometric(),
            CheckSpec::Geometric { start: 4, factor: 2.0, max_interval: 64 },
        ] {
            assert_eq!(CheckSpec::parse(&spec.name()).unwrap(), spec);
            assert_eq!(CheckKey::from_spec(spec).to_spec(), spec);
        }
        assert_eq!(CheckSpec::parse("every").unwrap(), CheckSpec::Every(1));
        assert_eq!(CheckSpec::parse("geometric").unwrap(), CheckSpec::geometric());
        assert_eq!(
            CheckSpec::parse("geometric: 8, 1.5, 256").unwrap(),
            CheckSpec::geometric(),
            "whitespace is tolerated"
        );
        assert!(CheckSpec::parse("fibonacci").is_err());
        assert!(CheckSpec::parse("geometric:1,2").is_err());
        assert!(CheckSpec::parse("every:x").is_err());
    }

    #[test]
    fn default_check_matches_the_historical_solver_behaviour() {
        assert_eq!(SolverKind::Jacobi.default_check(), CheckSpec::Every(1));
        assert_eq!(SolverKind::Sor.default_check(), CheckSpec::Every(1));
        assert_eq!(SolverKind::Parallel.default_check(), CheckSpec::geometric());
        assert!(SolverKind::Jacobi.uses_check_policy());
        assert!(!SolverKind::Cg.uses_check_policy());
        assert!(!SolverKind::Multigrid.uses_check_policy());
        assert!(!SolverKind::RedBlack.uses_check_policy());
    }

    #[test]
    fn stencil_keys_round_trip_and_reject_custom() {
        for key in [
            StencilKey::FivePoint,
            StencilKey::NinePointBox,
            StencilKey::NinePointStar,
            StencilKey::ThirteenPoint,
        ] {
            assert_eq!(StencilKey::from_spec(key.to_spec()).unwrap(), key);
            assert_eq!(key.to_spec().name(), key.name());
        }
        let err = StencilKey::from_spec(StencilSpec::Custom { e: 6.0, k: 1 }).unwrap_err();
        assert!(err.to_string().contains("catalog stencil"), "{err}");
    }
}
