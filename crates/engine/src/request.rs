//! Query and response types: what callers submit in a batch, the canonical
//! evaluation keys the planner dedups on, and the values that come back.
//!
//! The canonical form is the load-bearing idea. Two requests that *mean*
//! the same evaluation — a named stencil vs. its explicit `(E, k)`
//! constants, a machine preset vs. the same numbers spelled out, a budget
//! larger than the shape admits — collapse onto one [`EvalKey`], so the
//! executor computes each distinct point exactly once and the cache is
//! maximally effective. Floats are keyed by their IEEE-754 bit patterns:
//! canonicalization never rounds or rescales, which is what keeps engine
//! responses bit-identical to direct `parspeed-core` calls.

use parspeed_core::minsize::BusVariant;
use parspeed_core::{
    ArchModel, AsyncBus, Banyan, BusParams, Hypercube, HypercubeParams, MachineParams, Mesh,
    ProcessorBudget, ScheduledBus, SwitchParams, SyncBus, Workload,
};
use parspeed_stencil::{PartitionShape, Stencil};

/// An `f64` keyed by its exact bit pattern (hashable, totally equatable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct F64Key(u64);

impl F64Key {
    /// Keys a float by its bits.
    pub fn new(x: f64) -> Self {
        Self(x.to_bits())
    }

    /// Recovers the exact float.
    pub fn get(self) -> f64 {
        f64::from_bits(self.0)
    }
}

/// The architecture classes the engine can evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchKind {
    /// Message-passing hypercube (§4).
    Hypercube,
    /// Nearest-neighbour mesh (§4–5).
    Mesh,
    /// Synchronous shared bus (§6).
    SyncBus,
    /// Asynchronous shared bus (§6.2).
    AsyncBus,
    /// The §8 batch-staggered bus scheduler.
    ScheduledBus,
    /// Banyan switching network (§7).
    Banyan,
}

impl ArchKind {
    /// Every architecture, in the paper's presentation order.
    pub fn all() -> [ArchKind; 6] {
        [
            ArchKind::Hypercube,
            ArchKind::Mesh,
            ArchKind::SyncBus,
            ArchKind::AsyncBus,
            ArchKind::ScheduledBus,
            ArchKind::Banyan,
        ]
    }

    /// The CLI/JSONL name.
    pub fn name(self) -> &'static str {
        match self {
            ArchKind::Hypercube => "hypercube",
            ArchKind::Mesh => "mesh",
            ArchKind::SyncBus => "sync-bus",
            ArchKind::AsyncBus => "async-bus",
            ArchKind::ScheduledBus => "scheduled-bus",
            ArchKind::Banyan => "banyan",
        }
    }

    /// Parses the CLI/JSONL name.
    pub fn parse(name: &str) -> Result<Self, String> {
        Ok(match name {
            "hypercube" => ArchKind::Hypercube,
            "mesh" | "mesh2d" => ArchKind::Mesh,
            "sync-bus" => ArchKind::SyncBus,
            "async-bus" => ArchKind::AsyncBus,
            "scheduled-bus" => ArchKind::ScheduledBus,
            "banyan" => ArchKind::Banyan,
            other => {
                return Err(format!(
                    "unknown architecture `{other}`; one of: hypercube, mesh, sync-bus, \
                     async-bus, scheduled-bus, banyan"
                ))
            }
        })
    }

    /// Builds the analytic model for this architecture.
    pub fn model(self, m: &MachineParams) -> Box<dyn ArchModel> {
        match self {
            ArchKind::Hypercube => Box::new(Hypercube::new(m)),
            ArchKind::Mesh => Box::new(Mesh::new(m)),
            ArchKind::SyncBus => Box::new(SyncBus::new(m)),
            ArchKind::AsyncBus => Box::new(AsyncBus::new(m)),
            ArchKind::ScheduledBus => Box::new(ScheduledBus::new(m)),
            ArchKind::Banyan => Box::new(Banyan::new(m)),
        }
    }
}

/// A stencil, by catalog name or explicit model constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StencilSpec {
    /// Classic 5-point Laplacian cross.
    FivePoint,
    /// Mehrstellen 3×3 box.
    NinePointBox,
    /// Fourth-order star with arms of reach 2.
    NinePointStar,
    /// Reach-2 star plus unit diagonals.
    ThirteenPoint,
    /// Explicit `(E(S), k(P,S))` constants for what-if analyses.
    Custom {
        /// Flops per point update.
        e: f64,
        /// Perimeters communicated per iteration.
        k: usize,
    },
}

impl StencilSpec {
    /// The CLI/JSONL name (custom stencils render their constants).
    pub fn name(self) -> String {
        match self {
            StencilSpec::FivePoint => "5pt".into(),
            StencilSpec::NinePointBox => "9pt-box".into(),
            StencilSpec::NinePointStar => "9pt-star".into(),
            StencilSpec::ThirteenPoint => "13pt".into(),
            StencilSpec::Custom { e, k } => format!("custom(e={e},k={k})"),
        }
    }

    /// Parses a catalog name.
    pub fn parse(name: &str) -> Result<Self, String> {
        Ok(match name {
            "5pt" | "5-point" => StencilSpec::FivePoint,
            "9pt-box" | "9-point-box" => StencilSpec::NinePointBox,
            "9pt-star" | "9-point-star" => StencilSpec::NinePointStar,
            "13pt" | "13-point-star" => StencilSpec::ThirteenPoint,
            other => {
                return Err(format!(
                    "unknown stencil `{other}`; one of: 5pt, 9pt-box, 9pt-star, 13pt"
                ))
            }
        })
    }

    /// The canonical `(E(S), k(P,S))` constants for this spec under
    /// `shape` — exactly the constants [`Workload::new`] would derive.
    ///
    /// The named-stencil table is derived from the catalog once and
    /// memoized: the planner calls this for every atom of every batch, and
    /// rebuilding tap lists 10⁴ times per batch is measurable.
    pub fn constants(self, shape: PartitionShape) -> (f64, usize) {
        use std::sync::OnceLock;
        static NAMED: OnceLock<[[(f64, usize); 2]; 4]> = OnceLock::new();
        let idx = match self {
            StencilSpec::Custom { e, k } => return (e, k),
            StencilSpec::FivePoint => 0,
            StencilSpec::NinePointBox => 1,
            StencilSpec::NinePointStar => 2,
            StencilSpec::ThirteenPoint => 3,
        };
        let table = NAMED.get_or_init(|| {
            let specs = [
                StencilSpec::FivePoint,
                StencilSpec::NinePointBox,
                StencilSpec::NinePointStar,
                StencilSpec::ThirteenPoint,
            ];
            specs.map(|spec| {
                let s = spec.to_stencil().expect("named spec");
                let e = s.calibrated_e().unwrap_or_else(|| s.flops_per_point());
                [
                    (e, s.perimeters(PartitionShape::Strip)),
                    (e, s.perimeters(PartitionShape::Square)),
                ]
            })
        });
        let shape_idx = match shape {
            PartitionShape::Strip => 0,
            PartitionShape::Square => 1,
        };
        table[idx][shape_idx]
    }

    /// The catalog [`Stencil`] a named spec denotes (`None` for
    /// [`StencilSpec::Custom`], which has no tap geometry).
    pub fn to_stencil(self) -> Option<Stencil> {
        Some(match self {
            StencilSpec::FivePoint => Stencil::five_point(),
            StencilSpec::NinePointBox => Stencil::nine_point_box(),
            StencilSpec::NinePointStar => Stencil::nine_point_star(),
            StencilSpec::ThirteenPoint => Stencil::thirteen_point_star(),
            StencilSpec::Custom { .. } => return None,
        })
    }
}

/// A machine description: a preset plus optional overrides, mirroring the
/// CLI's machine flags.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MachineSpec {
    /// Start from the FLEX/32 overhead regime instead of the `c = 0`
    /// idealization.
    pub flex32: bool,
    /// Seconds per flop override.
    pub tfp: Option<f64>,
    /// Bus cycle override.
    pub b: Option<f64>,
    /// Bus per-word overhead override.
    pub c: Option<f64>,
    /// Message per-packet cost override (hypercube and mesh).
    pub alpha: Option<f64>,
    /// Message startup override (hypercube and mesh).
    pub beta: Option<f64>,
    /// Packet capacity override (hypercube and mesh).
    pub packet: Option<usize>,
    /// Switch stage traversal override.
    pub w: Option<f64>,
}

impl MachineSpec {
    /// True when no override is set (the spec is exactly a preset).
    fn is_bare_preset(&self) -> bool {
        self.tfp.is_none()
            && self.b.is_none()
            && self.c.is_none()
            && self.alpha.is_none()
            && self.beta.is_none()
            && self.packet.is_none()
            && self.w.is_none()
    }

    /// The canonical key this spec resolves to. Bare presets — the bulk of
    /// real traffic — are memoized; the planner calls this per atom.
    pub fn to_key(&self) -> MachineKey {
        use std::sync::OnceLock;
        static PRESETS: OnceLock<[MachineKey; 2]> = OnceLock::new();
        if self.is_bare_preset() {
            let presets = PRESETS.get_or_init(|| {
                [
                    MachineKey::new(&MachineParams::paper_defaults()),
                    MachineKey::new(&MachineParams::flex32_defaults()),
                ]
            });
            presets[self.flex32 as usize]
        } else {
            MachineKey::new(&self.resolve())
        }
    }

    /// Resolves the spec into concrete machine parameters.
    pub fn resolve(&self) -> MachineParams {
        let mut m = if self.flex32 {
            MachineParams::flex32_defaults()
        } else {
            MachineParams::paper_defaults()
        };
        if let Some(tfp) = self.tfp {
            m.tfp = tfp;
        }
        if let Some(b) = self.b {
            m.bus.b = b;
        }
        if let Some(c) = self.c {
            m.bus.c = c;
        }
        if let Some(alpha) = self.alpha {
            m.hypercube.alpha = alpha;
            m.mesh.alpha = alpha;
        }
        if let Some(beta) = self.beta {
            m.hypercube.beta = beta;
            m.mesh.beta = beta;
        }
        if let Some(packet) = self.packet {
            m.hypercube.packet_words = packet;
            m.mesh.packet_words = packet;
        }
        if let Some(w) = self.w {
            m.switch.w = w;
        }
        m
    }
}

/// The canonical (bit-exact, hashable) form of [`MachineParams`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MachineKey {
    tfp: F64Key,
    bus_b: F64Key,
    bus_c: F64Key,
    hc_alpha: F64Key,
    hc_beta: F64Key,
    hc_packet: usize,
    mesh_alpha: F64Key,
    mesh_beta: F64Key,
    mesh_packet: usize,
    switch_w: F64Key,
}

impl MachineKey {
    /// Canonicalizes resolved machine parameters.
    pub fn new(m: &MachineParams) -> Self {
        Self {
            tfp: F64Key::new(m.tfp),
            bus_b: F64Key::new(m.bus.b),
            bus_c: F64Key::new(m.bus.c),
            hc_alpha: F64Key::new(m.hypercube.alpha),
            hc_beta: F64Key::new(m.hypercube.beta),
            hc_packet: m.hypercube.packet_words,
            mesh_alpha: F64Key::new(m.mesh.alpha),
            mesh_beta: F64Key::new(m.mesh.beta),
            mesh_packet: m.mesh.packet_words,
            switch_w: F64Key::new(m.switch.w),
        }
    }

    /// Recovers the exact machine parameters (bit-identical round trip).
    pub fn to_params(self) -> MachineParams {
        MachineParams {
            tfp: self.tfp.get(),
            bus: BusParams { b: self.bus_b.get(), c: self.bus_c.get() },
            hypercube: HypercubeParams {
                alpha: self.hc_alpha.get(),
                beta: self.hc_beta.get(),
                packet_words: self.hc_packet,
            },
            mesh: HypercubeParams {
                alpha: self.mesh_alpha.get(),
                beta: self.mesh_beta.get(),
                packet_words: self.mesh_packet,
            },
            switch: SwitchParams { w: self.switch_w.get() },
        }
    }
}

/// Partition shape in canonical form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShapeKey {
    /// Full-width row strips.
    Strip,
    /// Squares / working rectangles.
    Square,
}

impl ShapeKey {
    /// The corresponding model shape.
    pub fn to_shape(self) -> PartitionShape {
        match self {
            ShapeKey::Strip => PartitionShape::Strip,
            ShapeKey::Square => PartitionShape::Square,
        }
    }

    /// Canonicalizes a model shape.
    pub fn from_shape(s: PartitionShape) -> Self {
        match s {
            PartitionShape::Strip => ShapeKey::Strip,
            PartitionShape::Square => ShapeKey::Square,
        }
    }

    /// The CLI/JSONL name.
    pub fn name(self) -> &'static str {
        match self {
            ShapeKey::Strip => "strip",
            ShapeKey::Square => "square",
        }
    }

    /// Parses the CLI/JSONL name.
    pub fn parse(name: &str) -> Result<Self, String> {
        Ok(match name {
            "strip" | "strips" => ShapeKey::Strip,
            "square" | "squares" => ShapeKey::Square,
            other => return Err(format!("unknown shape `{other}`; one of: strip, square")),
        })
    }
}

/// Processor budget in canonical form (`Limited(0)` is normalized to
/// `Limited(1)` by [`ProcessorBudget::cap`], so it is kept as given —
/// the core model decides).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetKey {
    /// At most `N` processors.
    Limited(usize),
    /// Machine grows with the problem.
    Unlimited,
}

impl BudgetKey {
    /// The corresponding model budget.
    pub fn to_budget(self) -> ProcessorBudget {
        match self {
            BudgetKey::Limited(n) => ProcessorBudget::Limited(n),
            BudgetKey::Unlimited => ProcessorBudget::Unlimited,
        }
    }

    /// Display form (`∞` for unlimited).
    pub fn label(self) -> String {
        match self {
            BudgetKey::Limited(n) => n.to_string(),
            BudgetKey::Unlimited => "∞".into(),
        }
    }
}

/// The bus variants of the Fig. 7 minimum-problem-size analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MinSizeVariant {
    /// Synchronous bus, strip partitions.
    SyncStrip,
    /// Asynchronous bus, strip partitions.
    AsyncStrip,
    /// Synchronous bus, square partitions.
    SyncSquare,
    /// Asynchronous bus, square partitions.
    AsyncSquare,
}

impl MinSizeVariant {
    /// The corresponding core variant.
    pub fn to_variant(self) -> BusVariant {
        match self {
            MinSizeVariant::SyncStrip => BusVariant::SyncStrip,
            MinSizeVariant::AsyncStrip => BusVariant::AsyncStrip,
            MinSizeVariant::SyncSquare => BusVariant::SyncSquare,
            MinSizeVariant::AsyncSquare => BusVariant::AsyncSquare,
        }
    }

    /// The CLI/JSONL name.
    pub fn name(self) -> &'static str {
        match self {
            MinSizeVariant::SyncStrip => "sync-strip",
            MinSizeVariant::AsyncStrip => "async-strip",
            MinSizeVariant::SyncSquare => "sync-square",
            MinSizeVariant::AsyncSquare => "async-square",
        }
    }

    /// Parses the CLI/JSONL name.
    pub fn parse(name: &str) -> Result<Self, String> {
        Ok(match name {
            "sync-strip" => MinSizeVariant::SyncStrip,
            "async-strip" => MinSizeVariant::AsyncStrip,
            "sync-square" => MinSizeVariant::SyncSquare,
            "async-square" => MinSizeVariant::AsyncSquare,
            other => {
                return Err(format!(
                    "unknown minsize variant `{other}`; one of: sync-strip, async-strip, \
                     sync-square, async-square"
                ))
            }
        })
    }
}

/// Which hardware lever a leverage query pulls (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lever {
    /// Multiply the bus speed.
    Bus,
    /// Multiply the floating-point speed.
    Flop,
    /// Scale the fixed per-word overhead `c`.
    Overhead,
}

impl Lever {
    /// The CLI/JSONL name.
    pub fn name(self) -> &'static str {
        match self {
            Lever::Bus => "bus",
            Lever::Flop => "flop",
            Lever::Overhead => "overhead",
        }
    }

    /// Parses the CLI/JSONL name.
    pub fn parse(name: &str) -> Result<Self, String> {
        Ok(match name {
            "bus" => Lever::Bus,
            "flop" => Lever::Flop,
            "overhead" | "c" => Lever::Overhead,
            other => return Err(format!("unknown lever `{other}`; one of: bus, flop, overhead")),
        })
    }
}

/// A problem instance spec: grid side, stencil, shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Grid side `n`.
    pub n: usize,
    /// Stencil (named or custom constants).
    pub stencil: StencilSpec,
    /// Partition shape.
    pub shape: ShapeKey,
}

impl WorkloadSpec {
    /// Builds the exact [`Workload`] this spec denotes.
    pub fn to_workload(&self) -> Result<Workload, String> {
        if self.n == 0 {
            return Err("grid side must be positive".into());
        }
        let shape = self.shape.to_shape();
        let (e, k) = self.stencil.constants(shape);
        if !(e.is_finite() && e > 0.0) {
            return Err(format!("E(S) must be positive and finite, got {e}"));
        }
        Ok(Workload::with_constants(self.n, shape, e, k))
    }
}

/// One query in a batch. `Sweep` is a macro-query the planner expands into
/// many `Optimize` evaluations.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Optimal processor count and speedup for one instance.
    Optimize {
        /// Architecture to optimize on.
        arch: ArchKind,
        /// Machine description.
        machine: MachineSpec,
        /// Problem instance.
        workload: WorkloadSpec,
        /// Processor budget (`None` = unlimited).
        procs: Option<usize>,
        /// Optional per-processor memory budget in words.
        memory_words: Option<usize>,
    },
    /// Closed-form smallest grid gainfully using all `procs` processors.
    MinSize {
        /// Bus variant.
        variant: MinSizeVariant,
        /// Machine description.
        machine: MachineSpec,
        /// `E(S)` constant.
        e: f64,
        /// `k(P,S)` constant.
        k: f64,
        /// Full machine size.
        procs: usize,
    },
    /// Smallest grid reaching a target efficiency on `procs` processors.
    Isoefficiency {
        /// Architecture.
        arch: ArchKind,
        /// Machine description.
        machine: MachineSpec,
        /// Stencil (supplies `E`, `k`).
        stencil: StencilSpec,
        /// Partition shape.
        shape: ShapeKey,
        /// Processor count held fixed.
        procs: usize,
        /// Target efficiency in `(0, 1)`.
        efficiency: f64,
    },
    /// What a hardware upgrade buys at the re-optimized partitioning
    /// (synchronous bus, as in the paper's §6.1).
    Leverage {
        /// Machine description.
        machine: MachineSpec,
        /// Problem instance.
        workload: WorkloadSpec,
        /// Processor budget (`None` = unlimited).
        procs: Option<usize>,
        /// Which constant improves.
        lever: Lever,
        /// Improvement factor (speed multiplier; scale factor for
        /// [`Lever::Overhead`]).
        factor: f64,
    },
    /// A grid of `Optimize` queries: every combination of architecture,
    /// stencil, shape, and budget, with the grid side doubling from
    /// `n_from` to `n_to`.
    Sweep {
        /// Architectures.
        archs: Vec<ArchKind>,
        /// Machine description (shared by the whole sweep).
        machine: MachineSpec,
        /// Stencils.
        stencils: Vec<StencilSpec>,
        /// Shapes.
        shapes: Vec<ShapeKey>,
        /// Budgets (`None` = unlimited).
        budgets: Vec<Option<usize>>,
        /// First grid side.
        n_from: usize,
        /// Last grid side (inclusive; sides double from `n_from`).
        n_to: usize,
    },
}

/// The canonical, deduplicated form of one atomic evaluation. Everything
/// the evaluator needs is in the key; everything presentational (names,
/// labels) is not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvalKey {
    /// One optimizer run.
    Optimize {
        /// Architecture.
        arch: ArchKind,
        /// Canonical machine.
        machine: MachineKey,
        /// Grid side.
        n: usize,
        /// Shape.
        shape: ShapeKey,
        /// `E(S)` bits.
        e: F64Key,
        /// `k(P,S)`.
        k: usize,
        /// Budget.
        budget: BudgetKey,
        /// Optional memory budget (words per processor).
        memory_words: Option<usize>,
    },
    /// One closed-form minimum-size evaluation.
    MinSize {
        /// Bus variant.
        variant: MinSizeVariant,
        /// Canonical machine.
        machine: MachineKey,
        /// `E(S)` bits.
        e: F64Key,
        /// `k` bits (continuous in the closed form).
        k: F64Key,
        /// Machine size.
        procs: usize,
    },
    /// One isoefficiency threshold search.
    Isoefficiency {
        /// Architecture.
        arch: ArchKind,
        /// Canonical machine.
        machine: MachineKey,
        /// Shape.
        shape: ShapeKey,
        /// `E(S)` bits.
        e: F64Key,
        /// `k(P,S)`.
        k: usize,
        /// Processor count.
        procs: usize,
        /// Target efficiency bits.
        efficiency: F64Key,
    },
    /// One leverage what-if.
    Leverage {
        /// Canonical machine.
        machine: MachineKey,
        /// Grid side.
        n: usize,
        /// Shape.
        shape: ShapeKey,
        /// `E(S)` bits.
        e: F64Key,
        /// `k(P,S)`.
        k: usize,
        /// Budget.
        budget: BudgetKey,
        /// Lever pulled.
        lever: Lever,
        /// Factor bits.
        factor: F64Key,
    },
}

/// The successful result of one atomic evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EvalValue {
    /// Result of an optimizer run (mirrors `parspeed_core::Optimum`).
    Optimum {
        /// Optimal processor count.
        processors: usize,
        /// Largest partition area at the optimum.
        area: f64,
        /// Per-iteration cycle time.
        cycle_time: f64,
        /// Speedup over one processor.
        speedup: f64,
        /// Speedup / processors.
        efficiency: f64,
        /// Whether every available processor is used.
        used_all: bool,
    },
    /// Result of a closed-form minimum-size evaluation.
    MinSize {
        /// Continuous minimal grid side.
        n_side: f64,
        /// Fig. 7 ordinate `log₂(n²)`.
        log2_points: f64,
    },
    /// Result of an isoefficiency threshold search.
    Isoefficiency {
        /// Smallest integer grid side reaching the target.
        n: usize,
    },
    /// Result of a leverage what-if.
    Leverage {
        /// Optimal cycle time before the upgrade.
        baseline: f64,
        /// Optimal cycle time after (re-optimized).
        upgraded: f64,
        /// `upgraded / baseline`.
        factor: f64,
    },
}

/// The outcome of one atomic evaluation: a value, or a model-level error
/// (e.g. memory-infeasible). Errors are cached like values — they are
/// deterministic properties of the key.
pub type EvalOutcome = Result<EvalValue, String>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_key_round_trips_bit_exactly() {
        for m in [MachineParams::paper_defaults(), MachineParams::flex32_defaults()] {
            let back = MachineKey::new(&m).to_params();
            assert_eq!(m, back);
        }
    }

    #[test]
    fn named_stencil_constants_match_workload_new() {
        for spec in [
            StencilSpec::FivePoint,
            StencilSpec::NinePointBox,
            StencilSpec::NinePointStar,
            StencilSpec::ThirteenPoint,
        ] {
            let s = spec.to_stencil().unwrap();
            for shape in [PartitionShape::Strip, PartitionShape::Square] {
                let direct = Workload::new(64, &s, shape);
                let (e, k) = spec.constants(shape);
                assert_eq!(direct.e_flops, e, "{spec:?} {shape:?}");
                assert_eq!(direct.k, k, "{spec:?} {shape:?}");
            }
        }
    }

    #[test]
    fn specs_resolving_to_same_numbers_share_a_key() {
        let named =
            WorkloadSpec { n: 128, stencil: StencilSpec::FivePoint, shape: ShapeKey::Square };
        let (e, k) = StencilSpec::FivePoint.constants(PartitionShape::Square);
        let custom =
            WorkloadSpec { n: 128, stencil: StencilSpec::Custom { e, k }, shape: ShapeKey::Square };
        let wa = named.to_workload().unwrap();
        let wb = custom.to_workload().unwrap();
        assert_eq!(wa.e_flops, wb.e_flops);
        assert_eq!(wa.k, wb.k);
    }

    #[test]
    fn names_parse_back() {
        for a in ArchKind::all() {
            assert_eq!(ArchKind::parse(a.name()).unwrap(), a);
        }
        for v in [
            MinSizeVariant::SyncStrip,
            MinSizeVariant::AsyncStrip,
            MinSizeVariant::SyncSquare,
            MinSizeVariant::AsyncSquare,
        ] {
            assert_eq!(MinSizeVariant::parse(v.name()).unwrap(), v);
        }
        for l in [Lever::Bus, Lever::Flop, Lever::Overhead] {
            assert_eq!(Lever::parse(l.name()).unwrap(), l);
        }
        assert!(ArchKind::parse("torus").is_err());
        assert!(ShapeKey::parse("hexagon").is_err());
    }
}
