//! Integration tests pinning the engine's core contract: batched, deduped,
//! cached, parallel evaluation returns **bit-identical** answers to direct
//! `parspeed-core` calls — the ones a caller would write by hand with
//! named stencils and `Workload::new` — and a cache hit can never change
//! an answer.

use parspeed_core::isoefficiency::min_grid_for_efficiency;
use parspeed_core::minsize::{min_grid_side, BusVariant};
use parspeed_core::{
    leverage, optimize_constrained, ArchModel, AsyncBus, Banyan, Hypercube, MachineParams, Mesh,
    ProcessorBudget, ScheduledBus, SyncBus, Workload,
};
use parspeed_engine::{
    ArchKind, Engine, EvalValue, Lever, MachineSpec, MinSizeVariant, Query, Response, ShapeKey,
    StencilSpec, WorkloadSpec,
};
use parspeed_stencil::{PartitionShape, Stencil};

fn direct_model(arch: ArchKind, m: &MachineParams) -> Box<dyn ArchModel> {
    match arch {
        ArchKind::Hypercube => Box::new(Hypercube::new(m)),
        ArchKind::Mesh => Box::new(Mesh::new(m)),
        ArchKind::SyncBus => Box::new(SyncBus::new(m)),
        ArchKind::AsyncBus => Box::new(AsyncBus::new(m)),
        ArchKind::ScheduledBus => Box::new(ScheduledBus::new(m)),
        ArchKind::Banyan => Box::new(Banyan::new(m)),
    }
}

fn direct_stencil(s: StencilSpec) -> Stencil {
    match s {
        StencilSpec::FivePoint => Stencil::five_point(),
        StencilSpec::NinePointBox => Stencil::nine_point_box(),
        StencilSpec::NinePointStar => Stencil::nine_point_star(),
        StencilSpec::ThirteenPoint => Stencil::thirteen_point_star(),
        StencilSpec::Custom { .. } => unreachable!("test uses named stencils"),
    }
}

/// Every (architecture, stencil, shape, size, budget) combination must
/// round-trip through the engine bit-for-bit against the hand-written
/// direct call.
#[test]
fn optimize_grid_is_bit_identical_to_direct_calls() {
    let stencils = [StencilSpec::FivePoint, StencilSpec::NinePointBox];
    let shapes = [ShapeKey::Strip, ShapeKey::Square];
    let sizes = [64usize, 129, 256, 1000];
    let budgets = [Some(1), Some(14), Some(64), None];

    let mut batch = Vec::new();
    for arch in ArchKind::all() {
        for stencil in stencils {
            for shape in shapes {
                for n in sizes {
                    for procs in budgets {
                        batch.push(Query::Optimize {
                            arch,
                            machine: MachineSpec::default(),
                            workload: WorkloadSpec { n, stencil, shape },
                            procs,
                            memory_words: None,
                        });
                    }
                }
            }
        }
    }
    let engine = Engine::builder().build();
    let out = engine.run_batch(&batch);

    let m = MachineParams::paper_defaults();
    for (query, response) in batch.iter().zip(&out.responses) {
        let Query::Optimize { arch, workload, procs, .. } = query else { unreachable!() };
        let model = direct_model(*arch, &m);
        let shape = workload.shape.to_shape();
        let w = Workload::new(workload.n, &direct_stencil(workload.stencil), shape);
        let budget = match procs {
            Some(p) => ProcessorBudget::Limited(*p),
            None => ProcessorBudget::Unlimited,
        };
        let direct = optimize_constrained(model.as_ref(), &w, budget, None).unwrap();
        match response {
            Response::Single(Ok(EvalValue::Optimum {
                processors,
                area,
                cycle_time,
                speedup,
                efficiency,
                used_all,
            })) => {
                let ctx = format!("{query:?}");
                assert_eq!(*processors, direct.processors, "{ctx}");
                assert_eq!(area.to_bits(), direct.area.to_bits(), "{ctx}");
                assert_eq!(cycle_time.to_bits(), direct.cycle_time.to_bits(), "{ctx}");
                assert_eq!(speedup.to_bits(), direct.speedup.to_bits(), "{ctx}");
                assert_eq!(efficiency.to_bits(), direct.efficiency.to_bits(), "{ctx}");
                assert_eq!(*used_all, direct.used_all, "{ctx}");
            }
            other => panic!("expected optimum for {query:?}, got {other:?}"),
        }
    }
}

#[test]
fn minsize_iso_and_leverage_match_direct_calls() {
    let m = MachineParams::paper_defaults();
    let spec = MachineSpec::default();
    let batch = vec![
        Query::MinSize {
            variant: MinSizeVariant::SyncSquare,
            machine: spec,
            e: 6.0,
            k: 1.0,
            procs: 14,
        },
        Query::Isoefficiency {
            arch: ArchKind::SyncBus,
            machine: spec,
            stencil: StencilSpec::FivePoint,
            shape: ShapeKey::Square,
            procs: 16,
            efficiency: 0.5,
        },
        Query::Leverage {
            machine: spec,
            workload: WorkloadSpec {
                n: 1024,
                stencil: StencilSpec::FivePoint,
                shape: ShapeKey::Square,
            },
            procs: Some(24),
            lever: Lever::Bus,
            factor: 2.0,
        },
    ];
    let out = Engine::builder().build().run_batch(&batch);

    let direct_min = min_grid_side(&m, 6.0, 1.0, 14, BusVariant::SyncSquare);
    match out.responses[0].single().unwrap() {
        Ok(EvalValue::MinSize { n_side, .. }) => {
            assert_eq!(n_side.to_bits(), direct_min.to_bits());
        }
        other => panic!("unexpected {other:?}"),
    }

    let bus = SyncBus::new(&m);
    let template = Workload::new(2, &Stencil::five_point(), PartitionShape::Square);
    let direct_iso = min_grid_for_efficiency(&bus, &template, 16, 0.5);
    match out.responses[1].single().unwrap() {
        Ok(EvalValue::Isoefficiency { n }) => assert_eq!(*n, direct_iso),
        other => panic!("unexpected {other:?}"),
    }

    let w = Workload::new(1024, &Stencil::five_point(), PartitionShape::Square);
    let direct_lev = leverage::bus_speedup(&m, &w, ProcessorBudget::Limited(24), 2.0);
    match out.responses[2].single().unwrap() {
        Ok(EvalValue::Leverage { baseline, upgraded, factor }) => {
            assert_eq!(baseline.to_bits(), direct_lev.baseline.to_bits());
            assert_eq!(upgraded.to_bits(), direct_lev.upgraded.to_bits());
            assert_eq!(factor.to_bits(), direct_lev.factor().to_bits());
        }
        other => panic!("unexpected {other:?}"),
    }
}

/// Hammering the same batch through a warm cache, in any thread
/// configuration, never changes a single bit of any answer.
#[test]
fn cache_hits_never_change_answers() {
    let mut batch = Vec::new();
    for arch in ArchKind::all() {
        for n in [64usize, 256, 777] {
            batch.push(Query::Optimize {
                arch,
                machine: MachineSpec::default(),
                workload: WorkloadSpec {
                    n,
                    stencil: StencilSpec::NinePointStar,
                    shape: ShapeKey::Square,
                },
                procs: Some(32),
                memory_words: None,
            });
        }
    }
    for threads in [0usize, 1, 4] {
        let engine = Engine::builder().threads(threads).build();
        let cold = engine.run_batch(&batch);
        assert_eq!(cold.telemetry.cache_hits, 0, "threads={threads}");
        for _ in 0..5 {
            let warm = engine.run_batch(&batch);
            assert_eq!(warm.telemetry.cache_hits, warm.telemetry.unique);
            assert_eq!(warm.telemetry.evaluated, 0);
            assert_eq!(cold.responses, warm.responses, "threads={threads}");
        }
    }
}

/// A sweep macro-query answers exactly like the per-point queries it
/// expands to.
#[test]
fn sweep_points_match_point_queries() {
    let spec = MachineSpec::default();
    let sweep = Query::Sweep {
        archs: vec![ArchKind::SyncBus, ArchKind::Hypercube],
        machine: spec,
        stencils: vec![StencilSpec::FivePoint],
        shapes: vec![ShapeKey::Square],
        budgets: vec![Some(16)],
        n_from: 64,
        n_to: 512,
    };
    let engine = Engine::builder().build();
    let out = engine.run_batch(std::slice::from_ref(&sweep));
    let points = out.responses[0].sweep().unwrap();
    assert_eq!(points.len(), 8); // 2 archs × 4 doubling sizes

    for (label, outcome) in points {
        let arch = ArchKind::parse(label.arch).unwrap();
        let point = Query::Optimize {
            arch,
            machine: spec,
            workload: WorkloadSpec {
                n: label.n,
                stencil: StencilSpec::FivePoint,
                shape: ShapeKey::Square,
            },
            procs: Some(16),
            memory_words: None,
        };
        let single = engine.run_batch(&[point]);
        assert_eq!(single.responses[0].single().unwrap(), outcome, "{label:?}");
    }
}

/// The acceptance-criterion workload: a 10k-query **mixed-kind** batch
/// (optimize, minsize, isoeff, leverage, table1, compare, simulate, solve
/// — the old and the new service query variants together) with heavy
/// duplication must run at least 4× faster through the engine
/// (dedup + cache + parallel sharding) than the naive sequential
/// per-query loop, with bit-identical responses.
#[test]
fn ten_thousand_query_batch_beats_naive_by_4x() {
    let batch = parspeed_engine::workloads::mixed_batch(10_000);

    // Sibling tests in this binary run on other threads and fight for
    // cores; minimum-of-N on both sides keeps the ratio about the code,
    // not the scheduler.
    let mut naive_secs = f64::INFINITY;
    let mut naive = Vec::new();
    for _ in 0..2 {
        let t0 = std::time::Instant::now();
        naive = parspeed_engine::eval_naive(&batch);
        naive_secs = naive_secs.min(t0.elapsed().as_secs_f64());
    }

    let mut engine_secs = f64::INFINITY;
    let mut fast = None;
    for _ in 0..3 {
        let engine = Engine::builder().build(); // cold cache each time
        let t1 = std::time::Instant::now();
        let out = engine.run_batch(&batch);
        engine_secs = engine_secs.min(t1.elapsed().as_secs_f64());
        fast = Some(out);
    }
    let fast = fast.expect("ran at least once");

    assert_eq!(fast.responses, naive, "engine must be bit-identical to the naive loop");
    assert!(fast.telemetry.dedup_factor() > 20.0, "batch should be heavily duplicated");
    let speedup = naive_secs / engine_secs;
    assert!(
        speedup >= 4.0,
        "engine {engine_secs:.4}s vs naive {naive_secs:.4}s — only {speedup:.1}×"
    );
}
