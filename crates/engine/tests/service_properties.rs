//! Property tests for the service surface: a shuffled, duplicated,
//! mixed-kind batch — including the `Table1`, `Compare`, `Simulate`, and
//! `Solve` variants the service redesign added — must return responses in
//! the original request order, each bit-identical to the direct calls a
//! caller would hand-write against `parspeed-core`, `parspeed-arch`, and
//! `parspeed-solver`.

use parspeed_core::{optimize_constrained, table1, MachineParams, ProcessorBudget, Workload};
use parspeed_engine::{
    ArchKind, Engine, EvalValue, MachineSpec, Query, Response, ShapeKey, SimArchKind, SolverKind,
    StencilSpec, WorkloadSpec,
};
use parspeed_stencil::{PartitionShape, Stencil};
use proptest::prelude::*;

/// The query pool the batches cycle over: one of each new variant plus
/// optimizer traffic for them to interleave with.
fn pool() -> Vec<Query> {
    let spec = MachineSpec::default();
    let square = |n| WorkloadSpec { n, stencil: StencilSpec::FivePoint, shape: ShapeKey::Square };
    vec![
        Query::Table1 { machine: spec, n: 512, stencil: StencilSpec::FivePoint },
        Query::Compare { machine: spec, workload: square(128), procs: Some(32) },
        Query::Simulate {
            arch: SimArchKind::SyncBus,
            machine: spec,
            workload: WorkloadSpec {
                n: 64,
                stencil: StencilSpec::FivePoint,
                shape: ShapeKey::Strip,
            },
            procs: 4,
        },
        Query::Solve {
            n: 15,
            solver: SolverKind::Cg,
            tol: 1e-6,
            stencil: StencilSpec::FivePoint,
            partitions: 4,
            max_iters: 10_000,
            check: None,
        },
        Query::Optimize {
            arch: ArchKind::SyncBus,
            machine: spec,
            workload: square(256),
            procs: Some(64),
            memory_words: None,
        },
        Query::Optimize {
            arch: ArchKind::Hypercube,
            machine: spec,
            workload: square(1024),
            procs: None,
            memory_words: None,
        },
    ]
}

/// What a caller would compute by hand for each pool entry, with no
/// engine anywhere near it.
fn direct_answers() -> Vec<Response> {
    let m = MachineParams::paper_defaults();
    let five = Stencil::five_point();
    let mut expected = Vec::new();

    // Table1.
    expected.push(Response::Single(Ok(EvalValue::Table1 { rows: table1::rows(&m, 512, &five) })));

    // Compare (pool index 1) is checked against
    // [`direct_compare_outcomes`] in `check` — its labels are engine-side
    // presentation — so its slot here is a placeholder.
    expected.push(Response::Sweep(vec![]));

    // Simulate: the exact event-level run plus the model's predictions.
    let decomp = parspeed_grid::StripDecomposition::new(64, 4);
    let spec = parspeed_arch::IterationSpec::new(&decomp, &five);
    let report = parspeed_arch::SyncBusSim::new(&m).simulate(&spec);
    let w64 = Workload::new(64, &five, PartitionShape::Strip);
    let model = ArchKind::SyncBus.model(&m);
    let simulate = Ok(EvalValue::Simulate {
        cycle_time: report.cycle_time,
        max_compute: report.max_compute,
        comm_fraction: report.comm_fraction(),
        predicted: model.cycle_time(&w64, w64.points() / 4.0),
        seq_time: model.seq_time(&w64),
    });

    // Solve: the exact CG run and its error against the manufactured
    // solution.
    let problem =
        parspeed_solver::PoissonProblem::manufactured(15, parspeed_solver::Manufactured::SinSin);
    let (u, status, stats) =
        parspeed_solver::CgSolver { tol: 1e-6, max_iters: 10_000 }.solve(&problem);
    let exact = parspeed_solver::Manufactured::SinSin;
    let h = problem.h();
    let mut max_error = 0.0f64;
    for r in 0..problem.n() {
        for c in 0..problem.n() {
            let (x, y) = ((c as f64 + 1.0) * h, (r as f64 + 1.0) * h);
            max_error = max_error.max((u.get(r, c) - exact.u(x, y)).abs());
        }
    }
    let solve = Ok(EvalValue::Solve {
        converged: status.converged,
        iterations: status.iterations,
        final_diff: status.final_diff,
        max_error,
        global_reductions: Some(stats.global_reductions),
        resumed_from: None,
    });

    // The two optimizer entries.
    let w256 = Workload::new(256, &five, PartitionShape::Square);
    let w1024 = Workload::new(1024, &five, PartitionShape::Square);
    let opt = |arch: ArchKind, w: &Workload, budget: ProcessorBudget| {
        let model = arch.model(&m);
        let direct = optimize_constrained(model.as_ref(), w, budget, None).unwrap();
        Ok(EvalValue::Optimum {
            processors: direct.processors,
            area: direct.area,
            cycle_time: direct.cycle_time,
            speedup: direct.speedup,
            efficiency: direct.efficiency,
            used_all: direct.used_all,
        })
    };
    let opt_bus = opt(ArchKind::SyncBus, &w256, ProcessorBudget::Limited(64));
    let opt_hc = opt(ArchKind::Hypercube, &w1024, ProcessorBudget::Unlimited);

    expected.push(Response::Single(simulate));
    expected.push(Response::Single(solve));
    expected.push(Response::Single(opt_bus));
    expected.push(Response::Single(opt_hc));
    expected
}

/// The compare entry's expected outcomes (labels are presentation-only
/// and asserted structurally).
fn direct_compare_outcomes() -> Vec<parspeed_engine::EvalOutcome> {
    let m = MachineParams::paper_defaults();
    let five = Stencil::five_point();
    let w128 = Workload::new(128, &five, PartitionShape::Square);
    ArchKind::all()
        .into_iter()
        .map(|arch| {
            let model = arch.model(&m);
            let direct =
                optimize_constrained(model.as_ref(), &w128, ProcessorBudget::Limited(32), None)
                    .unwrap();
            Ok(EvalValue::Optimum {
                processors: direct.processors,
                area: direct.area,
                cycle_time: direct.cycle_time,
                speedup: direct.speedup,
                efficiency: direct.efficiency,
                used_all: direct.used_all,
            })
        })
        .collect()
}

/// Checks one engine response against the direct answer for pool entry
/// `pool_idx`, bit-for-bit.
fn check(pool_idx: usize, response: &Response, expected: &[Response]) {
    if pool_idx == 1 {
        // Compare: six points in paper order, outcomes bit-identical.
        let points = response.sweep().unwrap_or_else(|| panic!("compare answers points"));
        let outcomes = direct_compare_outcomes();
        assert_eq!(points.len(), outcomes.len());
        for ((label, got), want) in points.iter().zip(&outcomes) {
            assert_eq!(got, want, "compare point {}", label.arch);
        }
        let archs: Vec<&str> = points.iter().map(|(l, _)| l.arch).collect();
        assert_eq!(
            archs,
            vec!["hypercube", "mesh", "sync-bus", "async-bus", "scheduled-bus", "banyan"]
        );
    } else {
        assert_eq!(response, &expected[pool_idx], "pool entry {pool_idx}");
    }
}

proptest! {
    /// Shuffle a duplicated mixed-kind batch with a seeded permutation:
    /// the engine must answer every slot in the original request order,
    /// bit-identical to the direct calls.
    fn shuffled_duplicated_batch_answers_in_order_bit_identically(
        seed in 0u64..1_000_000,
        dup in 1usize..4,
    ) {
        let pool = pool();
        let expected = direct_answers();

        // Duplicate the pool `dup` times, then Fisher–Yates with an LCG
        // seeded from the proptest case.
        let mut order: Vec<usize> = (0..pool.len() * dup).map(|i| i % pool.len()).collect();
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for i in (1..order.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let batch: Vec<Query> = order.iter().map(|&i| pool[i].clone()).collect();

        let engine = Engine::builder().build();
        let out = engine.run_batch(&batch);
        prop_assert_eq!(out.responses.len(), batch.len());
        for (slot, &pool_idx) in order.iter().enumerate() {
            check(pool_idx, &out.responses[slot], &expected);
        }
    }
}
