//! Convergence-checking costs and scheduling (§4, after Saltz, Naik &
//! Nicol \[13\]).
//!
//! A convergence check has two parts: a *local* pass comparing every
//! updated point with its previous value (for small stencils this can be
//! ~50% of the update compute), and a *dissemination* stage combining the
//! per-partition verdicts across the machine — non-local communication
//! whose cost grows with the processor count. The paper notes that naive
//! per-iteration checking on a hypercube is expensive, but scheduled
//! checks (every `d` iterations) reduce the cost "to an insignificant
//! amount". This module prices both parts per architecture and finds the
//! optimal checking period.

use crate::{HypercubeParams, MachineParams};

/// Per-architecture dissemination cost of one convergence check with `p`
/// participating processors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Dissemination {
    /// Hypercube all-reduce: `2·⌈log₂p⌉` single-word neighbour messages.
    Hypercube(HypercubeParams),
    /// Bus: one word per processor over the shared bus.
    Bus {
        /// Bus cycle time per word.
        b: f64,
        /// Fixed per-word overhead.
        c: f64,
    },
    /// Mesh with dedicated global-combine hardware (FEM-style): free.
    CombineHardware,
    /// Mesh without combine hardware: a software combine tree of depth
    /// `2·√p` single-word hops.
    MeshSoftware(HypercubeParams),
}

impl Dissemination {
    /// Seconds to combine and redistribute one verdict across `p`
    /// processors.
    pub fn time(&self, p: usize) -> f64 {
        let p = p.max(1) as f64;
        match self {
            Dissemination::Hypercube(h) => 2.0 * p.log2().ceil() * (h.alpha + h.beta),
            Dissemination::Bus { b, c } => p * (b + c),
            Dissemination::CombineHardware => 0.0,
            Dissemination::MeshSoftware(h) => 2.0 * p.sqrt().ceil() * (h.alpha + h.beta),
        }
    }
}

/// The cost model for convergence checking on one machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceModel {
    /// Flops per grid point of the local check (difference, square,
    /// accumulate ≈ 3 — about half a 5-point update, as §4 notes).
    pub check_flops: f64,
    /// Seconds per flop.
    pub tfp: f64,
    /// How verdicts spread.
    pub dissemination: Dissemination,
}

impl ConvergenceModel {
    /// Hypercube-flavoured model from shared machine constants.
    pub fn hypercube(m: &MachineParams) -> Self {
        Self { check_flops: 3.0, tfp: m.tfp, dissemination: Dissemination::Hypercube(m.hypercube) }
    }

    /// Bus-flavoured model.
    pub fn bus(m: &MachineParams) -> Self {
        Self {
            check_flops: 3.0,
            tfp: m.tfp,
            dissemination: Dissemination::Bus { b: m.bus.b, c: m.bus.c },
        }
    }

    /// Cost of one check: local pass over `area` points plus dissemination
    /// across `p` processors.
    pub fn check_time(&self, area: f64, p: usize) -> f64 {
        self.check_flops * area * self.tfp + self.dissemination.time(p)
    }

    /// Expected total solve time when convergence lands after about
    /// `iters_needed` iterations of base cycle time `cycle`, checking every
    /// `period` iterations.
    ///
    /// The solver does not know `iters_needed` in advance (that is the
    /// whole scheduling problem of \[13\]), so convergence falls uniformly
    /// within a checking period: the expected overshoot is `(period−1)/2`
    /// wasted iterations, and `iters/period + 1` checks run before the
    /// detecting one.
    pub fn total_time(
        &self,
        iters_needed: usize,
        cycle: f64,
        area: f64,
        p: usize,
        period: usize,
    ) -> f64 {
        assert!(period >= 1);
        let d = period as f64;
        let checks = iters_needed as f64 / d + 1.0;
        let overshoot = (d - 1.0) / 2.0;
        (iters_needed as f64 + overshoot) * cycle + checks * self.check_time(area, p)
    }

    /// The checking period minimizing [`ConvergenceModel::total_time`],
    /// scanned over `1..=iters_needed` (the curve is unimodal but cheap to
    /// scan exactly).
    pub fn optimal_period(&self, iters_needed: usize, cycle: f64, area: f64, p: usize) -> usize {
        (1..=iters_needed.max(1))
            .min_by(|&a, &b| {
                self.total_time(iters_needed, cycle, area, p, a).total_cmp(&self.total_time(
                    iters_needed,
                    cycle,
                    area,
                    p,
                    b,
                ))
            })
            .expect("nonempty range")
    }

    /// Fractional overhead of checking every `period` iterations relative
    /// to a check-free solve of `iters_needed` iterations.
    pub fn overhead_fraction(
        &self,
        iters_needed: usize,
        cycle: f64,
        area: f64,
        p: usize,
        period: usize,
    ) -> f64 {
        let base = iters_needed as f64 * cycle;
        (self.total_time(iters_needed, cycle, area, p, period) - base) / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> MachineParams {
        MachineParams::paper_defaults()
    }

    #[test]
    fn local_check_is_about_half_a_five_point_update() {
        // §4: "the additional computation required to do a convergence
        // check can be 50% of the grid update computation" for 5-point.
        let c = ConvergenceModel::hypercube(&m());
        let update_flops = 6.0;
        assert!((c.check_flops / update_flops - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hypercube_dissemination_grows_logarithmically() {
        let c = ConvergenceModel::hypercube(&m());
        let t16 = c.dissemination.time(16);
        let t256 = c.dissemination.time(256);
        assert!((t256 / t16 - 2.0).abs() < 1e-9); // log₂256 / log₂16 = 8/4
    }

    #[test]
    fn bus_dissemination_is_cheap() {
        // §6: "involves only one number from each processor, and is hence
        // ignored" — must be orders below a boundary exchange.
        let machine = m();
        let c = ConvergenceModel::bus(&machine);
        let diss = c.dissemination.time(30);
        let one_boundary_word_exchange = 2.0 * 256.0 * (machine.bus.c + machine.bus.b * 30.0);
        assert!(diss < one_boundary_word_exchange / 100.0);
    }

    #[test]
    fn combine_hardware_is_free() {
        assert_eq!(Dissemination::CombineHardware.time(1024), 0.0);
    }

    /// A realistic iPSC-class regime: n = 1024 spread over 64 processors
    /// (16 384 points each), 5-point Jacobi cycle, ~937 iterations.
    fn regime() -> (ConvergenceModel, usize, f64, f64, usize) {
        let machine = m();
        let c = ConvergenceModel::hypercube(&machine);
        let area = 16_384.0;
        let cycle = 6.0 * area * machine.tfp;
        (c, 937, cycle, area, 64)
    }

    #[test]
    fn naive_checking_on_hypercube_is_expensive() {
        // §4: "the communication cost for convergence checking is extremely
        // high due to message packaging and handling costs" — per-iteration
        // checking costs more than the iteration itself here.
        let (c, iters, cycle, area, p) = regime();
        let over = c.overhead_fraction(iters, cycle, area, p, 1);
        assert!(over > 0.5, "naive overhead only {over}");
    }

    #[test]
    fn scheduling_makes_checking_insignificant() {
        // §4 / [13]: scheduled checks reduce the cost to an insignificant
        // amount — under 10% at the optimal period in the same regime where
        // naive checking costs >50%.
        let (c, iters, cycle, area, p) = regime();
        let d = c.optimal_period(iters, cycle, area, p);
        assert!(d > 1, "optimal period collapsed to naive checking");
        assert!(d < iters, "optimal period degenerated to a single check");
        let over = c.overhead_fraction(iters, cycle, area, p, d);
        assert!(over < 0.10, "scheduled overhead {over} at period {d}");
    }

    #[test]
    fn optimal_period_follows_square_root_law() {
        // Balancing overshoot d/2·cycle against iters/d checks gives
        // d* ≈ √(2·iters·check/cycle).
        let (c, iters, cycle, area, p) = regime();
        let d = c.optimal_period(iters, cycle, area, p) as f64;
        let law = (2.0 * iters as f64 * c.check_time(area, p) / cycle).sqrt();
        assert!((d - law).abs() / law < 0.25, "scan {d} vs law {law}");
        let best = c.total_time(iters, cycle, area, p, d as usize);
        assert!(best <= c.total_time(iters, cycle, area, p, 1));
        assert!(best <= c.total_time(iters, cycle, area, p, iters));
    }

    #[test]
    fn period_one_checks_every_iteration_with_no_overshoot() {
        let c = ConvergenceModel::bus(&m());
        let t = c.total_time(10, 1.0, 100.0, 4, 1);
        let expected = 10.0 * 1.0 + 11.0 * c.check_time(100.0, 4);
        assert!((t - expected).abs() < 1e-12);
    }

    #[test]
    fn expected_overshoot_is_charged() {
        // Period 4: expected 1.5 wasted iterations, 10/4 + 1 checks.
        let c = ConvergenceModel::bus(&m());
        let t = c.total_time(10, 1.0, 0.0, 1, 4);
        let check = c.check_time(0.0, 1);
        assert!((t - (11.5 + 3.5 * check)).abs() < 1e-12);
    }
}
