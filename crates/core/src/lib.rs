//! The analytic performance model of Nicol & Willard (1987): per-iteration
//! cycle times for parallel elliptic-PDE solvers on four classes of
//! architecture, and the optimization of partition size (hence processor
//! count and speedup) that is the paper's contribution.
//!
//! The model (§3): an `n×n` grid is cut into partitions of `A` points each;
//! one iteration costs
//!
//! ```text
//! t_cycle = t_comp + t_ta,      t_comp = E(S)·A·Tfp
//! ```
//!
//! with `t_ta` the architecture-dependent transfer/synchronization time.
//! Every `t_cycle(A)` in the paper is convex (or monotone) in `A`, so the
//! optimal assignment either uses one processor, all processors, or a
//! unique interior optimum found by calculus (§8). The crate exposes:
//!
//! * [`Workload`] — problem instance: grid size, stencil-derived `E(S)` and
//!   `k(P,S)`, partition shape;
//! * [`MachineParams`] — calibrated hardware constants;
//! * one model per architecture: [`Hypercube`], [`Mesh`], [`SyncBus`],
//!   [`AsyncBus`], [`Banyan`], all implementing [`ArchModel`];
//! * [`optimize`](ArchModel::optimize) — optimal processor count and
//!   speedup under a [`ProcessorBudget`];
//! * [`minsize`] — the smallest grid that gainfully uses all `N`
//!   processors (Fig. 7);
//! * [`isoefficiency`] — how fast the problem must grow to hold efficiency
//!   constant (the modern restatement of the paper's scaling results);
//! * [`leverage`] — what doubling processor or network speed buys (§6.1);
//! * [`table1`] — the paper's closing Table I;
//! * [`fem`] — the §5 Adams–Crockett counter-example;
//! * [`convergence`] — convergence-check cost model (§4);
//! * [`schedule`] — the §8 future-work bus-access scheduler: batch
//!   staggering recovers the asynchronous bus's constant factors on
//!   synchronous hardware (word-granularity TDMA recovers nothing).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod banyan;
mod bus_async;
mod bus_sync;
pub mod convergence;
pub mod convex;
pub mod fem;
mod hypercube;
pub mod isoefficiency;
pub mod leverage;
pub mod memory;
mod mesh;
pub mod minsize;
mod optimize;
mod params;
pub mod roots;
pub mod schedule;
pub mod table1;
mod workload;

pub use banyan::Banyan;
pub use bus_async::{AsyncBus, OverlapMode};
pub use bus_sync::SyncBus;
pub use hypercube::Hypercube;
pub use memory::{Infeasible, MemoryBudget};
pub use mesh::Mesh;
pub use optimize::{assigned_area, optimize, optimize_constrained, Optimum};
pub use params::{BusParams, HypercubeParams, MachineParams, SwitchParams};
pub use schedule::ScheduledBus;
pub use workload::{ProcessorBudget, Workload};

/// A per-architecture analytic cycle-time model.
///
/// `area` is treated as a continuous quantity, exactly as in the paper; the
/// integer/feasibility snapping happens in [`ArchModel::optimize`].
pub trait ArchModel {
    /// Architecture name for reports.
    fn name(&self) -> &'static str;

    /// Seconds per floating-point operation on one processor.
    fn tfp(&self) -> f64;

    /// Per-iteration cycle time with partitions of `area` points
    /// (`P = n²/area` processors in use).
    fn cycle_time(&self, w: &Workload, area: f64) -> f64;

    /// The continuous area minimizing [`ArchModel::cycle_time`], when a
    /// closed form exists. `None` means the cost is monotone in `area`
    /// (hypercube-like: extremal allocation is optimal).
    fn closed_form_optimal_area(&self, w: &Workload) -> Option<f64>;

    /// Sequential execution time `E·n²·Tfp` of one iteration.
    fn seq_time(&self, w: &Workload) -> f64 {
        w.e_flops * (w.n * w.n) as f64 * self.tfp()
    }

    /// Speedup of running with partitions of `area` points.
    fn speedup_at(&self, w: &Workload, area: f64) -> f64 {
        self.seq_time(w) / self.cycle_time(w, area)
    }

    /// Optimal processor allocation under `budget`: minimizes the cycle
    /// time over feasible integer processor counts (snapping the continuous
    /// optimum, the extremes, and — for strips — the paper's
    /// `A_l = n·⌊Â/n⌋ / A_h = A_l + n` neighbours).
    fn optimize(&self, w: &Workload, budget: ProcessorBudget) -> Optimum
    where
        Self: Sized,
    {
        optimize::optimize(self, w, budget)
    }

    /// [`ArchModel::optimize`] under a per-processor memory budget (§3/§4):
    /// allocations whose largest partition overflows the memory are
    /// excluded, which can force spreading past the unconstrained optimum.
    /// Errors when the problem does not fit the machine at all.
    fn optimize_constrained(
        &self,
        w: &Workload,
        budget: ProcessorBudget,
        memory: Option<MemoryBudget>,
    ) -> Result<Optimum, Infeasible>
    where
        Self: Sized,
    {
        optimize::optimize_constrained(self, w, budget, memory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parspeed_stencil::{PartitionShape, Stencil};

    /// Every architecture model must report speedup ≤ P for every feasible
    /// allocation: communication can only hurt.
    #[test]
    fn speedup_never_exceeds_processor_count() {
        let m = MachineParams::paper_defaults();
        let models: Vec<Box<dyn ArchModel>> = vec![
            Box::new(Hypercube::new(&m)),
            Box::new(Mesh::new(&m)),
            Box::new(SyncBus::new(&m)),
            Box::new(AsyncBus::new(&m)),
            Box::new(Banyan::new(&m)),
        ];
        for shape in [PartitionShape::Strip, PartitionShape::Square] {
            let w = Workload::new(128, &Stencil::five_point(), shape);
            for model in &models {
                for p in [1usize, 2, 4, 16, 64] {
                    let area = (128.0 * 128.0) / p as f64;
                    let s = model.speedup_at(&w, area);
                    assert!(
                        s <= p as f64 + 1e-9,
                        "{}: speedup {} > P {} ({:?})",
                        model.name(),
                        s,
                        p,
                        shape
                    );
                    assert!(s > 0.0);
                }
            }
        }
    }

    /// With one processor (area = n²) every model must equal sequential
    /// time: no communication is charged.
    #[test]
    fn single_processor_means_no_communication() {
        let m = MachineParams::paper_defaults();
        let w = Workload::new(64, &Stencil::five_point(), PartitionShape::Square);
        let models: Vec<Box<dyn ArchModel>> = vec![
            Box::new(Hypercube::new(&m)),
            Box::new(Mesh::new(&m)),
            Box::new(SyncBus::new(&m)),
            Box::new(AsyncBus::new(&m)),
            Box::new(Banyan::new(&m)),
        ];
        for model in &models {
            let t = model.cycle_time(&w, (64 * 64) as f64);
            let seq = model.seq_time(&w);
            assert!(
                (t - seq).abs() / seq < 1e-9,
                "{}: one-processor cycle {} != seq {}",
                model.name(),
                t,
                seq
            );
        }
    }
}
