//! Banyan switching-network model (§7): RP3 / BBN Butterfly class.
//!
//! Under the paper's assumptions — one global memory module per processor,
//! local memory for everything but boundary values, 2×2 switches, and a
//! contention-free module assignment for boundary reads — a word read
//! crosses the network twice: `r_acc = 2·w·log₂N`. Reads serialize per
//! processor; writes go back asynchronously and are not charged:
//!
//! ```text
//! strips : t_cycle = 4·n·k·w·log₂N + E·A·Tfp
//! squares: t_cycle = 8·s·k·w·log₂N + E·s²·Tfp
//! ```
//!
//! For a fixed machine of `N` processors both are increasing in the
//! partition size, so the optimum is extremal (all processors). Growing
//! the machine with the problem at one point per processor gives the
//! Table-I speedup `E·n²·Tfp / (16·k·w·log₂n + E·Tfp) = Θ(n²/log n)`.

use crate::{ArchModel, MachineParams, SwitchParams, Workload};
use parspeed_stencil::PartitionShape;

/// The banyan/butterfly switching-network model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Banyan {
    tfp: f64,
    sw: SwitchParams,
    /// Fixed network size; `None` sizes the network to the processors in
    /// use (the paper's grow-with-the-problem analyses).
    network: Option<usize>,
}

impl Banyan {
    /// Model with the network sized to the processors in use.
    pub fn new(m: &MachineParams) -> Self {
        Self { tfp: m.tfp, sw: m.switch, network: None }
    }

    /// Model of a fixed machine: `log₂(network_size)` stages regardless of
    /// how many processors the decomposition employs.
    pub fn with_network(m: &MachineParams, network_size: usize) -> Self {
        assert!(network_size >= 2, "a switching network needs ≥ 2 endpoints");
        Self { tfp: m.tfp, sw: m.switch, network: Some(network_size) }
    }

    /// Network stages seen by a configuration using `p` processors.
    pub fn stages(&self, p: f64) -> f64 {
        let endpoints = self.network.map(|n| n as f64).unwrap_or(p).max(2.0);
        endpoints.log2()
    }

    /// Per-word global-memory read latency `2·w·log₂N`.
    pub fn read_latency(&self, p: f64) -> f64 {
        2.0 * self.sw.w * self.stages(p)
    }

    /// Per-iteration transfer time (serial boundary reads; writes free).
    pub fn transfer_time(&self, w: &Workload, area: f64) -> f64 {
        let p = w.points() / area;
        w.one_way_words(area) * self.read_latency(p)
    }

    /// Cycle time at fixed points-per-processor as the machine grows with
    /// the problem (`N = n²/F`).
    pub fn scaled_cycle(&self, w: &Workload, points_per_proc: f64) -> f64 {
        let p = w.points() / points_per_proc;
        let words = match w.shape {
            PartitionShape::Strip => 2.0 * w.n as f64 * w.k as f64,
            PartitionShape::Square => 4.0 * points_per_proc.sqrt() * w.k as f64,
        };
        w.e_flops * points_per_proc * self.tfp + words * 2.0 * self.sw.w * p.max(2.0).log2()
    }

    /// Speedup at fixed points-per-processor: `Θ(n²/log n)` for squares.
    pub fn scaled_speedup(&self, w: &Workload, points_per_proc: f64) -> f64 {
        self.seq_time(w) / self.scaled_cycle(w, points_per_proc)
    }
}

impl ArchModel for Banyan {
    fn name(&self) -> &'static str {
        "switching network"
    }

    fn tfp(&self) -> f64 {
        self.tfp
    }

    fn cycle_time(&self, w: &Workload, area: f64) -> f64 {
        assert!(area > 0.0, "area must be positive");
        if area >= w.points() {
            return self.seq_time(w);
        }
        w.e_flops * area * self.tfp + self.transfer_time(w, area)
    }

    fn closed_form_optimal_area(&self, w: &Workload) -> Option<f64> {
        let _ = w;
        // Fixed network: increasing in area ⇒ extremal. Growing network:
        // the log factor makes an interior point possible in principle, but
        // the paper's analyses never exercise it; the optimizer's numeric
        // search handles both.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parspeed_stencil::Stencil;

    fn wl(n: usize, shape: PartitionShape) -> Workload {
        Workload::new(n, &Stencil::five_point(), shape)
    }

    #[test]
    fn fixed_network_cycle_increasing_in_area() {
        // §7: "the cycle time is minimized when A is minimized".
        let m = MachineParams::paper_defaults();
        let net = Banyan::with_network(&m, 64);
        for shape in [PartitionShape::Strip, PartitionShape::Square] {
            let w = wl(256, shape);
            let mut prev = 0.0;
            for p in [64usize, 32, 16, 8, 4, 2] {
                let t = net.cycle_time(&w, w.points() / p as f64);
                assert!(t > prev, "{shape:?} P={p}");
                prev = t;
            }
        }
    }

    #[test]
    fn strip_cycle_matches_paper_formula() {
        // t_cycle = 4·n·k·w·log₂N + E·A·Tfp.
        let m = MachineParams::paper_defaults();
        let net = Banyan::with_network(&m, 256);
        let w = wl(128, PartitionShape::Strip);
        let a = 1024.0;
        let expect = 4.0 * 128.0 * 1.0 * m.switch.w * 8.0 + 6.0 * a * m.tfp;
        assert!((net.cycle_time(&w, a) - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn square_cycle_matches_paper_formula() {
        // t_cycle = 8·s·k·w·log₂N + E·s²·Tfp.
        let m = MachineParams::paper_defaults();
        let net = Banyan::with_network(&m, 1024);
        let w = wl(256, PartitionShape::Square);
        let s = 32.0;
        let expect = 8.0 * s * 1.0 * m.switch.w * 10.0 + 6.0 * s * s * m.tfp;
        assert!((net.cycle_time(&w, s * s) - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn scaled_speedup_is_n2_over_log_n() {
        // Doubling n should slightly less than quadruple the speedup; the
        // deficit is exactly the log ratio.
        let m = MachineParams::paper_defaults();
        let net = Banyan::new(&m);
        let f = 1.0;
        let s256 = net.scaled_speedup(&wl(256, PartitionShape::Square), f);
        let s512 = net.scaled_speedup(&wl(512, PartitionShape::Square), f);
        let ratio = s512 / s256;
        assert!(ratio > 3.0 && ratio < 4.0, "ratio {ratio}");
        // In the comm-dominated limit the ratio tends to 4·log(n²)/log(4n²).
        let w = 1e-1; // make switches slow so the log term dominates
        let mm = MachineParams { switch: SwitchParams { w }, ..m };
        let slow = Banyan::new(&mm);
        let a = slow.scaled_speedup(&wl(256, PartitionShape::Square), f);
        let b = slow.scaled_speedup(&wl(512, PartitionShape::Square), f);
        let expect = 4.0 * (256.0f64 * 256.0).log2() / (512.0f64 * 512.0).log2();
        assert!((b / a - expect).abs() / expect < 1e-3, "{} vs {expect}", b / a);
    }

    #[test]
    fn hypercube_beats_banyan_asymptotically_by_log_factor() {
        // Table I: hypercube Θ(n²) vs banyan Θ(n²/log n). At equal word
        // costs the ratio grows like log n.
        let m = MachineParams::paper_defaults();
        let net = Banyan::new(&m);
        let w1 = wl(1 << 8, PartitionShape::Square);
        let w2 = wl(1 << 12, PartitionShape::Square);
        let r1 = net.scaled_speedup(&w1, 1.0) / w1.points();
        let r2 = net.scaled_speedup(&w2, 1.0) / w2.points();
        // Speedup per point decays as the network deepens.
        assert!(r2 < r1);
    }

    #[test]
    fn read_latency_counts_two_traversals() {
        let m = MachineParams::paper_defaults();
        let net = Banyan::with_network(&m, 16);
        assert!((net.read_latency(16.0) - 2.0 * m.switch.w * 4.0).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "≥ 2 endpoints")]
    fn rejects_degenerate_network() {
        let _ = Banyan::with_network(&MachineParams::paper_defaults(), 1);
    }
}
