//! Nearest-neighbour grid (mesh) machines (§5): Illiac-IV / Finite Element
//! Machine class.
//!
//! The per-iteration cost structure is the hypercube's — strictly
//! nearest-neighbour messages, no contention between non-adjacent
//! partitions — so "the observations made for hypercubes apply equally
//! well" (§5). The differences the paper notes are captured here as flags:
//!
//! * mesh machines often carry a **global bus and combine hardware** for
//!   functions like convergence checking, making that overhead negligible
//!   (used by [`crate::convergence`]);
//! * strips embed in a linear array; squares need a 2-D mesh. Both are
//!   native here, unlike the hypercube where the embedding argument (Gray
//!   codes / subcubes) is doing the work.

use crate::hypercube::neighbour_exchange_time;
use crate::{ArchModel, HypercubeParams, MachineParams, Workload};

/// The mesh architecture model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mesh {
    tfp: f64,
    p: HypercubeParams,
    combine_hardware: bool,
}

impl Mesh {
    /// Builds the model from a machine description (combine hardware
    /// present, as on the FEM).
    pub fn new(m: &MachineParams) -> Self {
        Self { tfp: m.tfp, p: m.mesh, combine_hardware: true }
    }

    /// Builds the model with explicit constants.
    pub fn with(tfp: f64, p: HypercubeParams, combine_hardware: bool) -> Self {
        Self { tfp, p, combine_hardware }
    }

    /// Whether the machine has dedicated global-combine hardware
    /// (convergence flags cost nothing when it does).
    pub fn has_combine_hardware(&self) -> bool {
        self.combine_hardware
    }

    /// Message parameters in use.
    pub fn params(&self) -> HypercubeParams {
        self.p
    }

    /// Per-iteration neighbour-exchange time.
    pub fn transfer_time(&self, w: &Workload, area: f64) -> f64 {
        neighbour_exchange_time(&self.p, w, area)
    }

    /// Cycle time at fixed points-per-processor (machine grows with the
    /// problem): constant, like the hypercube's.
    pub fn scaled_cycle(&self, w: &Workload, points_per_proc: f64) -> f64 {
        w.e_flops * points_per_proc * self.tfp
            + neighbour_exchange_time(&self.p, w, points_per_proc)
    }
}

impl ArchModel for Mesh {
    fn name(&self) -> &'static str {
        "mesh"
    }

    fn tfp(&self) -> f64 {
        self.tfp
    }

    fn cycle_time(&self, w: &Workload, area: f64) -> f64 {
        assert!(area > 0.0, "area must be positive");
        if area >= w.points() {
            return self.seq_time(w);
        }
        w.e_flops * area * self.tfp + self.transfer_time(w, area)
    }

    fn closed_form_optimal_area(&self, w: &Workload) -> Option<f64> {
        let _ = w;
        None // monotone: extremal allocation, as for the hypercube
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Hypercube;
    use parspeed_stencil::{PartitionShape, Stencil};

    #[test]
    fn mesh_and_hypercube_share_cost_structure() {
        // With identical message constants the two models coincide — §5's
        // "the observations made for hypercubes apply equally well".
        let mut m = MachineParams::paper_defaults();
        m.mesh = m.hypercube;
        let mesh = Mesh::new(&m);
        let cube = Hypercube::new(&m);
        let w = Workload::new(128, &Stencil::nine_point_box(), PartitionShape::Square);
        for p in [1usize, 2, 4, 16, 64] {
            let area = w.points() / p as f64;
            assert_eq!(mesh.cycle_time(&w, area), cube.cycle_time(&w, area), "P={p}");
        }
    }

    #[test]
    fn cycle_decreasing_in_processors() {
        let mesh = Mesh::new(&MachineParams::paper_defaults());
        let w = Workload::new(512, &Stencil::five_point(), PartitionShape::Strip);
        let mut prev = f64::INFINITY;
        for p in [2usize, 4, 8, 16, 32] {
            let t = mesh.cycle_time(&w, w.points() / p as f64);
            assert!(t < prev);
            prev = t;
        }
    }

    #[test]
    fn combine_hardware_flag() {
        let m = MachineParams::paper_defaults();
        assert!(Mesh::new(&m).has_combine_hardware());
        let bare = Mesh::with(m.tfp, m.mesh, false);
        assert!(!bare.has_combine_hardware());
    }

    #[test]
    fn scaled_cycle_constant_in_n() {
        let mesh = Mesh::new(&MachineParams::paper_defaults());
        let w1 = Workload::new(128, &Stencil::five_point(), PartitionShape::Square);
        let w2 = Workload::new(2048, &Stencil::five_point(), PartitionShape::Square);
        assert_eq!(mesh.scaled_cycle(&w1, 100.0), mesh.scaled_cycle(&w2, 100.0));
    }
}
