//! Minimal problem size that gainfully uses all `N` processors (Fig. 7).
//!
//! Treating the paper's use-fewer-than-all conditions as equalities and
//! solving for `n`:
//!
//! ```text
//! sync bus,  strips : n_min = 4·k·b·N²     / (E·Tfp)      (from ineq. 4)
//! async bus, strips : n_min = 2·k·b·N²     / (E·Tfp)
//! sync bus,  squares: n_min = 4·k·b·N^{3/2} / (E·Tfp)      (from ineq. 6)
//! async bus, squares: identical to sync (same s̃)
//! ```
//!
//! Fig. 7 plots `log₂(n_min²)` against `N` for the three bus variants and
//! both stencils. Hypercube, mesh and fixed switching networks have no such
//! threshold: their cycle time decreases in the processor count for any
//! problem large enough to beat the one-processor extreme, so every grid
//! that parallelizes at all "gainfully uses" the full machine.

use crate::{ArchModel, AsyncBus, MachineParams, ProcessorBudget, SyncBus, Workload};
use parspeed_stencil::PartitionShape;

/// The bus variants of Fig. 7, in the paper's (a)/(b)/(c) order plus the
/// async-square companion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusVariant {
    /// Fig. 7(a): synchronous bus, strip partitions.
    SyncStrip,
    /// Fig. 7(b): asynchronous bus, strip partitions.
    AsyncStrip,
    /// Fig. 7(c): synchronous bus, square partitions.
    SyncSquare,
    /// Companion: asynchronous bus, square partitions (same threshold as
    /// synchronous — the optima coincide).
    AsyncSquare,
}

impl BusVariant {
    /// All variants, Fig. 7 order first.
    pub fn all() -> [BusVariant; 4] {
        [
            BusVariant::SyncStrip,
            BusVariant::AsyncStrip,
            BusVariant::SyncSquare,
            BusVariant::AsyncSquare,
        ]
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            BusVariant::SyncStrip => "synchronous, strip",
            BusVariant::AsyncStrip => "asynchronous, strip",
            BusVariant::SyncSquare => "synchronous, square",
            BusVariant::AsyncSquare => "asynchronous, square",
        }
    }

    /// The partition shape of the variant.
    pub fn shape(&self) -> PartitionShape {
        match self {
            BusVariant::SyncStrip | BusVariant::AsyncStrip => PartitionShape::Strip,
            BusVariant::SyncSquare | BusVariant::AsyncSquare => PartitionShape::Square,
        }
    }
}

/// Closed-form minimal grid side `n` (continuous) at which all `n_procs`
/// processors are gainfully used for the given stencil constants.
pub fn min_grid_side(m: &MachineParams, e: f64, k: f64, n_procs: usize, v: BusVariant) -> f64 {
    let np = n_procs as f64;
    let b = m.bus.b;
    match v {
        BusVariant::SyncStrip => 4.0 * k * b * np * np / (e * m.tfp),
        BusVariant::AsyncStrip => 2.0 * k * b * np * np / (e * m.tfp),
        BusVariant::SyncSquare | BusVariant::AsyncSquare => {
            4.0 * k * b * np.powf(1.5) / (e * m.tfp)
        }
    }
}

/// Fig. 7's ordinate: `log₂(n_min²)`.
pub fn min_problem_size_log2(
    m: &MachineParams,
    e: f64,
    k: f64,
    n_procs: usize,
    v: BusVariant,
) -> f64 {
    let n = min_grid_side(m, e, k, n_procs, v);
    (n * n).log2()
}

/// Numerically verified minimal grid side: the smallest integer `n` whose
/// optimizer output actually uses all `n_procs` processors. Cross-checks
/// the closed forms; `O(log)` probes of the optimizer.
pub fn min_grid_side_verified(
    m: &MachineParams,
    e: f64,
    k: usize,
    n_procs: usize,
    v: BusVariant,
) -> usize {
    let uses_all = |n: usize| -> bool {
        let w = Workload::with_constants(n, v.shape(), e, k);
        match v {
            BusVariant::SyncStrip | BusVariant::SyncSquare => {
                SyncBus::new(m).optimize(&w, ProcessorBudget::Limited(n_procs)).used_all
            }
            BusVariant::AsyncStrip | BusVariant::AsyncSquare => {
                AsyncBus::new(m).optimize(&w, ProcessorBudget::Limited(n_procs)).used_all
            }
        }
    };
    // Exponential bracket then binary search. Monotone: bigger grids only
    // make full utilization more attractive.
    let mut hi = n_procs.max(2);
    while !uses_all(hi) {
        hi *= 2;
        assert!(hi < 1 << 26, "no full-utilization grid found");
    }
    let mut lo = n_procs.max(2) / 2;
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if uses_all(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn async_strip_threshold_is_half_of_sync() {
        let m = MachineParams::paper_defaults();
        let s = min_grid_side(&m, 6.0, 1.0, 16, BusVariant::SyncStrip);
        let a = min_grid_side(&m, 6.0, 1.0, 16, BusVariant::AsyncStrip);
        assert!((s / a - 2.0).abs() < 1e-12);
    }

    #[test]
    fn squares_need_much_smaller_grids_than_strips() {
        // N^{3/2} vs N²: squares reach full utilization far earlier.
        let m = MachineParams::paper_defaults();
        for np in [8usize, 16, 24] {
            let strip = min_grid_side(&m, 6.0, 1.0, np, BusVariant::SyncStrip);
            let square = min_grid_side(&m, 6.0, 1.0, np, BusVariant::SyncSquare);
            assert!(square < strip, "N={np}");
        }
    }

    #[test]
    fn paper_anchor_256_grid_needs_14_processors() {
        // Inverting: at N = 14 the square threshold should be ≈256.
        let m = MachineParams::paper_defaults();
        let n = min_grid_side(&m, 6.0, 1.0, 14, BusVariant::SyncSquare);
        assert!((n - 256.0).abs() / 256.0 < 0.02, "n_min = {n}");
    }

    #[test]
    fn higher_order_stencils_lower_the_threshold() {
        // E(9pt) = 2·E(5pt): more compute per point ⇒ a smaller grid
        // already saturates the machine (Fig. 7's two panels).
        let m = MachineParams::paper_defaults();
        for v in BusVariant::all() {
            let n5 = min_grid_side(&m, 6.0, 1.0, 16, v);
            let n9 = min_grid_side(&m, 12.0, 1.0, 16, v);
            assert!((n5 / n9 - 2.0).abs() < 1e-12, "{}", v.label());
        }
    }

    #[test]
    fn verified_thresholds_track_closed_forms() {
        let m = MachineParams::paper_defaults();
        for (v, np) in [
            (BusVariant::SyncSquare, 8usize),
            (BusVariant::SyncSquare, 14),
            (BusVariant::AsyncSquare, 8),
        ] {
            let closed = min_grid_side(&m, 6.0, 1.0, np, v);
            let verified = min_grid_side_verified(&m, 6.0, 1, np, v) as f64;
            let rel = (verified - closed).abs() / closed;
            // Integer processor granularity near small N shifts the
            // threshold by up to one allocation step.
            assert!(rel < 0.15, "{} N={np}: closed {closed} verified {verified}", v.label());
        }
    }

    #[test]
    fn log2_ordinate_matches_side() {
        let m = MachineParams::paper_defaults();
        let n = min_grid_side(&m, 6.0, 1.0, 16, BusVariant::SyncStrip);
        let l = min_problem_size_log2(&m, 6.0, 1.0, 16, BusVariant::SyncStrip);
        assert!((l - (n * n).log2()).abs() < 1e-12);
    }

    #[test]
    fn fig7_curves_are_increasing_in_n() {
        let m = MachineParams::paper_defaults();
        for v in BusVariant::all() {
            let mut prev = 0.0;
            for np in (4..=24).step_by(4) {
                let l = min_problem_size_log2(&m, 6.0, 1.0, np, v);
                assert!(l > prev, "{} N={np}", v.label());
                prev = l;
            }
        }
    }
}
