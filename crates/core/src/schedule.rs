//! Scheduled bus access — the paper's §8 future work, carried out.
//!
//! The closing section conjectures that "clever scheduling to access
//! communication resources" could blunt the contention that caps bus
//! speedup at `Θ((n²)^{1/3})`. This module builds that scheduler as an
//! analytic model and proves the conjecture *exactly right*, with a sharp
//! characterization of how clever the schedule has to be:
//!
//! * **Word-granularity round-robin (TDMA) does not help.** Slicing the bus
//!   one word per processor per turn gives each of `P` requesters `1/P` of
//!   the bandwidth — which is precisely the processor-sharing behaviour the
//!   paper's `c + b·P` contention term already models. The "scheduled" bus
//!   is the unscheduled bus. See [`word_round_robin_cycle`].
//!
//! * **Batch-granularity staggering does.** Grant the bus to one partition
//!   at a time for its *whole* boundary batch, in a fixed slot order. Reads
//!   then complete staggered — partition `i` at `(i+1)·V·b` instead of all
//!   at `P·V·b` — so computation overlaps later partitions' reads, and
//!   writes drain in the same stagger. For uniform batches the cycle time
//!   is exactly
//!
//!   ```text
//!   t_cycle = max( 2·P·V·b,  (P+1)·V·b + V·c + t_comp ) + V·c
//!   ```
//!
//!   (bus-saturated and compute-bound regimes; `V` one-way words per
//!   partition). Optimizing the partition area under this law reproduces,
//!   with `c = 0`, *exactly* the asynchronous-bus optimal cycle times of
//!   §6.2 — `2·√(2n³bk·E·Tfp)` for strips, `2·(E·Tfp)^{1/3}·(4n²bk)^{2/3}`
//!   for squares — a `√2` / `1.5×` speedup over the synchronous bus.
//!   Scheduling recovers the posted-write hardware's entire benefit: the
//!   overlap that §6.2 buys with an asynchronous memory controller can be
//!   had from a synchronous bus and a slot table. The asymptotic exponents,
//!   however, do not move: `Θ((n²)^{1/4})` strips, `Θ((n²)^{1/3})` squares.
//!   Contention is conserved; only the *idle waiting* is schedulable away.
//!
//! The event-level counterpart (non-uniform batches, edge partitions,
//! explicit slot tables) is `parspeed_arch::ScheduledBusSim`, validated
//! against this model in experiment E15.

use crate::convex::golden_min;
use crate::{ArchModel, BusParams, MachineParams, Workload};

/// Synchronous shared bus driven by a batch-granularity slot schedule
/// (stagger scheduling): partitions access the bus one whole boundary
/// batch at a time, in a fixed order, both for the read phase and the
/// write drain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledBus {
    tfp: f64,
    bus: BusParams,
}

impl ScheduledBus {
    /// Builds the model from a machine description.
    pub fn new(m: &MachineParams) -> Self {
        Self { tfp: m.tfp, bus: m.bus }
    }

    /// Builds the model from explicit constants.
    pub fn with(tfp: f64, bus: BusParams) -> Self {
        assert!(tfp > 0.0 && bus.b > 0.0 && bus.c >= 0.0);
        Self { tfp, bus }
    }

    /// The bus constants in use.
    pub fn bus(&self) -> BusParams {
        self.bus
    }

    /// Cycle time in the bus-saturated regime: the bus is busy end to end,
    /// so the iteration lasts exactly the total offered work, `2·P·V·b`,
    /// plus the last writer's local per-word overhead.
    pub fn bus_bound_cycle(&self, w: &Workload, area: f64) -> f64 {
        let p = w.points() / area;
        let v = w.one_way_words(area);
        2.0 * p * v * self.bus.b + v * self.bus.c
    }

    /// Cycle time in the compute-bound regime: the last slot's partition
    /// finishes reading at `P·V·b`, computes, and writes into an idle bus.
    pub fn compute_bound_cycle(&self, w: &Workload, area: f64) -> f64 {
        let p = w.points() / area;
        let v = w.one_way_words(area);
        (p + 1.0) * v * self.bus.b + 2.0 * v * self.bus.c + w.e_flops * area * self.tfp
    }
}

impl ArchModel for ScheduledBus {
    fn name(&self) -> &'static str {
        "scheduled bus"
    }

    fn tfp(&self) -> f64 {
        self.tfp
    }

    /// Exact cycle time of the stagger schedule with uniform batches.
    ///
    /// Derivation: reads occupy the bus back to back, partition `i`
    /// finishing at `(i+1)·V·b` (+`V·c` locally); it computes for `t_comp`
    /// and requests its write, which the FIFO bus serves after the
    /// remaining reads and earlier writes. Unrolling the FIFO recursion,
    /// `r_j + (P−j)·V·b` is independent of `j`, which collapses the last
    /// completion to the two-regime `max` below.
    fn cycle_time(&self, w: &Workload, area: f64) -> f64 {
        assert!(area > 0.0, "area must be positive");
        if area >= w.points() {
            return self.seq_time(w); // one processor: no communication
        }
        self.bus_bound_cycle(w, area).max(self.compute_bound_cycle(w, area))
    }

    /// The max of a decreasing (bus-bound) and a convex (compute-bound)
    /// branch is unimodal but has no single closed form; the optimum is
    /// either the compute branch's own minimum (when the bus branch has
    /// already dropped below it) or the branch crossover. Both are found
    /// numerically to machine precision.
    fn closed_form_optimal_area(&self, w: &Workload) -> Option<f64> {
        let hi = w.points();
        let lo = hi / w.max_processors() as f64;
        // Minimum of the convex compute-bound branch.
        let (a_m, comp_at_am) = golden_min(lo, hi, |a| self.compute_bound_cycle(w, a));
        if self.bus_bound_cycle(w, a_m) <= comp_at_am {
            return Some(a_m);
        }
        // Crossover: bus_bound − compute_bound is strictly decreasing in
        // area (P·V·b falls, t_comp grows), so bisection is safe.
        let g = |a: f64| self.bus_bound_cycle(w, a) - self.compute_bound_cycle(w, a);
        let (mut lo_a, mut hi_a) = (a_m, hi);
        if g(lo_a) <= 0.0 {
            return Some(lo_a);
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo_a + hi_a);
            if g(mid) > 0.0 {
                lo_a = mid;
            } else {
                hi_a = mid;
            }
            if hi_a - lo_a <= 1e-12 * hi_a {
                break;
            }
        }
        Some(0.5 * (lo_a + hi_a))
    }
}

/// Per-iteration cycle time of a *word-granularity* round-robin schedule —
/// the negative control for the §8 conjecture.
///
/// One word per processor per turn means `P` concurrent requesters each
/// progress at `1/P` of the bus bandwidth: every read completes at
/// `V·(c + b·P)`, every write likewise, and the cycle time is identical to
/// the unscheduled synchronous bus of §6.1. Provided (and tested) to make
/// explicit that *granularity* is what separates a useful schedule from a
/// relabelled queue.
pub fn word_round_robin_cycle(m: &MachineParams, w: &Workload, area: f64) -> f64 {
    crate::SyncBus::new(m).cycle_time(w, area)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convex::is_unimodal_sampled;
    use crate::{AsyncBus, ProcessorBudget, SyncBus};
    use parspeed_stencil::{PartitionShape, Stencil};

    fn machine() -> MachineParams {
        MachineParams::paper_defaults() // c = 0
    }

    fn wl(n: usize, shape: PartitionShape) -> Workload {
        Workload::new(n, &Stencil::five_point(), shape)
    }

    #[test]
    fn single_processor_pays_sequential_time() {
        let sched = ScheduledBus::new(&machine());
        let w = wl(64, PartitionShape::Square);
        let t = sched.cycle_time(&w, w.points());
        assert!((t - sched.seq_time(&w)).abs() / t < 1e-12);
    }

    #[test]
    fn cycle_time_is_unimodal_in_area() {
        let sched = ScheduledBus::new(&machine());
        for shape in [PartitionShape::Strip, PartitionShape::Square] {
            let w = wl(256, shape);
            assert!(
                is_unimodal_sampled(16.0, 256.0 * 256.0 - 1.0, 4000, 1e-12, |a| sched
                    .cycle_time(&w, a)),
                "{shape:?}"
            );
        }
    }

    #[test]
    fn staggering_never_loses_to_the_unscheduled_bus() {
        // The stagger schedule can only remove waiting: at every area its
        // cycle time is at most the synchronous bus's.
        let m = machine().with_bus_overhead(0.4e-6);
        let sched = ScheduledBus::new(&m);
        let sync = SyncBus::new(&m);
        for shape in [PartitionShape::Strip, PartitionShape::Square] {
            let w = wl(128, shape);
            for p in [2usize, 4, 16, 64, 128] {
                let a = w.points() / p as f64;
                assert!(
                    sched.cycle_time(&w, a) <= sync.cycle_time(&w, a) * (1.0 + 1e-12),
                    "{shape:?} P={p}"
                );
            }
        }
    }

    #[test]
    fn word_granularity_round_robin_is_the_unscheduled_bus() {
        // The negative control: TDMA at word granularity == §6.1 exactly.
        let m = machine().with_bus_overhead(0.7e-6);
        let sync = SyncBus::new(&m);
        for shape in [PartitionShape::Strip, PartitionShape::Square] {
            let w = wl(128, shape);
            for p in [2usize, 8, 32] {
                let a = w.points() / p as f64;
                assert_eq!(word_round_robin_cycle(&m, &w, a), sync.cycle_time(&w, a));
            }
        }
    }

    #[test]
    fn optimal_strip_cycle_matches_async_bus_asymptotically() {
        // c = 0: the stagger optimum approaches 2·√(2n³bk·E·Tfp) — the
        // §6.2 asynchronous-bus optimum — from below (the model's exact
        // optimum is 2√(2n³bk·E·Tfp)·(1 + O(1/n))).
        let m = machine();
        let sched = ScheduledBus::new(&m);
        let asy = AsyncBus::new(&m);
        for n in [256usize, 1024, 4096] {
            let w = wl(n, PartitionShape::Strip);
            let a = sched.closed_form_optimal_area(&w).unwrap();
            let t_sched = sched.cycle_time(&w, a);
            let a_async = asy.optimal_area(&w);
            let t_async = asy.cycle_time(&w, a_async);
            let rel = (t_sched - t_async).abs() / t_async;
            let budget = 3.0 / (n as f64).sqrt(); // O(1/√A*) = O(n^{-3/4}) terms
            assert!(rel < budget, "n={n}: sched {t_sched} vs async {t_async} ({rel})");
        }
    }

    #[test]
    fn optimal_square_cycle_matches_async_bus_asymptotically() {
        let m = machine();
        let sched = ScheduledBus::new(&m);
        let asy = AsyncBus::new(&m);
        for n in [256usize, 1024, 4096] {
            let w = wl(n, PartitionShape::Square);
            let a = sched.closed_form_optimal_area(&w).unwrap();
            let t_sched = sched.cycle_time(&w, a);
            let t_async = asy.cycle_time(&w, asy.optimal_area(&w));
            let rel = (t_sched - t_async).abs() / t_async;
            assert!(rel < 0.1, "n={n}: sched {t_sched} vs async {t_async} ({rel})");
        }
    }

    #[test]
    fn recovers_root_two_speedup_over_sync_strips() {
        // The §8 headline: scheduling buys the asynchronous bus's √2
        // (strips) without posted-write hardware.
        let m = machine();
        let sched = ScheduledBus::new(&m);
        let sync = SyncBus::new(&m);
        let w = wl(4096, PartitionShape::Strip);
        let t_sched = sched.cycle_time(&w, sched.closed_form_optimal_area(&w).unwrap());
        let t_sync = sync.optimal_cycle_unbounded(&w);
        let gain = t_sync / t_sched;
        assert!((gain - 2.0f64.sqrt()).abs() < 0.05, "gain {gain}");
    }

    #[test]
    fn recovers_threehalves_speedup_over_sync_squares() {
        let m = machine();
        let sched = ScheduledBus::new(&m);
        let sync = SyncBus::new(&m);
        let w = wl(4096, PartitionShape::Square);
        let t_sched = sched.cycle_time(&w, sched.closed_form_optimal_area(&w).unwrap());
        let t_sync = sync.optimal_cycle_unbounded(&w);
        let gain = t_sync / t_sched;
        assert!((gain - 1.5).abs() < 0.05, "gain {gain}");
    }

    #[test]
    fn asymptotic_exponents_do_not_improve() {
        // Scheduling shifts constants, not exponents: quadrupling n² still
        // multiplies optimal speedup by √2 (strips) / ∛4 (squares).
        let m = machine();
        let sched = ScheduledBus::new(&m);
        let opt_speedup = |n: usize, shape| {
            let w = wl(n, shape);
            let a = sched.closed_form_optimal_area(&w).unwrap();
            sched.speedup_at(&w, a)
        };
        let s1 = opt_speedup(2048, PartitionShape::Strip);
        let s2 = opt_speedup(4096, PartitionShape::Strip);
        assert!((s2 / s1 - 2.0f64.sqrt()).abs() < 0.02, "strip ratio {}", s2 / s1);
        let q1 = opt_speedup(2048, PartitionShape::Square);
        let q2 = opt_speedup(4096, PartitionShape::Square);
        assert!((q2 / q1 - 4.0f64.powf(1.0 / 3.0)).abs() < 0.02, "square ratio {}", q2 / q1);
    }

    #[test]
    fn optimizer_integration_respects_budget() {
        let m = machine();
        let sched = ScheduledBus::new(&m);
        let w = wl(256, PartitionShape::Square);
        for cap in [4usize, 16, 64] {
            let opt = sched.optimize(&w, ProcessorBudget::Limited(cap));
            assert!(opt.processors >= 1 && opt.processors <= cap);
            assert!(opt.speedup <= opt.processors as f64 + 1e-9);
        }
    }

    #[test]
    fn scheduled_bus_wants_more_processors_than_sync() {
        // Cheaper effective communication ⇒ smaller optimal area ⇒ more
        // processors at the unconstrained optimum.
        let m = machine();
        let sched = ScheduledBus::new(&m);
        let sync = SyncBus::new(&m);
        let w = wl(1024, PartitionShape::Square);
        let p_sched = w.points() / sched.closed_form_optimal_area(&w).unwrap();
        let p_sync = w.points() / sync.closed_form_optimal_area(&w).unwrap();
        assert!(p_sched > p_sync, "sched {p_sched} vs sync {p_sync}");
    }

    #[test]
    fn overhead_c_still_charges_the_endpoints() {
        let base = ScheduledBus::new(&machine());
        let heavy = ScheduledBus::new(&machine().with_bus_overhead(1.0e-5));
        let w = wl(128, PartitionShape::Strip);
        let a = w.points() / 8.0;
        assert!(heavy.cycle_time(&w, a) > base.cycle_time(&w, a));
    }

    #[test]
    #[should_panic(expected = "area must be positive")]
    fn rejects_nonpositive_area() {
        let sched = ScheduledBus::new(&machine());
        let w = wl(32, PartitionShape::Strip);
        let _ = sched.cycle_time(&w, 0.0);
    }
}
