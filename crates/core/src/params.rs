//! Hardware parameter sets for the four architecture classes.
//!
//! The paper never tabulates its Fig-7/Fig-8 constants legibly (the scan is
//! damaged), so the defaults here are *calibrated* to the two quantitative
//! anchors the text does state (§6.1): on a 256×256 grid with square
//! partitions and `c = 0`, the synchronous bus should optimally use 14
//! processors with the 5-point stencil and 22 with the 9-point box. With
//! `E(5pt) = 6` and `E(9pt) = 12` this pins `Tfp/b = 0.13642` (see
//! `DESIGN.md` §3). Absolute magnitudes are chosen to be 1987-plausible
//! (µs-scale bus word cycles, ms-scale message startup) but only *ratios*
//! enter any claim the reproduction checks.

/// Shared-bus machine constants (FLEX/32-class, §6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusParams {
    /// Bus cycle time per word, seconds (`b` in the paper).
    pub b: f64,
    /// Fixed per-word overhead — address calculation plus bus-access
    /// overhead, seconds (`c` in the paper). Measured `c/b ≈ 1000` on the
    /// FLEX/32; the paper's figures use the `c = 0` idealization.
    pub c: f64,
}

impl BusParams {
    /// The `c = 0` idealization used for the paper's closed-form optima.
    pub fn ideal(b: f64) -> Self {
        Self { b, c: 0.0 }
    }

    /// FLEX/32-like regime: `c = 1000·b` (§6.1 measurement).
    pub fn flex32(b: f64) -> Self {
        Self { b, c: 1000.0 * b }
    }
}

/// Message-passing machine constants (Intel-iPSC-class hypercube or a
/// nearest-neighbour mesh, §§4–5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HypercubeParams {
    /// Per-packet transmission cost, seconds (`α`).
    pub alpha: f64,
    /// Per-message startup cost, seconds (`β`).
    pub beta: f64,
    /// Packet capacity in words (grid-point values).
    pub packet_words: usize,
}

/// Banyan switching-network constants (RP3/Butterfly-class, §7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchParams {
    /// Per-stage switch traversal time, seconds (`w`).
    pub w: f64,
}

/// A full machine description: per-flop time plus the communication
/// constants of each architecture class, so one parameter set drives every
/// model side by side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineParams {
    /// Seconds per floating-point operation (`Tfp`).
    pub tfp: f64,
    /// Shared-bus constants.
    pub bus: BusParams,
    /// Hypercube message constants.
    pub hypercube: HypercubeParams,
    /// Mesh message constants (nearest-neighbour; same form as hypercube).
    pub mesh: HypercubeParams,
    /// Switching-network constants.
    pub switch: SwitchParams,
}

impl MachineParams {
    /// The calibrated defaults used by every reproduction experiment
    /// (see module docs; ratios are what matter).
    pub fn paper_defaults() -> Self {
        let b = 1.0e-6;
        Self {
            tfp: 0.13642 * b,
            bus: BusParams::ideal(b),
            hypercube: HypercubeParams { alpha: 5.0e-5, beta: 1.0e-3, packet_words: 128 },
            mesh: HypercubeParams { alpha: 5.0e-5, beta: 5.0e-4, packet_words: 128 },
            switch: SwitchParams { w: 0.5e-6 },
        }
    }

    /// Defaults with the FLEX/32 overhead regime (`c = 1000·b`) instead of
    /// the `c = 0` idealization.
    pub fn flex32_defaults() -> Self {
        let mut m = Self::paper_defaults();
        m.bus = BusParams::flex32(m.bus.b);
        m
    }

    /// Returns a copy with the bus cycle time scaled by `factor`
    /// (leverage experiments, §6.1).
    pub fn with_bus_speedup(mut self, factor: f64) -> Self {
        assert!(factor > 0.0);
        self.bus.b /= factor;
        self
    }

    /// Returns a copy with the floating-point speed scaled by `factor`.
    pub fn with_flop_speedup(mut self, factor: f64) -> Self {
        assert!(factor > 0.0);
        self.tfp /= factor;
        self
    }

    /// Returns a copy with the per-word bus overhead `c` set explicitly.
    pub fn with_bus_overhead(mut self, c: f64) -> Self {
        assert!(c >= 0.0);
        self.bus.c = c;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_anchor_five_point() {
        // N_max = (E·Tfp·n / (4·k·b))^(2/3) must be ≈14 for the 5-point
        // stencil at n = 256 (paper §6.1).
        let m = MachineParams::paper_defaults();
        let nmax = (6.0 * m.tfp * 256.0 / (4.0 * m.bus.b)).powf(2.0 / 3.0);
        assert!((nmax - 14.0).abs() < 0.5, "got {nmax}");
    }

    #[test]
    fn calibration_anchor_nine_point() {
        let m = MachineParams::paper_defaults();
        let nmax = (12.0 * m.tfp * 256.0 / (4.0 * m.bus.b)).powf(2.0 / 3.0);
        assert!((nmax - 22.0).abs() < 0.5, "got {nmax}");
    }

    #[test]
    fn flex32_regime_has_huge_overhead_ratio() {
        let m = MachineParams::flex32_defaults();
        assert!((m.bus.c / m.bus.b - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn speed_scaling_helpers() {
        let m = MachineParams::paper_defaults();
        let fast_bus = m.with_bus_speedup(2.0);
        assert!((fast_bus.bus.b - m.bus.b / 2.0).abs() < 1e-18);
        let fast_fp = m.with_flop_speedup(4.0);
        assert!((fast_fp.tfp - m.tfp / 4.0).abs() < 1e-18);
        let with_c = m.with_bus_overhead(3.0e-6);
        assert_eq!(with_c.bus.c, 3.0e-6);
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_speedup_factor() {
        let _ = MachineParams::paper_defaults().with_bus_speedup(0.0);
    }
}
