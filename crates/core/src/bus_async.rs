//! Asynchronous shared-bus model (§6.2).
//!
//! The bus accepts posted writes: a processor reads its boundary points
//! synchronously (half of the synchronous `t_ta`), then computes — boundary
//! points first, each written to global memory as soon as it is updated. If
//! the bus cannot drain the offered write load before computation ends, the
//! iteration waits for the backlog:
//!
//! ```text
//! t_cycle = t_read + max(E·A·Tfp, b·B_total)
//! ```
//!
//! with `B_total` the write load summed over processors. The optimum sits
//! where compute exactly hides the backlog. Against the synchronous bus the
//! optimal speedup improves ×√2 for strips and ×1.5 for squares; letting
//! reads overlap as well ([`OverlapMode::ReadsAndWrites`]) buys a further
//! ×1.26 for squares and ×√2 for strips (§6.2's "additional" improvement —
//! see `DESIGN.md` on the scan's garbled "126%").

use crate::{ArchModel, BusParams, MachineParams, Workload};
use parspeed_stencil::PartitionShape;

/// Which phases overlap computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverlapMode {
    /// The paper's main §6.2 machine: synchronous reads, posted writes.
    #[default]
    WritesOnly,
    /// The paper's relaxation: half the points update during the read
    /// phase, half during the write phase (analysed at `c = 0`).
    ReadsAndWrites,
}

/// The asynchronous-bus architecture model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsyncBus {
    tfp: f64,
    bus: BusParams,
    mode: OverlapMode,
}

impl AsyncBus {
    /// Builds the model (writes-only overlap, the paper's default).
    pub fn new(m: &MachineParams) -> Self {
        Self { tfp: m.tfp, bus: m.bus, mode: OverlapMode::WritesOnly }
    }

    /// Builds the model with a chosen overlap mode.
    pub fn with_mode(m: &MachineParams, mode: OverlapMode) -> Self {
        Self { tfp: m.tfp, bus: m.bus, mode }
    }

    /// The overlap mode in use.
    pub fn mode(&self) -> OverlapMode {
        self.mode
    }

    /// Synchronous read phase: half the synchronous-bus transfer time.
    pub fn read_time(&self, w: &Workload, area: f64) -> f64 {
        let p = w.points() / area;
        w.one_way_words(area) * (self.bus.c + self.bus.b * p)
    }

    /// Bus time to drain the write load offered by all processors.
    pub fn write_backlog(&self, w: &Workload, area: f64) -> f64 {
        let p = w.points() / area;
        self.bus.b * w.one_way_words(area) * p
    }

    /// Continuous optimal area: where compute exactly covers the backlog.
    ///
    /// Strips: `A* = √(2n³bk/(E·Tfp))` — a factor √2 below the synchronous
    /// optimum (eq. 3). Squares: `s̃ = (4kbn²/(E·Tfp))^{1/3}`, identical to
    /// the synchronous value. Exact for `c = 0`; for `c > 0` the strip
    /// value remains exact (both read terms fall with `A` at the matched
    /// rate) and the square value is the paper's stated optimum.
    pub fn optimal_area(&self, w: &Workload) -> f64 {
        let n = w.n as f64;
        let k = w.k as f64;
        let (e, b) = (w.e_flops, self.bus.b);
        match (w.shape, self.mode) {
            (PartitionShape::Strip, OverlapMode::WritesOnly) => {
                (2.0 * n.powi(3) * b * k / (e * self.tfp)).sqrt()
            }
            (PartitionShape::Strip, OverlapMode::ReadsAndWrites) => {
                // E·A·Tfp/2 = 2n³bk/A ⇒ A = √(4n³bk/(E·Tfp)).
                (4.0 * n.powi(3) * b * k / (e * self.tfp)).sqrt()
            }
            (PartitionShape::Square, OverlapMode::WritesOnly) => {
                let s = (4.0 * k * b * n * n / (e * self.tfp)).powf(1.0 / 3.0);
                s * s
            }
            (PartitionShape::Square, OverlapMode::ReadsAndWrites) => {
                // E·s²·Tfp/2 = 4kbn²/s ⇒ s³ = 8kbn²/(E·Tfp).
                let s = (8.0 * k * b * n * n / (e * self.tfp)).powf(1.0 / 3.0);
                s * s
            }
        }
    }

    /// Optimal cycle time with processors unconstrained. When the interior
    /// optimum is worse than one processor (the paper's case (3)), the
    /// sequential time wins.
    pub fn optimal_cycle_unbounded(&self, w: &Workload) -> f64 {
        self.cycle_time(w, self.optimal_area(w).min(w.points())).min(self.seq_time(w))
    }

    /// Optimal speedup with processors unconstrained.
    pub fn optimal_speedup_unbounded(&self, w: &Workload) -> f64 {
        self.seq_time(w) / self.optimal_cycle_unbounded(w)
    }

    /// §6.2's use-fewer-than-all condition for strips:
    /// `N²·b/Tfp > E·n/(2k)`.
    pub fn uses_fewer_than(&self, w: &Workload, n_procs: usize) -> bool {
        self.optimal_area(w) > w.points() / n_procs as f64
    }
}

impl ArchModel for AsyncBus {
    fn name(&self) -> &'static str {
        match self.mode {
            OverlapMode::WritesOnly => "asynchronous bus",
            OverlapMode::ReadsAndWrites => "asynchronous bus (full overlap)",
        }
    }

    fn tfp(&self) -> f64 {
        self.tfp
    }

    fn cycle_time(&self, w: &Workload, area: f64) -> f64 {
        assert!(area > 0.0, "area must be positive");
        if area >= w.points() {
            return self.seq_time(w);
        }
        let compute = w.e_flops * area * self.tfp;
        match self.mode {
            OverlapMode::WritesOnly => {
                self.read_time(w, area) + compute.max(self.write_backlog(w, area))
            }
            OverlapMode::ReadsAndWrites => {
                // Half the points update while reads stream, half while
                // writes drain; each phase is bus-limited or compute-limited.
                let half = 0.5 * compute;
                let traffic = self.write_backlog(w, area);
                half.max(traffic) + half.max(traffic)
            }
        }
    }

    fn closed_form_optimal_area(&self, w: &Workload) -> Option<f64> {
        // Exact at c = 0 (and for strips at any c); defer to numeric search
        // otherwise.
        if self.bus.c == 0.0 || w.shape == PartitionShape::Strip {
            Some(self.optimal_area(w))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convex::is_unimodal_sampled;
    use crate::SyncBus;
    use parspeed_stencil::Stencil;

    fn models() -> (SyncBus, AsyncBus) {
        let m = MachineParams::paper_defaults();
        (SyncBus::new(&m), AsyncBus::new(&m))
    }

    fn wl(n: usize, shape: PartitionShape) -> Workload {
        Workload::new(n, &Stencil::five_point(), shape)
    }

    #[test]
    fn strip_optimum_is_sync_over_sqrt2() {
        let (sync, async_) = models();
        let w = wl(256, PartitionShape::Strip);
        let ratio = sync.optimal_strip_area(&w) / async_.optimal_area(&w);
        assert!((ratio - 2.0f64.sqrt()).abs() < 1e-12, "ratio {ratio}");
    }

    #[test]
    fn square_optimum_equals_sync() {
        let (sync, async_) = models();
        let w = wl(256, PartitionShape::Square);
        let s_sync = sync.optimal_square_side(&w);
        let a_async = async_.optimal_area(&w);
        assert!((s_sync * s_sync - a_async).abs() / a_async < 1e-12);
    }

    #[test]
    fn speedup_factor_sqrt2_for_strips() {
        let (sync, async_) = models();
        let w = wl(512, PartitionShape::Strip);
        let f = async_.optimal_speedup_unbounded(&w) / sync.optimal_speedup_unbounded(&w);
        assert!((f - 2.0f64.sqrt()).abs() < 1e-9, "factor {f}");
    }

    #[test]
    fn speedup_factor_1_5_for_squares() {
        let (sync, async_) = models();
        let w = wl(512, PartitionShape::Square);
        let f = async_.optimal_speedup_unbounded(&w) / sync.optimal_speedup_unbounded(&w);
        assert!((f - 1.5).abs() < 1e-9, "factor {f}");
    }

    #[test]
    fn full_overlap_buys_1_26_for_squares() {
        // 2 / 2^(2/3) ≈ 1.2599 — the §6.2 "additional improvement".
        let m = MachineParams::paper_defaults();
        let writes = AsyncBus::new(&m);
        let full = AsyncBus::with_mode(&m, OverlapMode::ReadsAndWrites);
        let w = wl(512, PartitionShape::Square);
        let f = full.optimal_speedup_unbounded(&w) / writes.optimal_speedup_unbounded(&w);
        assert!((f - 2.0 / 2.0f64.powf(2.0 / 3.0)).abs() < 1e-9, "factor {f}");
    }

    #[test]
    fn full_overlap_buys_sqrt2_for_strips() {
        let m = MachineParams::paper_defaults();
        let writes = AsyncBus::new(&m);
        let full = AsyncBus::with_mode(&m, OverlapMode::ReadsAndWrites);
        let w = wl(512, PartitionShape::Strip);
        let f = full.optimal_speedup_unbounded(&w) / writes.optimal_speedup_unbounded(&w);
        assert!((f - 2.0f64.sqrt()).abs() < 1e-9, "factor {f}");
    }

    #[test]
    fn async_never_slower_than_sync() {
        let (sync, async_) = models();
        for shape in [PartitionShape::Strip, PartitionShape::Square] {
            let w = wl(256, shape);
            for p in [2usize, 4, 8, 16, 64, 256] {
                let area = w.points() / p as f64;
                assert!(
                    async_.cycle_time(&w, area) <= sync.cycle_time(&w, area) + 1e-18,
                    "{shape:?} P={p}"
                );
            }
        }
    }

    #[test]
    fn cycle_time_is_unimodal() {
        let (_, async_) = models();
        for shape in [PartitionShape::Strip, PartitionShape::Square] {
            let w = wl(128, shape);
            assert!(
                is_unimodal_sampled(4.0, 128.0 * 128.0 - 1.0, 3000, 1e-12, |a| async_
                    .cycle_time(&w, a)),
                "{shape:?}"
            );
        }
    }

    #[test]
    fn optimum_balances_compute_and_backlog() {
        let (_, async_) = models();
        for shape in [PartitionShape::Strip, PartitionShape::Square] {
            let w = wl(256, shape);
            let a = async_.optimal_area(&w);
            let compute = w.e_flops * a * async_.tfp();
            let backlog = async_.write_backlog(&w, a);
            assert!((compute - backlog).abs() / compute < 1e-9, "{shape:?}");
        }
    }

    #[test]
    fn scaling_exponents_unchanged_by_asynchrony() {
        // §6.2: "optimal asynchronous bus performance is a constant factor
        // better" — Θ((n²)^{1/4}) strips, Θ((n²)^{1/3}) squares still.
        let (_, async_) = models();
        let s1 = async_.optimal_speedup_unbounded(&wl(256, PartitionShape::Strip));
        let s2 = async_.optimal_speedup_unbounded(&wl(1024, PartitionShape::Strip));
        assert!((s2 / s1 - 2.0).abs() < 1e-6, "strips quadrupling n² twice: {}", s2 / s1);
        let q1 = async_.optimal_speedup_unbounded(&wl(256, PartitionShape::Square));
        let q2 = async_.optimal_speedup_unbounded(&wl(2048, PartitionShape::Square));
        // n² × 64 ⇒ speedup × 4 for the cube-root law.
        assert!((q2 / q1 - 4.0).abs() < 1e-6, "squares: {}", q2 / q1);
    }

    #[test]
    fn strip_condition_halves_the_threshold() {
        // Async strips: fewer than N processors iff N²b/Tfp > E·n/(2k) —
        // half the synchronous right-hand side, so the async machine keeps
        // all processors busy on smaller grids.
        let m = MachineParams::paper_defaults();
        let (sync, async_) = (SyncBus::new(&m), AsyncBus::new(&m));
        // Pick n where sync leaves processors idle but async does not.
        let nprocs = 32;
        let mut seen_split = false;
        for n in (64..4096).step_by(64) {
            let w = wl(n, PartitionShape::Strip);
            if sync.uses_fewer_than(&w, nprocs) && !async_.uses_fewer_than(&w, nprocs) {
                seen_split = true;
                break;
            }
        }
        assert!(seen_split, "expected a grid-size window where only sync idles processors");
    }
}
