//! Per-processor memory constraints on the allocation (§3, §4).
//!
//! The paper optimizes partition area "subject to memory constraints and
//! processor availability constraints" (§3) and notes that when "memory
//! limitations prohibit" placing the whole domain on one processor, "the
//! computation should be spread maximally" (§4). This module makes the
//! memory side of that feasibility region explicit.
//!
//! A partition of area `A` needs, in words:
//!
//! ```text
//! words(A) = 2·(A + halo(A)) + A
//! ```
//!
//! — two solution buffers (current and next iterate, each with its halo
//! ring, exactly what the real executor `parspeed_exec::PartitionedJacobi`
//! allocates) plus the forcing term. `halo(A)` is the one-way boundary
//! volume of the workload's shape (`2nk` strips, `4√A·k` squares).
//!
//! [`MemoryBudget::min_processors`] inverts that to the smallest processor
//! count whose largest partition fits, and
//! [`crate::ArchModel::optimize_constrained`] intersects it with the
//! processor cap. An empty intersection is the [`Infeasible`] error — the
//! problem simply does not fit the machine, which no allocation policy can
//! fix.

use crate::optimize::assigned_area;
use crate::Workload;

/// Per-processor memory capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryBudget {
    /// Capacity of one processor's local memory, in words (one word per
    /// grid-point value).
    pub words_per_processor: f64,
}

/// The problem does not fit the machine: even the finest admissible
/// decomposition overflows some processor's memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Infeasible {
    /// Words needed by the largest partition at the finest decomposition.
    pub needed: f64,
    /// Per-processor capacity.
    pub capacity: f64,
}

impl std::fmt::Display for Infeasible {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "problem does not fit: finest partition needs {:.0} words, memory holds {:.0}",
            self.needed, self.capacity
        )
    }
}

impl std::error::Error for Infeasible {}

impl MemoryBudget {
    /// A budget of `words` words per processor.
    pub fn words(words: f64) -> Self {
        assert!(words > 0.0, "memory capacity must be positive");
        Self { words_per_processor: words }
    }

    /// Words needed by the largest partition when the grid is split
    /// `p` ways: double-buffered solution with halo, plus forcing. One
    /// processor has no neighbours, hence no halo (§4's convention).
    pub fn partition_words(w: &Workload, p: usize) -> f64 {
        let area = assigned_area(w, p);
        let halo = if p <= 1 { 0.0 } else { w.one_way_words(area) };
        2.0 * (area + halo) + area
    }

    /// True iff a `p`-way decomposition fits this budget.
    pub fn fits(&self, w: &Workload, p: usize) -> bool {
        Self::partition_words(w, p) <= self.words_per_processor
    }

    /// The smallest processor count whose largest partition fits, or
    /// [`Infeasible`] when even the shape's finest decomposition does not.
    /// `partition_words` is non-increasing in `p`, so binary search applies.
    pub fn min_processors(&self, w: &Workload) -> Result<usize, Infeasible> {
        let cap = w.max_processors();
        if self.fits(w, 1) {
            return Ok(1);
        }
        if !self.fits(w, cap) {
            return Err(Infeasible {
                needed: Self::partition_words(w, cap),
                capacity: self.words_per_processor,
            });
        }
        let (mut lo, mut hi) = (1usize, cap); // lo fails, hi fits
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if self.fits(w, mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Ok(hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArchModel, Hypercube, MachineParams, ProcessorBudget, SyncBus};
    use parspeed_stencil::{PartitionShape, Stencil};

    fn wl(n: usize, shape: PartitionShape) -> Workload {
        Workload::new(n, &Stencil::five_point(), shape)
    }

    #[test]
    fn whole_domain_words_account_buffers_and_forcing() {
        // One processor: no halo, 3 buffers of n².
        let w = wl(64, PartitionShape::Strip);
        assert_eq!(MemoryBudget::partition_words(&w, 1), 3.0 * 64.0 * 64.0);
    }

    #[test]
    fn partition_words_shrink_with_processors() {
        let w = wl(128, PartitionShape::Square);
        let mut prev = f64::INFINITY;
        for p in [1usize, 2, 4, 16, 64, 256] {
            let words = MemoryBudget::partition_words(&w, p);
            assert!(words <= prev, "P={p}: {words} > {prev}");
            prev = words;
        }
    }

    #[test]
    fn min_processors_is_the_exact_threshold() {
        let w = wl(128, PartitionShape::Strip);
        let budget = MemoryBudget::words(MemoryBudget::partition_words(&w, 7));
        let p = budget.min_processors(&w).unwrap();
        assert!(budget.fits(&w, p));
        assert!(!budget.fits(&w, p - 1), "P−1 = {} should not fit", p - 1);
        // Row quantization can make several processor counts share the
        // same largest strip; the threshold must be the first that fits.
        assert!(p <= 7);
    }

    #[test]
    fn generous_memory_allows_one_processor() {
        let w = wl(64, PartitionShape::Square);
        let budget = MemoryBudget::words(1e9);
        assert_eq!(budget.min_processors(&w).unwrap(), 1);
    }

    #[test]
    fn impossible_fit_is_reported() {
        // Strips of one row still need ~3n words each; a budget below that
        // is infeasible.
        let w = wl(256, PartitionShape::Strip);
        let budget = MemoryBudget::words(100.0);
        let err = budget.min_processors(&w).unwrap_err();
        assert!(err.needed > err.capacity);
        assert!(err.to_string().contains("does not fit"));
    }

    #[test]
    fn optimizer_respects_the_memory_floor() {
        // The sync-bus interior optimum on a 256 grid is ~14 processors;
        // a memory budget forcing ≥ 32 must override it.
        let m = MachineParams::paper_defaults();
        let bus = SyncBus::new(&m);
        let w = wl(256, PartitionShape::Square);
        let budget = MemoryBudget::words(MemoryBudget::partition_words(&w, 32));
        let opt = bus.optimize_constrained(&w, ProcessorBudget::Limited(64), Some(budget)).unwrap();
        assert!(opt.processors >= 32, "memory floor violated: {}", opt.processors);
        // Unconstrained, it would have chosen ~14.
        let free = bus.optimize(&w, ProcessorBudget::Limited(64));
        assert!((13..=15).contains(&free.processors));
    }

    #[test]
    fn paper_section4_memory_prohibits_lumping() {
        // §4: when one processor is best but memory prohibits it, spread
        // maximally. A tiny hypercube problem prefers 1 processor; with a
        // memory floor of 2 the optimizer must pick an extreme, and on a
        // monotone-decreasing-beyond-optimum curve that is the cap.
        let m = MachineParams::paper_defaults();
        let cube = Hypercube::new(&m);
        let w = wl(8, PartitionShape::Square);
        let free = cube.optimize(&w, ProcessorBudget::Limited(16));
        assert_eq!(free.processors, 1);
        let budget = MemoryBudget::words(MemoryBudget::partition_words(&w, 2));
        let constrained =
            cube.optimize_constrained(&w, ProcessorBudget::Limited(16), Some(budget)).unwrap();
        assert!(constrained.processors >= 2);
    }

    #[test]
    fn infeasible_budget_propagates_from_optimizer() {
        let m = MachineParams::paper_defaults();
        let bus = SyncBus::new(&m);
        let w = wl(128, PartitionShape::Strip);
        let err = bus
            .optimize_constrained(&w, ProcessorBudget::Unlimited, Some(MemoryBudget::words(10.0)))
            .unwrap_err();
        assert!(err.needed > 10.0);
    }

    #[test]
    fn no_budget_matches_plain_optimize() {
        let m = MachineParams::paper_defaults();
        let bus = SyncBus::new(&m);
        let w = wl(128, PartitionShape::Square);
        let a = bus.optimize(&w, ProcessorBudget::Limited(32));
        let b = bus.optimize_constrained(&w, ProcessorBudget::Limited(32), None).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_capacity() {
        let _ = MemoryBudget::words(0.0);
    }
}
