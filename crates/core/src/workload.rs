//! Problem instances: grid size, stencil constants, partition shape.

use parspeed_stencil::{PartitionShape, Stencil};

/// A problem instance for the analytic model.
///
/// Carries the three stencil-derived constants the model needs — `E(S)`
/// (flops per point), `k(P,S)` (perimeters communicated), and the partition
/// shape — plus the grid side `n`. Built from a real [`Stencil`] or with
/// explicit constants for what-if analyses.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Grid side; the problem has `n²` points.
    pub n: usize,
    /// Partition shape (strips or squares/working rectangles).
    pub shape: PartitionShape,
    /// `E(S)`: flops per grid-point update.
    pub e_flops: f64,
    /// `k(P,S)`: perimeters communicated per iteration.
    pub k: usize,
    /// Stencil name for reports.
    pub stencil_name: &'static str,
}

impl Workload {
    /// Builds a workload from a stencil, using the calibrated `E(S)` when
    /// the stencil is catalogued and its natural flop count otherwise.
    pub fn new(n: usize, stencil: &Stencil, shape: PartitionShape) -> Self {
        assert!(n > 0, "empty grid");
        let e = stencil.calibrated_e().unwrap_or_else(|| stencil.flops_per_point());
        Self { n, shape, e_flops: e, k: stencil.perimeters(shape), stencil_name: stencil.name() }
    }

    /// Builds a workload with explicit constants.
    pub fn with_constants(n: usize, shape: PartitionShape, e_flops: f64, k: usize) -> Self {
        assert!(n > 0, "empty grid");
        assert!(e_flops > 0.0, "E(S) must be positive");
        Self { n, shape, e_flops, k, stencil_name: "custom" }
    }

    /// Total grid points `n²`.
    pub fn points(&self) -> f64 {
        (self.n * self.n) as f64
    }

    /// The largest processor count this shape admits: `n` strips (one row
    /// each) or `n²` unit squares.
    pub fn max_processors(&self) -> usize {
        match self.shape {
            PartitionShape::Strip => self.n,
            PartitionShape::Square => self.n * self.n,
        }
    }

    /// Boundary words a partition of `area` points moves one way per
    /// iteration under the paper's closed-form accounting: `2nk` for strips
    /// (independent of area), `4sk` with `s = √area` for squares.
    pub fn one_way_words(&self, area: f64) -> f64 {
        match self.shape {
            PartitionShape::Strip => 2.0 * self.n as f64 * self.k as f64,
            PartitionShape::Square => 4.0 * area.sqrt() * self.k as f64,
        }
    }

    /// A copy with a different grid side (scaling sweeps).
    pub fn scaled_to(&self, n: usize) -> Self {
        let mut w = self.clone();
        assert!(n > 0);
        w.n = n;
        w
    }
}

/// How many processors the machine offers the optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessorBudget {
    /// Fixed machine of `N` processors (the paper's §6 bus analysis).
    Limited(usize),
    /// Machine grows with the problem (the paper's asymptotic analysis):
    /// bounded only by the shape's own limit.
    Unlimited,
}

impl ProcessorBudget {
    /// The effective maximum processor count for `w`.
    pub fn cap(&self, w: &Workload) -> usize {
        match self {
            ProcessorBudget::Limited(n) => (*n).clamp(1, w.max_processors()),
            ProcessorBudget::Unlimited => w.max_processors(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_from_catalog_stencils() {
        let w = Workload::new(256, &Stencil::five_point(), PartitionShape::Strip);
        assert_eq!(w.e_flops, 6.0);
        assert_eq!(w.k, 1);
        assert_eq!(w.stencil_name, "5-point");
        let w9 = Workload::new(256, &Stencil::nine_point_star(), PartitionShape::Square);
        assert_eq!(w9.e_flops, 11.0);
        assert_eq!(w9.k, 2);
    }

    #[test]
    fn custom_stencil_uses_natural_flops() {
        use parspeed_stencil::Tap;
        let s = Stencil::new("tiny", vec![Tap::unit(0, 1), Tap::unit(0, -1)], 1.0, 2.0);
        let w = Workload::new(32, &s, PartitionShape::Strip);
        assert_eq!(w.e_flops, s.flops_per_point());
        assert_eq!(w.k, 0); // horizontal stencil: strips need nothing
    }

    #[test]
    fn one_way_words_match_paper_volumes() {
        let ws = Workload::with_constants(256, PartitionShape::Strip, 6.0, 1);
        assert_eq!(ws.one_way_words(1024.0), 512.0); // 2nk, any area
        assert_eq!(ws.one_way_words(64.0), 512.0);
        let wq = Workload::with_constants(256, PartitionShape::Square, 6.0, 2);
        assert_eq!(wq.one_way_words(4096.0), 4.0 * 64.0 * 2.0);
    }

    #[test]
    fn budget_caps_respect_shape_limits() {
        let strip = Workload::with_constants(100, PartitionShape::Strip, 6.0, 1);
        assert_eq!(ProcessorBudget::Unlimited.cap(&strip), 100);
        assert_eq!(ProcessorBudget::Limited(30).cap(&strip), 30);
        assert_eq!(ProcessorBudget::Limited(500).cap(&strip), 100);
        let sq = Workload::with_constants(100, PartitionShape::Square, 6.0, 1);
        assert_eq!(ProcessorBudget::Unlimited.cap(&sq), 10_000);
        assert_eq!(ProcessorBudget::Limited(0).cap(&sq), 1);
    }

    #[test]
    fn scaling_preserves_constants() {
        let w = Workload::new(128, &Stencil::nine_point_box(), PartitionShape::Square);
        let big = w.scaled_to(1024);
        assert_eq!(big.n, 1024);
        assert_eq!(big.e_flops, w.e_flops);
        assert_eq!(big.k, w.k);
    }

    #[test]
    #[should_panic(expected = "empty grid")]
    fn rejects_zero_grid() {
        let _ = Workload::with_constants(0, PartitionShape::Strip, 6.0, 1);
    }
}
