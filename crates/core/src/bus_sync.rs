//! Synchronous shared-bus model (§6.1).
//!
//! Every word moved to or from global memory is serialized by the bus; with
//! `P` processors requesting service concurrently the effective delay per
//! word is `c + b·P` (`c` fixed overhead, `b` bus cycle). A partition reads
//! its neighbours' boundary points at the start of an iteration and writes
//! its own at the end, so with `V` words each way
//!
//! ```text
//! t_ta = 2·V·(c + b·P)
//! strips : V = 2nk  →  t_cycle(A) = E·A·Tfp + 4n³bk/A + 4nck        (eq. 2)
//! squares: V = 4sk  →  t_cycle(s) = E·s²·Tfp + 8kbn²/s + 8kcs
//! ```
//!
//! Strip optimum: `A* = √(4n³bk/(E·Tfp))` (eq. 3) — independent of `c`.
//! Square optimum: the positive root of `E·Tfp·s³ + 4k(c·s² − b·n²) = 0`;
//! an interior optimum with `P` processors requires `c/b ≤ P`, which is why
//! the FLEX/32 (`c/b ≈ 1000`) should always use all its processors.

use crate::{roots, ArchModel, BusParams, MachineParams, Workload};
use parspeed_stencil::PartitionShape;

/// The synchronous-bus architecture model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyncBus {
    tfp: f64,
    bus: BusParams,
}

impl SyncBus {
    /// Builds the model from a machine description.
    pub fn new(m: &MachineParams) -> Self {
        Self { tfp: m.tfp, bus: m.bus }
    }

    /// Builds the model from explicit constants.
    pub fn with(tfp: f64, bus: BusParams) -> Self {
        assert!(tfp > 0.0 && bus.b > 0.0 && bus.c >= 0.0);
        Self { tfp, bus }
    }

    /// The bus constants in use.
    pub fn bus(&self) -> BusParams {
        self.bus
    }

    /// Transfer/synchronization time `t_ta` for partitions of `area` points
    /// (`P = n²/area` concurrent requesters).
    pub fn transfer_time(&self, w: &Workload, area: f64) -> f64 {
        let p = w.points() / area;
        let one_way = w.one_way_words(area);
        2.0 * one_way * (self.bus.c + self.bus.b * p)
    }

    /// Paper eq. (3): the continuous strip area minimizing cycle time,
    /// `A* = √(4n³bk/(E·Tfp))` — notably independent of the overhead `c`.
    pub fn optimal_strip_area(&self, w: &Workload) -> f64 {
        let n = w.n as f64;
        (4.0 * n * n * n * self.bus.b * w.k as f64 / (w.e_flops * self.tfp)).sqrt()
    }

    /// The paper's §6.1 cubic: optimal square side for general `c`.
    pub fn optimal_square_side(&self, w: &Workload) -> f64 {
        roots::optimal_square_side(
            w.e_flops, self.tfp, w.k as f64, self.bus.c, self.bus.b, w.n as f64,
        )
    }

    /// Paper ineq. (4) (strips) / (6) (squares): true iff the optimum uses
    /// *fewer* than all `n_procs` processors.
    pub fn uses_fewer_than(&self, w: &Workload, n_procs: usize) -> bool {
        let n = n_procs as f64;
        let rhs = w.e_flops * w.n as f64 / (4.0 * w.k as f64);
        let lhs = match w.shape {
            PartitionShape::Strip => n * n * self.bus.b / self.tfp,
            PartitionShape::Square => n.powf(1.5) * self.bus.b / self.tfp,
        };
        lhs > rhs
    }

    /// Paper eq. (5)-style all-N speedup: the grid spread across exactly
    /// `n_procs` processors.
    pub fn all_n_speedup(&self, w: &Workload, n_procs: usize) -> f64 {
        let area = w.points() / n_procs as f64;
        self.speedup_at(w, area)
    }

    /// Closed-form optimal cycle time with processors unconstrained
    /// (continuous areas): strips `4n^{3/2}√(E·Tfp·b·k) + 4nck`; squares
    /// from the cubic root. When the interior optimum is worse than one
    /// processor — the paper's case (3), communication so expensive that
    /// the grid belongs on a single machine — the sequential time wins.
    pub fn optimal_cycle_unbounded(&self, w: &Workload) -> f64 {
        let interior = match w.shape {
            PartitionShape::Strip => {
                let n = w.n as f64;
                let k = w.k as f64;
                4.0 * n.powf(1.5) * (w.e_flops * self.tfp * self.bus.b * k).sqrt()
                    + 4.0 * n * self.bus.c * k
            }
            PartitionShape::Square => {
                let s = self.optimal_square_side(w);
                self.cycle_time(w, (s * s).min(w.points()))
            }
        };
        interior.min(self.seq_time(w))
    }

    /// Optimal speedup with processors unconstrained — the paper's
    /// `Θ((n²)^{1/4})` (strips) / `Θ((n²)^{1/3})` (squares) quantity.
    pub fn optimal_speedup_unbounded(&self, w: &Workload) -> f64 {
        self.seq_time(w) / self.optimal_cycle_unbounded(w)
    }

    /// Necessary condition for an interior square optimum with `P`
    /// processors: `c/b ≤ P` (§6.1). Returns the ratio `c/b`.
    pub fn overhead_ratio(&self) -> f64 {
        self.bus.c / self.bus.b
    }
}

impl ArchModel for SyncBus {
    fn name(&self) -> &'static str {
        "synchronous bus"
    }

    fn tfp(&self) -> f64 {
        self.tfp
    }

    fn cycle_time(&self, w: &Workload, area: f64) -> f64 {
        assert!(area > 0.0, "area must be positive");
        let points = w.points();
        if area >= points {
            // One processor: no communication is suffered (§4).
            return self.seq_time(w);
        }
        w.e_flops * area * self.tfp + self.transfer_time(w, area)
    }

    fn closed_form_optimal_area(&self, w: &Workload) -> Option<f64> {
        Some(match w.shape {
            PartitionShape::Strip => self.optimal_strip_area(w),
            PartitionShape::Square => {
                let s = self.optimal_square_side(w);
                s * s
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convex::{golden_min, is_unimodal_sampled};
    use parspeed_stencil::Stencil;

    fn paper_bus() -> SyncBus {
        SyncBus::new(&MachineParams::paper_defaults())
    }

    fn wl(n: usize, shape: PartitionShape) -> Workload {
        Workload::new(n, &Stencil::five_point(), shape)
    }

    #[test]
    fn strip_cycle_matches_equation_2() {
        // t_cycle = E·A·Tfp + 4n³bk/A + 4nck, term by term.
        let m = MachineParams::paper_defaults().with_bus_overhead(2.0e-6);
        let bus = SyncBus::new(&m);
        let w = wl(64, PartitionShape::Strip);
        let a = 512.0;
        let n = 64.0f64;
        let expect = 6.0 * a * m.tfp + 4.0 * n.powi(3) * m.bus.b * 1.0 / a + 4.0 * n * 2.0e-6 * 1.0;
        assert!((bus.cycle_time(&w, a) - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn square_cycle_matches_equation() {
        // t_cycle = E·s²·Tfp + 8kbn²/s + 8kcs.
        let m = MachineParams::paper_defaults().with_bus_overhead(1.0e-6);
        let bus = SyncBus::new(&m);
        let w = Workload::new(64, &Stencil::nine_point_star(), PartitionShape::Square);
        let s = 16.0f64;
        let k = 2.0;
        let expect =
            11.0 * s * s * m.tfp + 8.0 * k * m.bus.b * 64.0 * 64.0 / s + 8.0 * k * 1.0e-6 * s;
        assert!((bus.cycle_time(&w, s * s) - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn cycle_time_is_convex_in_area() {
        let bus = paper_bus();
        for shape in [PartitionShape::Strip, PartitionShape::Square] {
            let w = wl(256, shape);
            assert!(
                is_unimodal_sampled(16.0, 256.0 * 256.0 - 1.0, 4000, 1e-12, |a| bus
                    .cycle_time(&w, a)),
                "{shape:?}"
            );
        }
    }

    #[test]
    fn closed_form_strip_optimum_matches_numeric() {
        let bus = paper_bus();
        let w = wl(256, PartitionShape::Strip);
        let closed = bus.optimal_strip_area(&w);
        let (numeric, _) = golden_min(1.0, 65535.0, |a| bus.cycle_time(&w, a));
        assert!((closed - numeric).abs() / closed < 1e-4, "{closed} vs {numeric}");
    }

    #[test]
    fn closed_form_square_optimum_matches_numeric_with_overhead() {
        let m = MachineParams::paper_defaults().with_bus_overhead(0.5e-6);
        let bus = SyncBus::new(&m);
        let w = wl(256, PartitionShape::Square);
        let s = bus.optimal_square_side(&w);
        let (numeric, _) = golden_min(1.0, 65535.0, |a| bus.cycle_time(&w, a));
        assert!((s * s - numeric).abs() / (s * s) < 1e-3, "{} vs {numeric}", s * s);
    }

    #[test]
    fn paper_anchor_14_processors_on_256_grid() {
        // §6.1: 256×256, square partitions, 5-point: optimal uses ~14
        // processors; 9-point: ~22.
        let bus = paper_bus();
        let w5 = wl(256, PartitionShape::Square);
        let s = bus.optimal_square_side(&w5);
        let p = (256.0 * 256.0) / (s * s);
        assert!((p - 14.0).abs() < 1.0, "5-point: {p}");
        let w9 = Workload::new(256, &Stencil::nine_point_box(), PartitionShape::Square);
        let s9 = bus.optimal_square_side(&w9);
        let p9 = (256.0 * 256.0) / (s9 * s9);
        assert!((p9 - 22.0).abs() < 1.0, "9-point: {p9}");
    }

    #[test]
    fn inequality_4_matches_direct_comparison() {
        // uses_fewer_than(N) ⇔ A* > n²/N, across a sweep.
        let bus = paper_bus();
        for n in [64usize, 128, 256, 512] {
            for shape in [PartitionShape::Strip, PartitionShape::Square] {
                let w = wl(n, shape);
                for nprocs in [2usize, 4, 8, 16, 32, 64] {
                    let astar = bus.closed_form_optimal_area(&w).unwrap();
                    let direct = astar > w.points() / nprocs as f64;
                    assert_eq!(
                        bus.uses_fewer_than(&w, nprocs),
                        direct,
                        "n={n} N={nprocs} {shape:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn strips_call_for_fewer_processors_than_squares() {
        // Inequalities (4) and (6): "a strip decomposition … will always
        // call for fewer (or equal) processors than a square decomposition"
        // when k is equal. N² ≥ N^{3/2} makes the strip inequality trigger
        // first.
        let bus = paper_bus();
        for n in [64usize, 256, 1024] {
            for nprocs in [4usize, 16, 64] {
                let ws = wl(n, PartitionShape::Strip);
                let wq = wl(n, PartitionShape::Square);
                // If squares already leave processors idle, strips must too.
                if bus.uses_fewer_than(&wq, nprocs) {
                    assert!(bus.uses_fewer_than(&ws, nprocs), "n={n} N={nprocs}");
                }
            }
        }
    }

    #[test]
    fn communication_is_twice_computation_at_square_optimum() {
        // §6.1, c = 0: at s̃ the communication cost is exactly twice the
        // computation cost.
        let bus = paper_bus(); // c = 0 in defaults
        let w = wl(512, PartitionShape::Square);
        let s = bus.optimal_square_side(&w);
        let comp = w.e_flops * s * s * bus.tfp();
        let comm = bus.transfer_time(&w, s * s);
        assert!((comm / comp - 2.0).abs() < 1e-9, "ratio {}", comm / comp);
    }

    #[test]
    fn unbounded_speedup_scales_as_the_paper_says() {
        // Strips Θ((n²)^{1/4}); squares Θ((n²)^{1/3}): quadrupling n²
        // multiplies speedup by √2 / ∛4 respectively (c = 0).
        let bus = paper_bus();
        let s1 = bus.optimal_speedup_unbounded(&wl(256, PartitionShape::Strip));
        let s2 = bus.optimal_speedup_unbounded(&wl(512, PartitionShape::Strip));
        assert!((s2 / s1 - 2.0f64.sqrt()).abs() < 1e-6, "strip ratio {}", s2 / s1);
        let q1 = bus.optimal_speedup_unbounded(&wl(256, PartitionShape::Square));
        let q2 = bus.optimal_speedup_unbounded(&wl(512, PartitionShape::Square));
        assert!((q2 / q1 - 4.0f64.powf(1.0 / 3.0)).abs() < 1e-6, "square ratio {}", q2 / q1);
    }

    #[test]
    fn squares_beat_strips_on_large_grids() {
        let bus = paper_bus();
        for n in [256usize, 512, 1024] {
            let s = bus.optimal_speedup_unbounded(&wl(n, PartitionShape::Strip));
            let q = bus.optimal_speedup_unbounded(&wl(n, PartitionShape::Square));
            assert!(q > s, "n={n}: squares {q} ≤ strips {s}");
        }
    }

    #[test]
    fn flex32_overhead_ratio_demands_all_processors() {
        // c/b ≈ 1000 ≫ 30 processors ⇒ interior optimum impossible on a
        // bus machine: optimal square side yields P < 1 … meaning "use all".
        let bus = SyncBus::new(&MachineParams::flex32_defaults());
        assert!(bus.overhead_ratio() > 30.0);
        let w = wl(256, PartitionShape::Square);
        // The interior optimum would need more processors than any bus
        // machine has; with N = 30 the all-N allocation must win.
        assert!(!bus.uses_fewer_than(&w, 30) || bus.overhead_ratio() > 30.0);
    }

    #[test]
    fn all_n_speedup_approaches_n() {
        // §6.1: speedup → N as n² → ∞ for fixed N. Convergence is O(1/n),
        // so it takes very large grids to close on N.
        let bus = paper_bus();
        let mut prev = 0.0;
        for n in [128usize, 512, 2048, 8192, 65536] {
            let s = bus.all_n_speedup(&wl(n, PartitionShape::Strip), 16);
            assert!(s > prev);
            prev = s;
        }
        assert!(prev > 15.0, "speedup at n=65536 is {prev}");
        assert!(prev < 16.0);
    }
}
