//! Minimization of unimodal functions.
//!
//! Every cycle-time curve in the paper is convex (or monotone) in the
//! partition area, so golden-section search finds the continuous optimum
//! reliably; the optimizer then snaps it to feasible integer allocations.

/// Golden-section search for the minimum of a unimodal `f` on `[lo, hi]`.
///
/// Returns `(x_min, f(x_min))`. Near a smooth quadratic minimum the
/// abscissa is accurate to about `√ε ≈ 1e-8` relative — the theoretical
/// limit for value-comparison methods, and far tighter than the integer
/// snapping downstream needs. For monotone `f` it converges to the cheaper
/// endpoint, which is exactly the extremal-allocation behaviour the paper's
/// hypercube analysis needs.
///
/// # Panics
///
/// Panics if `lo > hi` or either bound is not finite.
pub fn golden_min(mut lo: f64, mut hi: f64, f: impl Fn(f64) -> f64) -> (f64, f64) {
    assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "bad bracket [{lo}, {hi}]");
    const INVPHI: f64 = 0.618_033_988_749_894_8; // 1/φ
    const INVPHI2: f64 = 0.381_966_011_250_105_2; // 1/φ²
    if lo == hi {
        return (lo, f(lo));
    }
    let mut h = hi - lo;
    let mut a = lo + INVPHI2 * h;
    let mut b = lo + INVPHI * h;
    let mut fa = f(a);
    let mut fb = f(b);
    // Enough iterations for ~1e-12 relative bracket shrinkage.
    for _ in 0..200 {
        if h <= 1e-12 * (lo.abs() + hi.abs() + 1e-300) {
            break;
        }
        if fa < fb {
            hi = b;
            b = a;
            fb = fa;
            h = hi - lo;
            a = lo + INVPHI2 * h;
            fa = f(a);
        } else {
            lo = a;
            a = b;
            fa = fb;
            h = hi - lo;
            b = lo + INVPHI * h;
            fb = f(b);
        }
    }
    let x = 0.5 * (lo + hi);
    (x, f(x))
}

/// Checks that `f` is unimodal on a sampled grid of `[lo, hi]`: its sampled
/// values strictly decrease then strictly increase (either phase may be
/// empty). Tolerates flat steps within `tol`. Used by tests to certify the
/// paper's convexity claims numerically.
pub fn is_unimodal_sampled(
    lo: f64,
    hi: f64,
    samples: usize,
    tol: f64,
    f: impl Fn(f64) -> f64,
) -> bool {
    assert!(samples >= 2);
    let xs: Vec<f64> =
        (0..samples).map(|i| lo + (hi - lo) * i as f64 / (samples - 1) as f64).collect();
    let ys: Vec<f64> = xs.iter().map(|&x| f(x)).collect();
    let mut rising = false;
    for w in ys.windows(2) {
        if w[1] > w[0] + tol {
            rising = true;
        } else if w[1] < w[0] - tol && rising {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_parabola_minimum() {
        let (x, fx) = golden_min(-10.0, 10.0, |x| (x - 3.0) * (x - 3.0) + 1.0);
        assert!((x - 3.0).abs() < 1e-6);
        assert!((fx - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_decreasing_converges_to_right_endpoint() {
        let (x, _) = golden_min(0.0, 5.0, |x| -x);
        assert!((x - 5.0).abs() < 1e-8);
    }

    #[test]
    fn monotone_increasing_converges_to_left_endpoint() {
        let (x, _) = golden_min(2.0, 9.0, |x| x * x);
        assert!((x - 2.0).abs() < 1e-8);
    }

    #[test]
    fn handles_degenerate_bracket() {
        let (x, fx) = golden_min(4.0, 4.0, |x| x + 1.0);
        assert_eq!(x, 4.0);
        assert_eq!(fx, 5.0);
    }

    #[test]
    fn paper_shape_sum_of_hyperbola_and_line() {
        // t(A) = E·A + V/A — the sync-bus strip cycle-time shape.
        let e = 2.0;
        let v = 32.0;
        let (x, _) = golden_min(0.1, 100.0, |a| e * a + v / a);
        assert!((x - (v / e).sqrt()).abs() < 1e-6, "got {x}");
    }

    #[test]
    fn unimodality_detector() {
        assert!(is_unimodal_sampled(-5.0, 5.0, 101, 0.0, |x| x * x));
        assert!(is_unimodal_sampled(0.0, 10.0, 101, 0.0, |x| x));
        assert!(is_unimodal_sampled(0.0, 10.0, 101, 0.0, |x| -x));
        // A two-dip curve is not unimodal.
        assert!(!is_unimodal_sampled(-6.0, 6.0, 601, 0.0, |x: f64| (x * x - 9.0).powi(2)));
    }

    #[test]
    #[should_panic(expected = "bad bracket")]
    fn rejects_inverted_bracket() {
        let _ = golden_min(2.0, 1.0, |x| x);
    }
}
