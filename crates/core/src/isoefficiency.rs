//! Isoefficiency analysis — the modern framing of the paper's §§4–7
//! fixed-`N` results.
//!
//! The paper shows speedup → `N` as the grid grows for every architecture;
//! *how fast* the problem must grow to hold efficiency constant is the
//! isoefficiency function introduced shortly after (Grama/Gupta/Kumar),
//! and it falls straight out of the paper's formulas:
//!
//! * hypercube/mesh, squares: `E = 1/(1 + c·√N/n)` ⇒ `n ∝ √N`, work
//!   `W = Θ(N)` — **linear isoefficiency**, the best possible;
//! * hypercube/mesh, strips: `n ∝ N` ⇒ `W = Θ(N²)`;
//! * synchronous bus, strips (eq. 5): `E = 1/(1 + 4bkN²/(E·Tfp·n))` ⇒
//!   `n ∝ N²`, `W = Θ(N⁴)`;
//! * synchronous bus, squares: `n ∝ N^{3/2}`, `W = Θ(N³)`;
//! * banyan, squares: `n ∝ √(N·log N)`, `W = Θ(N log N)`.
//!
//! [`min_grid_for_efficiency`] computes the threshold numerically from any
//! [`ArchModel`]; [`isoefficiency_exponent`] fits the growth exponent
//! `d log W / d log N` so the table above can be asserted.

use crate::{ArchModel, Workload};

/// The smallest grid side `n` at which `model` reaches `efficiency`
/// (speedup / N) on exactly `n_procs` processors.
///
/// Efficiency is monotone nondecreasing in `n` for every model in this
/// workspace (communication per point shrinks as partitions grow), so an
/// exponential bracket plus binary search is exact.
///
/// # Panics
///
/// Panics if `efficiency` is outside `(0, 1)`.
pub fn min_grid_for_efficiency<M: ArchModel + ?Sized>(
    model: &M,
    template: &Workload,
    n_procs: usize,
    efficiency: f64,
) -> usize {
    assert!(efficiency > 0.0 && efficiency < 1.0, "need 0 < efficiency < 1");
    assert!(n_procs >= 1);
    let eff_at = |n: usize| -> f64 {
        let w = template.scaled_to(n);
        let area = w.points() / n_procs as f64;
        model.speedup_at(&w, area) / n_procs as f64
    };
    // Bracket: grow until the target efficiency is met.
    let mut hi = n_procs.max(2);
    let mut guard = 0;
    while eff_at(hi) < efficiency {
        hi *= 2;
        guard += 1;
        assert!(guard < 40, "efficiency {efficiency} unreachable on {}", model.name());
    }
    let mut lo = 1usize;
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if eff_at(mid) >= efficiency {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

/// Fits the isoefficiency exponent `d log W / d log N` (with `W = n²`,
/// the paper's work measure up to constants) over the given processor
/// counts at fixed target efficiency.
pub fn isoefficiency_exponent<M: ArchModel + ?Sized>(
    model: &M,
    template: &Workload,
    procs: &[usize],
    efficiency: f64,
) -> f64 {
    assert!(procs.len() >= 2);
    let points: Vec<(usize, usize)> = procs
        .iter()
        .map(|&p| (p, min_grid_for_efficiency(model, template, p, efficiency)))
        .collect();
    fit_work_exponent(&points)
}

/// Least-squares slope of `ln(n²)` against `ln N` over precomputed
/// `(N, min n)` threshold points — the fit [`isoefficiency_exponent`]
/// applies after computing the thresholds itself. Exposed so callers that
/// already hold the thresholds (e.g. from a batched engine) fit the same
/// exponent bit-for-bit.
///
/// # Panics
///
/// Panics on fewer than two points.
pub fn fit_work_exponent(points: &[(usize, usize)]) -> f64 {
    assert!(points.len() >= 2);
    let pts: Vec<(f64, f64)> =
        points.iter().map(|&(p, n)| ((p as f64).ln(), ((n * n) as f64).ln())).collect();
    let mx = pts.iter().map(|p| p.0).sum::<f64>() / pts.len() as f64;
    let my = pts.iter().map(|p| p.1).sum::<f64>() / pts.len() as f64;
    let num: f64 = pts.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    let den: f64 = pts.iter().map(|p| (p.0 - mx) * (p.0 - mx)).sum();
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Banyan, BusParams, Hypercube, HypercubeParams, MachineParams, SyncBus};
    use parspeed_stencil::{PartitionShape, Stencil};

    /// Message constants without the huge β so the asymptotic regime is
    /// reachable at test-sized grids.
    fn fast_machine() -> MachineParams {
        MachineParams {
            tfp: 1.0e-7,
            bus: BusParams::ideal(1.0e-6),
            hypercube: HypercubeParams { alpha: 1.0e-6, beta: 1.0e-5, packet_words: 128 },
            mesh: HypercubeParams { alpha: 1.0e-6, beta: 1.0e-5, packet_words: 128 },
            switch: crate::SwitchParams { w: 0.5e-6 },
        }
    }

    fn wl(shape: PartitionShape) -> Workload {
        Workload::new(2, &Stencil::five_point(), shape)
    }

    #[test]
    fn threshold_is_monotone_in_target() {
        let m = fast_machine();
        let bus = SyncBus::new(&m);
        let w = wl(PartitionShape::Square);
        let n50 = min_grid_for_efficiency(&bus, &w, 16, 0.5);
        let n80 = min_grid_for_efficiency(&bus, &w, 16, 0.8);
        let n95 = min_grid_for_efficiency(&bus, &w, 16, 0.95);
        assert!(n50 < n80 && n80 < n95, "{n50} {n80} {n95}");
    }

    #[test]
    fn efficiency_is_met_at_and_not_below_threshold() {
        let m = fast_machine();
        let bus = SyncBus::new(&m);
        let w = wl(PartitionShape::Strip);
        let p = 8usize;
        let n = min_grid_for_efficiency(&bus, &w, p, 0.7);
        let eff = |nn: usize| {
            let w = w.scaled_to(nn);
            bus.speedup_at(&w, w.points() / p as f64) / p as f64
        };
        assert!(eff(n) >= 0.7);
        assert!(eff(n - 1) < 0.7);
    }

    #[test]
    fn sync_bus_strips_have_quartic_isoefficiency() {
        // E = 1/(1 + 4bkN²/(E·Tfp·n)) ⇒ n ∝ N² ⇒ W = n² ∝ N⁴.
        let m = fast_machine();
        let bus = SyncBus::new(&m);
        let e = isoefficiency_exponent(&bus, &wl(PartitionShape::Strip), &[8, 16, 32, 64], 0.5);
        assert!((e - 4.0).abs() < 0.1, "exponent {e}");
    }

    #[test]
    fn sync_bus_squares_have_cubic_isoefficiency() {
        let m = fast_machine();
        let bus = SyncBus::new(&m);
        let e = isoefficiency_exponent(&bus, &wl(PartitionShape::Square), &[8, 16, 32, 64], 0.5);
        assert!((e - 3.0).abs() < 0.1, "exponent {e}");
    }

    #[test]
    fn hypercube_squares_have_near_linear_isoefficiency() {
        // With β ≈ 0 the per-neighbour cost is ∝ s·k ⇒ E = 1/(1 + c√N/n)
        // ⇒ W ∝ N. Packet rounding and β add a small upward bias.
        let m = fast_machine();
        let cube = Hypercube::new(&m);
        let e =
            isoefficiency_exponent(&cube, &wl(PartitionShape::Square), &[16, 64, 256, 1024], 0.5);
        assert!(e > 0.85 && e < 1.35, "exponent {e}");
    }

    #[test]
    fn hypercube_strips_pay_quadratic_isoefficiency() {
        // Strip messages are n·k words regardless of P ⇒ n ∝ N ⇒ W ∝ N².
        // The bandwidth term must dominate to see the asymptote, so use a
        // startup-free, unpacketized machine (β > 0 shifts the small-n
        // regime to W ∝ N — worth knowing, but not the asymptotic law).
        let mut m = fast_machine();
        m.hypercube = HypercubeParams { alpha: 1.0e-6, beta: 0.0, packet_words: 1 };
        let cube = Hypercube::new(&m);
        let e = isoefficiency_exponent(&cube, &wl(PartitionShape::Strip), &[8, 16, 32, 64], 0.5);
        assert!((e - 2.0).abs() < 0.25, "exponent {e}");
    }

    #[test]
    fn startup_dominated_hypercube_looks_linear_at_small_n() {
        // The finite-size effect the previous test dodges: with ms-scale β
        // and test-scale grids, E = 1/(1 + 4βN/(E·n²·Tfp)) gives W ∝ N.
        let m = fast_machine();
        let cube = Hypercube::new(&m);
        let e = isoefficiency_exponent(&cube, &wl(PartitionShape::Strip), &[8, 16, 32], 0.5);
        assert!(e < 1.3, "exponent {e} should be startup-dominated here");
    }

    #[test]
    fn banyan_squares_sit_just_above_linear() {
        // W ∝ N·log N: exponent slightly above 1 on a finite sweep.
        let m = fast_machine();
        let net = Banyan::new(&m);
        let e =
            isoefficiency_exponent(&net, &wl(PartitionShape::Square), &[16, 64, 256, 1024], 0.5);
        assert!(e > 1.0 && e < 1.45, "exponent {e}");
    }

    #[test]
    fn architecture_ordering_of_scalability() {
        // Lower isoefficiency exponent = more scalable. The paper's §8
        // hierarchy, restated: hypercube ≺ banyan ≺ bus-squares ≺ bus-strips.
        let m = fast_machine();
        let cube = isoefficiency_exponent(
            &Hypercube::new(&m),
            &wl(PartitionShape::Square),
            &[16, 64, 256],
            0.5,
        );
        let ban = isoefficiency_exponent(
            &Banyan::new(&m),
            &wl(PartitionShape::Square),
            &[16, 64, 256],
            0.5,
        );
        let busq = isoefficiency_exponent(
            &SyncBus::new(&m),
            &wl(PartitionShape::Square),
            &[16, 64, 256],
            0.5,
        );
        let bust = isoefficiency_exponent(
            &SyncBus::new(&m),
            &wl(PartitionShape::Strip),
            &[16, 64, 256],
            0.5,
        );
        assert!(cube < ban + 0.2, "cube {cube} vs banyan {ban}");
        assert!(ban < busq, "banyan {ban} vs bus squares {busq}");
        assert!(busq < bust, "bus squares {busq} vs strips {bust}");
    }

    #[test]
    #[should_panic(expected = "0 < efficiency < 1")]
    fn rejects_bad_target() {
        let m = fast_machine();
        let _ = min_grid_for_efficiency(&SyncBus::new(&m), &wl(PartitionShape::Strip), 4, 1.5);
    }
}
