//! Integer processor-allocation optimization.
//!
//! The paper optimizes the continuous partition area by calculus, then
//! snaps to feasible decompositions: strips admit only whole-row
//! assignments (`A_l = n·⌊Â/n⌋`, `A_h = A_l + n`, §6.1), squares are
//! approximated by working rectangles. [`optimize`] packages that
//! procedure: continuous optimum (closed form when the model has one,
//! golden-section otherwise), candidate integer processor counts around
//! it, both extremal allocations, and an exact evaluation of each
//! candidate at its true (slowest-partition) area.

use crate::convex::golden_min;
use crate::memory::{Infeasible, MemoryBudget};
use crate::{ArchModel, ProcessorBudget, Workload};
use parspeed_stencil::PartitionShape;

/// The result of optimizing a workload on an architecture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Optimum {
    /// Optimal number of processors.
    pub processors: usize,
    /// Area (points) of the largest partition at that allocation.
    pub area: f64,
    /// Per-iteration cycle time at the optimum.
    pub cycle_time: f64,
    /// Speedup over one processor.
    pub speedup: f64,
    /// Speedup divided by processors used.
    pub efficiency: f64,
    /// Whether the optimum uses every available processor.
    pub used_all: bool,
}

/// Area of the largest partition when `p` processors share the grid.
///
/// Strips get whole rows (`⌈n/p⌉` of them); squares are treated
/// continuously, as in the paper (`n²/p`; Fig. 6 quantifies the working-
/// rectangle error of that idealization). This is the feasibility
/// convention every [`optimize`] candidate is evaluated under — callers
/// comparing allocations by hand should use it too, or strip allocations
/// will look better than whole-row assignment permits.
pub fn assigned_area(w: &Workload, p: usize) -> f64 {
    match w.shape {
        PartitionShape::Strip => (w.n as f64 / p as f64).ceil() * w.n as f64,
        PartitionShape::Square => w.points() / p as f64,
    }
}

/// Finds the optimal integer processor count for `w` on `model` under
/// `budget`. See module docs for the procedure.
pub fn optimize<M: ArchModel + ?Sized>(
    model: &M,
    w: &Workload,
    budget: ProcessorBudget,
) -> Optimum {
    optimize_floored(model, w, budget, 1)
}

/// [`optimize`] with a per-processor memory budget: the candidate set is
/// intersected with the allocations whose largest partition fits.
///
/// Errors with [`Infeasible`] when even the finest decomposition the
/// budget's cap admits overflows the memory — the paper's §4 situation
/// taken to its limit (memory can force spreading, and past the cap there
/// is nothing left to spread to).
pub fn optimize_constrained<M: ArchModel + ?Sized>(
    model: &M,
    w: &Workload,
    budget: ProcessorBudget,
    memory: Option<MemoryBudget>,
) -> Result<Optimum, Infeasible> {
    let floor = match memory {
        None => 1,
        Some(mem) => {
            let floor = mem.min_processors(w)?;
            if floor > budget.cap(w) {
                return Err(Infeasible {
                    needed: MemoryBudget::partition_words(w, budget.cap(w)),
                    capacity: mem.words_per_processor,
                });
            }
            floor
        }
    };
    Ok(optimize_floored(model, w, budget, floor))
}

/// The shared optimization procedure with a lower bound on the processor
/// count (1 when unconstrained; the memory floor otherwise).
fn optimize_floored<M: ArchModel + ?Sized>(
    model: &M,
    w: &Workload,
    budget: ProcessorBudget,
    floor: usize,
) -> Optimum {
    let cap = budget.cap(w);
    let floor = floor.clamp(1, cap);
    let points = w.points();
    let eval = |p: usize| model.cycle_time(w, assigned_area(w, p));

    // Continuous optimum over the admissible area interval.
    let lo_area = points / cap as f64;
    let hi_area = points / floor as f64;
    let a_star = model
        .closed_form_optimal_area(w)
        .unwrap_or_else(|| golden_min(lo_area, hi_area, |a| model.cycle_time(w, a)).0)
        .clamp(lo_area, hi_area);
    let p_star = points / a_star;

    // Candidate processor counts: extremes, the snapped continuous optimum
    // and a small neighbourhood (integer rounding plus the paper's strip
    // row-quantization can shift the optimum by a couple of counts).
    let mut candidates: Vec<usize> = vec![floor, cap];
    let centre = p_star.round().max(1.0) as usize;
    for d in -3i64..=3 {
        let p = centre as i64 + d;
        if p >= floor as i64 && p as usize <= cap {
            candidates.push(p as usize);
        }
    }
    if w.shape == PartitionShape::Strip {
        // Row-quantized neighbours: strips of r and r+1 rows.
        let rows = (a_star / w.n as f64).floor().max(1.0) as usize;
        for r in [rows, rows + 1] {
            let p = w.n.div_ceil(r);
            if p >= floor && p <= cap {
                candidates.push(p);
            }
        }
    }
    candidates.sort_unstable();
    candidates.dedup();

    let mut best_p = floor;
    let mut best_t = f64::INFINITY;
    for &p in &candidates {
        let t = eval(p);
        if t < best_t - 1e-18 || (t <= best_t && p < best_p) {
            best_t = t;
            best_p = p;
        }
    }

    let area = assigned_area(w, best_p);
    let speedup = model.seq_time(w) / best_t;
    Optimum {
        processors: best_p,
        area,
        cycle_time: best_t,
        speedup,
        efficiency: speedup / best_p as f64,
        used_all: best_p == cap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AsyncBus, Banyan, Hypercube, MachineParams, SyncBus};
    use parspeed_stencil::{PartitionShape, Stencil};

    fn m() -> MachineParams {
        MachineParams::paper_defaults()
    }

    fn wl(n: usize, shape: PartitionShape) -> Workload {
        Workload::new(n, &Stencil::five_point(), shape)
    }

    /// Brute force over every feasible processor count must never beat the
    /// optimizer.
    #[test]
    fn never_beaten_by_brute_force() {
        let machine = m();
        let models: Vec<Box<dyn ArchModel>> = vec![
            Box::new(SyncBus::new(&machine)),
            Box::new(AsyncBus::new(&machine)),
            Box::new(Hypercube::new(&machine)),
            Box::new(Banyan::with_network(&machine, 64)),
        ];
        for model in &models {
            for shape in [PartitionShape::Strip, PartitionShape::Square] {
                for n in [32usize, 64, 128] {
                    let w = wl(n, shape);
                    let cap = 32usize;
                    let opt = optimize(model.as_ref(), &w, ProcessorBudget::Limited(cap));
                    let brute = (1..=cap)
                        .map(|p| model.cycle_time(&w, assigned_area(&w, p)))
                        .fold(f64::INFINITY, f64::min);
                    assert!(
                        opt.cycle_time <= brute * (1.0 + 1e-12),
                        "{} {shape:?} n={n}: optimizer {} vs brute {}",
                        model.name(),
                        opt.cycle_time,
                        brute
                    );
                }
            }
        }
    }

    #[test]
    fn sync_bus_uses_interior_optimum_on_big_machine() {
        // 256 grid, squares, N = 64 ≫ 14: the paper says use ~14.
        let bus = SyncBus::new(&m());
        let w = wl(256, PartitionShape::Square);
        let opt = bus.optimize(&w, ProcessorBudget::Limited(64));
        assert!((13..=15).contains(&opt.processors), "got {}", opt.processors);
        assert!(!opt.used_all);
    }

    #[test]
    fn sync_bus_uses_all_of_a_small_machine() {
        // N = 8 < 14: spread across all processors.
        let bus = SyncBus::new(&m());
        let w = wl(256, PartitionShape::Square);
        let opt = bus.optimize(&w, ProcessorBudget::Limited(8));
        assert_eq!(opt.processors, 8);
        assert!(opt.used_all);
    }

    #[test]
    fn hypercube_chooses_extremal() {
        let cube = Hypercube::new(&m());
        // Large problem: all processors.
        let big = wl(1024, PartitionShape::Square);
        let opt = cube.optimize(&big, ProcessorBudget::Limited(256));
        assert_eq!(opt.processors, 256);
        // Tiny problem: one processor (β dominates).
        let small = wl(8, PartitionShape::Square);
        let opt = cube.optimize(&small, ProcessorBudget::Limited(256));
        assert_eq!(opt.processors, 1);
        assert_eq!(opt.speedup, 1.0);
    }

    #[test]
    fn strip_allocation_respects_row_quantization() {
        let bus = SyncBus::new(&m());
        let w = wl(250, PartitionShape::Strip);
        let opt = bus.optimize(&w, ProcessorBudget::Unlimited);
        // Area must correspond to whole rows of the largest strip.
        let rows = 250f64 / opt.processors as f64;
        assert!((opt.area - rows.ceil() * 250.0).abs() < 1e-9);
    }

    #[test]
    fn unlimited_budget_uses_shape_cap() {
        let cube = Hypercube::new(&m());
        let w = wl(64, PartitionShape::Strip);
        let opt = cube.optimize(&w, ProcessorBudget::Unlimited);
        assert!(opt.processors <= 64); // at most one strip per row
    }

    #[test]
    fn efficiency_and_flags_consistent() {
        let bus = AsyncBus::new(&m());
        let w = wl(128, PartitionShape::Square);
        for cap in [4usize, 16, 64] {
            let opt = bus.optimize(&w, ProcessorBudget::Limited(cap));
            assert!(opt.processors >= 1 && opt.processors <= cap);
            assert!((opt.efficiency - opt.speedup / opt.processors as f64).abs() < 1e-12);
            assert_eq!(opt.used_all, opt.processors == cap);
            assert!(opt.speedup <= opt.processors as f64 + 1e-9);
        }
    }

    #[test]
    fn speedup_of_one_processor_is_one() {
        let bus = SyncBus::new(&m());
        let w = wl(64, PartitionShape::Square);
        let opt = bus.optimize(&w, ProcessorBudget::Limited(1));
        assert_eq!(opt.processors, 1);
        assert!((opt.speedup - 1.0).abs() < 1e-12);
    }
}
