//! The paper's Table I: optimal speedup as a function of architecture,
//! square partitions, one point per processor where the machine grows with
//! the problem.
//!
//! | Architecture      | Optimal speedup                                          |
//! |-------------------|----------------------------------------------------------|
//! | Hypercube         | `E·n²·Tfp / (E·Tfp + 8(β + α))`                          |
//! | Synchronous bus   | `E·n²·Tfp / (3·(E·Tfp)^{1/3}·(4n²bk)^{2/3})`             |
//! | Asynchronous bus  | `E·n²·Tfp / (2·(E·Tfp)^{1/3}·(4n²bk)^{2/3})`             |
//! | Switching network | `E·n²·Tfp / (16·w·k·log₂n + E·Tfp)`                      |
//!
//! [`rows`] evaluates the four entries; [`fit_scaling_exponent`] fits the
//! empirical growth exponent `d log(speedup) / d log(n²)` so tests (and the
//! `table1_summary` experiment) can check the paper's asymptotic claims:
//! 1 for the hypercube, 1/3 for the synchronous bus with squares, slightly
//! under 1 for the banyan.

use crate::{MachineParams, Workload};
use parspeed_stencil::{PartitionShape, Stencil};

/// One Table-I row evaluated at a concrete grid size.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Architecture name, paper order.
    pub architecture: &'static str,
    /// The closed-form optimal speedup at this `n`.
    pub optimal_speedup: f64,
    /// The formula, for display.
    pub formula: &'static str,
}

/// Hypercube Table-I speedup: one point per processor.
pub fn hypercube_speedup(m: &MachineParams, w: &Workload) -> f64 {
    let seq = w.e_flops * w.points() * m.tfp;
    let hc = m.hypercube;
    let packets = (w.k as f64 / hc.packet_words as f64).ceil();
    seq / (w.e_flops * m.tfp + 8.0 * (packets * hc.alpha + hc.beta))
}

/// Synchronous-bus Table-I speedup (squares, `c = 0`).
pub fn sync_bus_speedup(m: &MachineParams, w: &Workload) -> f64 {
    let seq = w.e_flops * w.points() * m.tfp;
    let comm = (w.e_flops * m.tfp).powf(1.0 / 3.0)
        * (4.0 * w.points() * m.bus.b * w.k as f64).powf(2.0 / 3.0);
    seq / (3.0 * comm)
}

/// Asynchronous-bus Table-I speedup (squares, `c = 0`).
pub fn async_bus_speedup(m: &MachineParams, w: &Workload) -> f64 {
    let seq = w.e_flops * w.points() * m.tfp;
    let comm = (w.e_flops * m.tfp).powf(1.0 / 3.0)
        * (4.0 * w.points() * m.bus.b * w.k as f64).powf(2.0 / 3.0);
    seq / (2.0 * comm)
}

/// Switching-network Table-I speedup: one point per processor.
pub fn switching_speedup(m: &MachineParams, w: &Workload) -> f64 {
    let seq = w.e_flops * w.points() * m.tfp;
    seq / (16.0 * m.switch.w * w.k as f64 * (w.n as f64).log2() + w.e_flops * m.tfp)
}

/// Evaluates all four Table-I rows for grid side `n` and `stencil`.
pub fn rows(m: &MachineParams, n: usize, stencil: &Stencil) -> Vec<Table1Row> {
    let w = Workload::new(n, stencil, PartitionShape::Square);
    vec![
        Table1Row {
            architecture: "hypercube",
            optimal_speedup: hypercube_speedup(m, &w),
            formula: "E·n²·Tfp / (E·Tfp + 8(β+α))",
        },
        Table1Row {
            architecture: "synchronous bus",
            optimal_speedup: sync_bus_speedup(m, &w),
            formula: "E·n²·Tfp / (3·(E·Tfp)^⅓·(4n²bk)^⅔)",
        },
        Table1Row {
            architecture: "asynchronous bus",
            optimal_speedup: async_bus_speedup(m, &w),
            formula: "E·n²·Tfp / (2·(E·Tfp)^⅓·(4n²bk)^⅔)",
        },
        Table1Row {
            architecture: "switching network",
            optimal_speedup: switching_speedup(m, &w),
            formula: "E·n²·Tfp / (16·w·k·log₂n + E·Tfp)",
        },
    ]
}

/// Least-squares slope of `log(speedup)` against `log(n²)` over the given
/// grid sides: the empirical scaling exponent of an architecture.
pub fn fit_scaling_exponent(sides: &[usize], speedup_at: impl Fn(usize) -> f64) -> f64 {
    assert!(sides.len() >= 2, "need at least two sizes to fit a slope");
    let pts: Vec<(f64, f64)> =
        sides.iter().map(|&n| (((n * n) as f64).ln(), speedup_at(n).ln())).collect();
    let mx = pts.iter().map(|p| p.0).sum::<f64>() / pts.len() as f64;
    let my = pts.iter().map(|p| p.1).sum::<f64>() / pts.len() as f64;
    let num: f64 = pts.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    let den: f64 = pts.iter().map(|p| (p.0 - mx) * (p.0 - mx)).sum();
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> MachineParams {
        MachineParams::paper_defaults()
    }

    const SIDES: [usize; 5] = [256, 512, 1024, 2048, 4096];

    #[test]
    fn four_rows_in_paper_order() {
        let rows = rows(&m(), 256, &Stencil::five_point());
        let names: Vec<_> = rows.iter().map(|r| r.architecture).collect();
        assert_eq!(
            names,
            vec!["hypercube", "synchronous bus", "asynchronous bus", "switching network"]
        );
        for r in &rows {
            assert!(r.optimal_speedup > 0.0, "{}", r.architecture);
        }
    }

    #[test]
    fn hypercube_exponent_is_one() {
        let machine = m();
        let w = Workload::new(2, &Stencil::five_point(), PartitionShape::Square);
        let e = fit_scaling_exponent(&SIDES, |n| hypercube_speedup(&machine, &w.scaled_to(n)));
        assert!((e - 1.0).abs() < 1e-6, "exponent {e}");
    }

    #[test]
    fn sync_bus_exponent_is_one_third() {
        let machine = m();
        let w = Workload::new(2, &Stencil::five_point(), PartitionShape::Square);
        let e = fit_scaling_exponent(&SIDES, |n| sync_bus_speedup(&machine, &w.scaled_to(n)));
        assert!((e - 1.0 / 3.0).abs() < 1e-6, "exponent {e}");
    }

    #[test]
    fn async_bus_same_exponent_better_constant() {
        let machine = m();
        let w = Workload::new(2, &Stencil::five_point(), PartitionShape::Square);
        let ea = fit_scaling_exponent(&SIDES, |n| async_bus_speedup(&machine, &w.scaled_to(n)));
        assert!((ea - 1.0 / 3.0).abs() < 1e-6);
        for n in SIDES {
            let wn = w.scaled_to(n);
            let ratio = async_bus_speedup(&machine, &wn) / sync_bus_speedup(&machine, &wn);
            assert!((ratio - 1.5).abs() < 1e-12);
        }
    }

    #[test]
    fn switching_exponent_just_under_one() {
        let machine = m();
        let w = Workload::new(2, &Stencil::five_point(), PartitionShape::Square);
        let e = fit_scaling_exponent(&SIDES, |n| switching_speedup(&machine, &w.scaled_to(n)));
        assert!(e > 0.85 && e < 1.0, "exponent {e}");
    }

    #[test]
    fn buses_sit_at_the_bottom_for_large_grids() {
        // §1/§8: "bus networks are unsuited for large numerical problems".
        let machine = m();
        let rows = rows(&machine, 4096, &Stencil::five_point());
        let s: Vec<f64> = rows.iter().map(|r| r.optimal_speedup).collect();
        assert!(s[0] > s[2], "hypercube ≤ async bus");
        assert!(s[3] > s[2], "switching network ≤ async bus");
        assert!(s[2] > s[1], "async ≤ sync bus");
    }

    #[test]
    fn hypercube_vs_banyan_is_decided_by_constants_not_the_log() {
        // §1: "While hypercubes give better asymptotic optimal speedup than
        // banyan networks, the true difference for grid sizes used in
        // practice will not depend on the banyan network's log factor, but
        // on the relative speeds of the communication networks." With the
        // default ms-scale message startup the banyan wins at practical n;
        // with startup-free messaging the hypercube wins everywhere.
        let machine = m();
        let w = Workload::new(2, &Stencil::five_point(), PartitionShape::Square);
        for n in [256usize, 1024, 4096] {
            let wn = w.scaled_to(n);
            assert!(
                switching_speedup(&machine, &wn) > hypercube_speedup(&machine, &wn),
                "n={n}: startup-burdened hypercube should lose at practical sizes"
            );
        }
        let mut cheap_messages = machine;
        cheap_messages.hypercube.beta = 0.0;
        cheap_messages.hypercube.alpha = machine.switch.w; // one word ≈ one switch hop
        for n in [256usize, 1024, 4096] {
            let wn = w.scaled_to(n);
            assert!(
                hypercube_speedup(&cheap_messages, &wn) > switching_speedup(&cheap_messages, &wn),
                "n={n}: with matched network speeds the log factor decides for the hypercube"
            );
        }
    }

    #[test]
    fn exponent_fit_recovers_known_slope() {
        let e = fit_scaling_exponent(&SIDES, |n| ((n * n) as f64).powf(0.42));
        assert!((e - 0.42).abs() < 1e-9);
    }
}
