//! Hardware leverage (§6.1): what faster parts buy at the *re-optimized*
//! partitioning.
//!
//! Because the configuration is re-optimized after the upgrade, these
//! factors bound the gain of any subsequent partitioning:
//!
//! * strips, `c ≈ 0`: optimal time `∝ √(b·Tfp)` — doubling either the bus
//!   or the processor gives `1/√2 ≈ 0.707`;
//! * squares, `c = 0`: optimal time `∝ b^{2/3}·Tfp^{1/3}` — doubling the
//!   bus gives `2^{-2/3} ≈ 0.63`, doubling the processor `2^{-1/3} ≈ 0.79`
//!   ("we have more leverage by improving communication speed");
//! * `c`-dominated strips: time is *linear* in `c`, so shaving fixed
//!   overhead is worth more than raw bandwidth.

use crate::{ArchModel, MachineParams, ProcessorBudget, SyncBus, Workload};

/// Result of one what-if upgrade.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeverageReport {
    /// Optimal cycle time before the upgrade.
    pub baseline: f64,
    /// Optimal cycle time after the upgrade (re-optimized).
    pub upgraded: f64,
}

impl LeverageReport {
    /// `upgraded / baseline` — smaller is better.
    pub fn factor(&self) -> f64 {
        self.upgraded / self.baseline
    }
}

fn optimal_cycle(m: &MachineParams, w: &Workload, budget: ProcessorBudget) -> f64 {
    SyncBus::new(m).optimize(w, budget).cycle_time
}

/// Re-optimized effect of multiplying the bus speed by `factor`.
pub fn bus_speedup(
    m: &MachineParams,
    w: &Workload,
    budget: ProcessorBudget,
    factor: f64,
) -> LeverageReport {
    LeverageReport {
        baseline: optimal_cycle(m, w, budget),
        upgraded: optimal_cycle(&m.with_bus_speedup(factor), w, budget),
    }
}

/// Re-optimized effect of multiplying the floating-point speed by `factor`.
pub fn flop_speedup(
    m: &MachineParams,
    w: &Workload,
    budget: ProcessorBudget,
    factor: f64,
) -> LeverageReport {
    LeverageReport {
        baseline: optimal_cycle(m, w, budget),
        upgraded: optimal_cycle(&m.with_flop_speedup(factor), w, budget),
    }
}

/// Re-optimized effect of scaling the fixed per-word overhead `c` by
/// `factor` (e.g. `0.5` halves it).
pub fn overhead_scaling(
    m: &MachineParams,
    w: &Workload,
    budget: ProcessorBudget,
    factor: f64,
) -> LeverageReport {
    LeverageReport {
        baseline: optimal_cycle(m, w, budget),
        upgraded: optimal_cycle(&m.with_bus_overhead(m.bus.c * factor), w, budget),
    }
}

/// Closed-form §6.1 leverage factors at the continuous optimum (`c = 0`):
/// `(bus×2, flop×2)` cycle-time ratios for the workload's shape.
pub fn ideal_factors(w: &Workload) -> (f64, f64) {
    use parspeed_stencil::PartitionShape;
    match w.shape {
        PartitionShape::Strip => ((0.5f64).sqrt(), (0.5f64).sqrt()),
        PartitionShape::Square => ((0.5f64).powf(2.0 / 3.0), (0.5f64).powf(1.0 / 3.0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parspeed_stencil::{PartitionShape, Stencil};

    fn w(shape: PartitionShape) -> Workload {
        Workload::new(1024, &Stencil::five_point(), shape)
    }

    #[test]
    fn strips_gain_inverse_sqrt2_from_either_upgrade() {
        let m = MachineParams::paper_defaults();
        let budget = ProcessorBudget::Unlimited;
        let bus = bus_speedup(&m, &w(PartitionShape::Strip), budget, 2.0).factor();
        let flop = flop_speedup(&m, &w(PartitionShape::Strip), budget, 2.0).factor();
        let ideal = (0.5f64).sqrt();
        assert!((bus - ideal).abs() < 0.02, "bus factor {bus}");
        assert!((flop - ideal).abs() < 0.02, "flop factor {flop}");
    }

    #[test]
    fn squares_prefer_bus_upgrades() {
        // §6.1: bus×2 → 63% of the original time; flop×2 → 79%.
        let m = MachineParams::paper_defaults();
        let budget = ProcessorBudget::Unlimited;
        let bus = bus_speedup(&m, &w(PartitionShape::Square), budget, 2.0).factor();
        let flop = flop_speedup(&m, &w(PartitionShape::Square), budget, 2.0).factor();
        assert!((bus - 0.63).abs() < 0.02, "bus factor {bus}");
        assert!((flop - 0.794).abs() < 0.02, "flop factor {flop}");
        assert!(bus < flop, "communication speed must be the better lever");
    }

    #[test]
    fn ideal_factors_match_exponents() {
        let (b, f) = ideal_factors(&w(PartitionShape::Square));
        assert!((b - 0.5f64.powf(2.0 / 3.0)).abs() < 1e-12);
        assert!((f - 0.5f64.powf(1.0 / 3.0)).abs() < 1e-12);
        let (bs, fs) = ideal_factors(&w(PartitionShape::Strip));
        assert_eq!(bs, fs);
    }

    #[test]
    fn overhead_dominated_regime_is_linear_in_c() {
        // §6.1: "if c is large relative to expected problem sizes … any
        // speed increase in the bus will not significantly improve
        // performance; on the other hand, decreasing c has a linear impact".
        // The grid must be big enough that parallel still beats sequential
        // despite the 4nck term.
        let m = MachineParams::paper_defaults().with_bus_overhead(1.0e-3);
        let budget = ProcessorBudget::Limited(16);
        let wl = Workload::new(16_384, &Stencil::five_point(), PartitionShape::Strip);
        let half_c = overhead_scaling(&m, &wl, budget, 0.5).factor();
        let double_bus = bus_speedup(&m, &wl, budget, 2.0).factor();
        assert!(half_c < 0.65, "halving c gave only {half_c}");
        assert!(double_bus > 0.9, "bus upgrade should be nearly worthless, got {double_bus}");
    }

    #[test]
    fn upgrades_never_hurt() {
        let m = MachineParams::flex32_defaults();
        for shape in [PartitionShape::Strip, PartitionShape::Square] {
            for budget in [ProcessorBudget::Limited(16), ProcessorBudget::Unlimited] {
                let wl = w(shape);
                assert!(bus_speedup(&m, &wl, budget, 2.0).factor() <= 1.0 + 1e-12);
                assert!(flop_speedup(&m, &wl, budget, 2.0).factor() <= 1.0 + 1e-12);
                assert!(overhead_scaling(&m, &wl, budget, 0.5).factor() <= 1.0 + 1e-12);
            }
        }
    }
}
