//! Hypercube model (§4): contention-free nearest-neighbour messages.
//!
//! Adjacent partitions map to adjacent nodes (Gray-code embedding for
//! strips, 2-D subcube embedding for squares), so a message's cost is
//! independent of total system traffic: a `V`-word message to a neighbour
//! costs `⌈V/packetsize⌉·α + β`. One half-duplex port per node serializes a
//! partition's sends and receives:
//!
//! ```text
//! strips : t_ta = 4·(⌈n·k/ps⌉·α + β)      (2 neighbours × send+recv)
//! squares: t_ta = 8·(⌈s·k/ps⌉·α + β)      (4 neighbours × send+recv)
//! ```
//!
//! `t_cycle(P)` is strictly decreasing in `P` (for `P ≥ 2`), so the optimal
//! allocation is extremal: one processor or all of them. Growing the
//! machine with the problem at fixed `F = n²/P` points per processor keeps
//! the cycle time constant, giving speedup linear in `n²` (Table I).

use crate::{ArchModel, HypercubeParams, MachineParams, Workload};
use parspeed_stencil::PartitionShape;

/// The hypercube architecture model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hypercube {
    tfp: f64,
    p: HypercubeParams,
}

/// Shared message-cost arithmetic for neighbour-exchange machines
/// (hypercube and mesh have identical per-iteration cost structure; they
/// differ only in embedding constraints and auxiliary hardware).
pub(crate) fn neighbour_exchange_time(p: &HypercubeParams, w: &Workload, area: f64) -> f64 {
    let msg = |words: f64| (words / p.packet_words as f64).ceil() * p.alpha + p.beta;
    match w.shape {
        // Interior strip: two neighbours, send + receive each.
        PartitionShape::Strip => 4.0 * msg(w.n as f64 * w.k as f64),
        // Interior square: four neighbours, send + receive each.
        PartitionShape::Square => 8.0 * msg(area.sqrt() * w.k as f64),
    }
}

impl Hypercube {
    /// Builds the model from a machine description.
    pub fn new(m: &MachineParams) -> Self {
        Self { tfp: m.tfp, p: m.hypercube }
    }

    /// Builds the model from explicit constants.
    pub fn with(tfp: f64, p: HypercubeParams) -> Self {
        Self { tfp, p }
    }

    /// Message parameters in use.
    pub fn params(&self) -> HypercubeParams {
        self.p
    }

    /// Per-iteration neighbour-exchange time for partitions of `area`.
    pub fn transfer_time(&self, w: &Workload, area: f64) -> f64 {
        neighbour_exchange_time(&self.p, w, area)
    }

    /// Cycle time when the machine grows with the problem at fixed
    /// `points_per_proc` (the paper's constant `C`): it does not depend on
    /// `n`, which is exactly why speedup is linear in `n²`.
    pub fn scaled_cycle(&self, w: &Workload, points_per_proc: f64) -> f64 {
        w.e_flops * points_per_proc * self.tfp
            + neighbour_exchange_time(&self.p, w, points_per_proc)
    }

    /// Speedup at fixed `points_per_proc` as the problem (and machine)
    /// grows — linear in `n²`.
    pub fn scaled_speedup(&self, w: &Workload, points_per_proc: f64) -> f64 {
        self.seq_time(w) / self.scaled_cycle(w, points_per_proc)
    }
}

impl ArchModel for Hypercube {
    fn name(&self) -> &'static str {
        "hypercube"
    }

    fn tfp(&self) -> f64 {
        self.tfp
    }

    fn cycle_time(&self, w: &Workload, area: f64) -> f64 {
        assert!(area > 0.0, "area must be positive");
        if area >= w.points() {
            return self.seq_time(w);
        }
        w.e_flops * area * self.tfp + self.transfer_time(w, area)
    }

    fn closed_form_optimal_area(&self, w: &Workload) -> Option<f64> {
        // Monotone in area: no interior optimum. The optimizer compares the
        // extremal allocations.
        let _ = w;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parspeed_stencil::Stencil;

    fn cube() -> Hypercube {
        Hypercube::new(&MachineParams::paper_defaults())
    }

    fn wl(n: usize, shape: PartitionShape) -> Workload {
        Workload::new(n, &Stencil::five_point(), shape)
    }

    #[test]
    fn cycle_time_decreasing_in_processors() {
        // §4: "t_cycle … is a decreasing function of N over [2, n²]".
        let c = cube();
        for shape in [PartitionShape::Strip, PartitionShape::Square] {
            let w = wl(256, shape);
            let mut prev = f64::INFINITY;
            for p in [2usize, 4, 8, 16, 32, 64, 128, 256] {
                let t = c.cycle_time(&w, w.points() / p as f64);
                assert!(t < prev, "{shape:?}: t({p}) = {t} ≥ {prev}");
                prev = t;
            }
        }
    }

    #[test]
    fn extremal_allocation_one_or_all() {
        // Communication-heavy regime: one processor wins; compute-heavy:
        // all processors win. Nothing interior ever wins.
        let m = MachineParams::paper_defaults();
        let c = Hypercube::new(&m);
        let w = wl(64, PartitionShape::Square);
        let one = c.cycle_time(&w, w.points());
        let all = c.cycle_time(&w, 1.0);
        for p in [2usize, 3, 7, 64, 512] {
            let t = c.cycle_time(&w, w.points() / p as f64);
            assert!(t >= one.min(all) - 1e-15, "interior P={p} beat both extremes");
        }
    }

    #[test]
    fn tiny_problems_prefer_one_processor() {
        // β = 1 ms dwarfs the compute of a 8×8 grid: keep it sequential.
        let c = cube();
        let w = wl(8, PartitionShape::Square);
        let one = c.cycle_time(&w, w.points());
        let all = c.cycle_time(&w, 1.0);
        assert!(one < all, "seq {one} vs all-procs {all}");
    }

    #[test]
    fn large_problems_prefer_all_processors() {
        let c = cube();
        let w = wl(1024, PartitionShape::Square);
        let one = c.cycle_time(&w, w.points());
        let all = c.cycle_time(&w, 1.0);
        assert!(all < one);
    }

    #[test]
    fn packetization_is_counted() {
        // n·k = 256 words at 128 words/packet = 2 packets + startup, ×4.
        let m = MachineParams::paper_defaults();
        let c = Hypercube::new(&m);
        let w = wl(256, PartitionShape::Strip);
        let t = c.transfer_time(&w, 1024.0);
        let expect = 4.0 * (2.0 * m.hypercube.alpha + m.hypercube.beta);
        assert!((t - expect).abs() < 1e-15);
    }

    #[test]
    fn scaled_cycle_is_constant_in_n() {
        // Fixed F: the paper's constant C — independent of n.
        let c = cube();
        let f = 256.0;
        let t1 = c.scaled_cycle(&wl(128, PartitionShape::Square), f);
        let t2 = c.scaled_cycle(&wl(4096, PartitionShape::Square), f);
        assert!((t1 - t2).abs() < 1e-18);
    }

    #[test]
    fn scaled_speedup_is_linear_in_n_squared() {
        let c = cube();
        let f = 64.0;
        let s1 = c.scaled_speedup(&wl(256, PartitionShape::Square), f);
        let s2 = c.scaled_speedup(&wl(512, PartitionShape::Square), f);
        let s4 = c.scaled_speedup(&wl(1024, PartitionShape::Square), f);
        assert!((s2 / s1 - 4.0).abs() < 1e-9);
        assert!((s4 / s2 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn fixed_n_speedup_approaches_n() {
        // §4: with N fixed, speedup → N as n² grows, for both shapes.
        let c = cube();
        let nprocs = 64usize;
        for shape in [PartitionShape::Strip, PartitionShape::Square] {
            let mut last = 0.0;
            for n in [256usize, 1024, 4096, 16384] {
                let w = wl(n, shape);
                let s = c.speedup_at(&w, w.points() / nprocs as f64);
                assert!(s > last, "{shape:?} n={n}");
                last = s;
            }
            assert!(last > 0.95 * nprocs as f64, "{shape:?}: {last}");
            assert!(last <= nprocs as f64);
        }
    }

    #[test]
    fn square_messages_shrink_with_partition() {
        let c = cube();
        let w = wl(256, PartitionShape::Square);
        let big = c.transfer_time(&w, 16384.0);
        let small = c.transfer_time(&w, 256.0);
        assert!(small <= big);
    }
}
