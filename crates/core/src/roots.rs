//! Root finding for the paper's optimality conditions.
//!
//! The synchronous-bus square-partition optimum solves the cubic
//! `E·Tfp·s³ + 4k(c·s² − b·n²) = 0` (§6.1). With all parameters positive
//! the polynomial has exactly one positive root (it is −4kbn² at 0 and
//! increases without bound), found here by safeguarded Newton.

/// Finds the unique positive root of `a₃x³ + a₂x² + a₀ = 0` with
/// `a₃ > 0`, `a₂ ≥ 0`, `a₀ < 0`.
///
/// Newton iteration with a bisection safeguard on a bracket that always
/// contains the root; converges to relative `1e-14`.
pub fn positive_cubic_root(a3: f64, a2: f64, a0: f64) -> f64 {
    assert!(a3 > 0.0 && a2 >= 0.0 && a0 < 0.0, "cubic not in the paper's form");
    let p = |x: f64| a3 * x * x * x + a2 * x * x + a0;
    let dp = |x: f64| 3.0 * a3 * x * x + 2.0 * a2 * x;
    // Bracket: p(0) = a0 < 0; grow hi until positive.
    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    while p(hi) < 0.0 {
        hi *= 2.0;
        assert!(hi.is_finite(), "root bracket overflow");
    }
    let mut x = hi * 0.5;
    for _ in 0..200 {
        let fx = p(x);
        if fx > 0.0 {
            hi = x;
        } else {
            lo = x;
        }
        let d = dp(x);
        let newton = if d > 0.0 { x - fx / d } else { f64::NAN };
        x = if newton.is_finite() && newton > lo && newton < hi { newton } else { 0.5 * (lo + hi) };
        if (hi - lo) <= 1e-14 * hi.max(1e-300) {
            break;
        }
    }
    x
}

/// Solves the paper's §6.1 cubic for the optimal square side:
/// `E·Tfp·s³ + 4k(c·s² − b·n²) = 0`.
pub fn optimal_square_side(e: f64, tfp: f64, k: f64, c: f64, b: f64, n: f64) -> f64 {
    positive_cubic_root(e * tfp, 4.0 * k * c, -4.0 * k * b * n * n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_simple_cubic() {
        // x³ - 8 = 0 → x = 2.
        let r = positive_cubic_root(1.0, 0.0, -8.0);
        assert!((r - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solves_with_quadratic_term() {
        // x³ + x² - 12 = 0 → x = 2 (8 + 4 - 12).
        let r = positive_cubic_root(1.0, 1.0, -12.0);
        assert!((r - 2.0).abs() < 1e-12);
    }

    #[test]
    fn c_zero_matches_closed_form() {
        // With c = 0 the paper's optimum is s̃ = (4kbn²/(E·Tfp))^(1/3).
        let (e, tfp, k, b, n) = (6.0, 1.4e-7, 1.0, 1.0e-6, 256.0);
        let s = optimal_square_side(e, tfp, k, 0.0, b, n);
        let closed = (4.0 * k * b * n * n / (e * tfp)).powf(1.0 / 3.0);
        assert!((s - closed).abs() / closed < 1e-12);
    }

    #[test]
    fn overhead_shrinks_the_optimal_side() {
        // Positive c makes communication cheaper per point *relative to the
        // c=0 curve's balance*, pulling the optimal side down: the cubic's
        // root decreases in c.
        let (e, tfp, k, b, n) = (6.0, 1.4e-7, 1.0, 1.0e-6, 256.0);
        let s0 = optimal_square_side(e, tfp, k, 0.0, b, n);
        let s1 = optimal_square_side(e, tfp, k, 1.0e-6, b, n);
        let s2 = optimal_square_side(e, tfp, k, 1.0e-3, b, n);
        assert!(s1 < s0);
        assert!(s2 < s1);
    }

    #[test]
    fn residual_is_tiny() {
        let (a3, a2, a0) = (2.5e-7, 3.0e-6, -0.26);
        let r = positive_cubic_root(a3, a2, a0);
        let res = a3 * r * r * r + a2 * r * r + a0;
        assert!(res.abs() < 1e-10 * a0.abs());
    }

    #[test]
    #[should_panic(expected = "paper's form")]
    fn rejects_wrong_sign_pattern() {
        let _ = positive_cubic_root(1.0, 0.0, 8.0);
    }
}
