//! The §5 counter-example: Adams & Crockett's conjugate-gradient code on
//! the Finite Element Machine.
//!
//! Each CG iteration makes *every processor send every other processor a
//! number* (the pieces of a global inner product) and add them all up. The
//! per-iteration time is then
//!
//! ```text
//! t(P) = E·n²·Tfp / P  +  (P − 1)·t_exch  +  P·t_add
//! ```
//!
//! which is **not** monotone in `P`: past `P* ≈ √(E·n²·Tfp/(t_exch+t_add))`
//! adding processors *increases* execution time. This is the paper's
//! demonstration that the extremal-allocation result depends on strictly
//! nearest-neighbour communication.

use crate::MachineParams;

/// Cost model for a CG-style iteration with an all-to-all scalar reduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FemModel {
    /// Seconds per flop.
    pub tfp: f64,
    /// Flops per grid point per CG iteration (matvec + axpys + dots).
    pub e_flops: f64,
    /// Time to exchange one scalar with one other processor.
    pub t_exch: f64,
    /// Time to add one received scalar into the accumulator.
    pub t_add: f64,
}

impl FemModel {
    /// A FEM-flavoured model from the shared machine constants: scalar
    /// exchange costs one bus word with overhead, additions one flop.
    pub fn new(m: &MachineParams) -> Self {
        Self {
            tfp: m.tfp,
            // 5-point matvec (6) + 2 dots (4) + 3 axpys (6) per point.
            e_flops: 16.0,
            t_exch: m.bus.c + m.bus.b,
            t_add: m.tfp,
        }
    }

    /// Per-iteration execution time with `p` processors on an `n×n` grid.
    pub fn iteration_time(&self, n: usize, p: usize) -> f64 {
        assert!(p >= 1);
        let compute = self.e_flops * (n * n) as f64 * self.tfp / p as f64;
        if p == 1 {
            return compute;
        }
        compute + (p as f64 - 1.0) * self.t_exch + p as f64 * self.t_add
    }

    /// The continuous interior optimum `P* = √(E·n²·Tfp/(t_exch + t_add))`.
    pub fn optimal_processors_continuous(&self, n: usize) -> f64 {
        (self.e_flops * (n * n) as f64 * self.tfp / (self.t_exch + self.t_add)).sqrt()
    }

    /// Exact integer optimum by scanning `1..=cap`.
    pub fn optimal_processors(&self, n: usize, cap: usize) -> usize {
        (1..=cap.max(1))
            .min_by(|&a, &b| self.iteration_time(n, a).total_cmp(&self.iteration_time(n, b)))
            .expect("cap ≥ 1")
    }

    /// True iff execution time increases somewhere on `[2, cap]` — the
    /// §5 non-monotonicity.
    pub fn is_non_monotone(&self, n: usize, cap: usize) -> bool {
        let mut prev = self.iteration_time(n, 2);
        for p in 3..=cap {
            let t = self.iteration_time(n, p);
            if t > prev {
                return true;
            }
            prev = t;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fem() -> FemModel {
        FemModel::new(&MachineParams::paper_defaults())
    }

    #[test]
    fn execution_time_is_non_monotone() {
        // The defining §5 phenomenon: past the optimum, more processors
        // hurt.
        let f = fem();
        assert!(f.is_non_monotone(64, 4096));
    }

    #[test]
    fn interior_optimum_matches_continuous_formula() {
        let f = fem();
        for n in [32usize, 64, 128, 256] {
            let cont = f.optimal_processors_continuous(n);
            let exact = f.optimal_processors(n, 100_000) as f64;
            assert!(
                (exact - cont).abs() <= 1.0 + cont * 0.01,
                "n={n}: continuous {cont} vs exact {exact}"
            );
        }
    }

    #[test]
    fn optimum_grows_with_problem_size() {
        let f = fem();
        let p64 = f.optimal_processors(64, 1 << 20);
        let p256 = f.optimal_processors(256, 1 << 20);
        let p1024 = f.optimal_processors(1024, 1 << 20);
        assert!(p64 < p256 && p256 < p1024);
        // √ scaling: quadrupling n multiplies P* by ~4 (n² × 16, √ → ×4).
        let ratio = p1024 as f64 / p256 as f64;
        assert!((ratio - 4.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn beyond_optimum_time_rises() {
        let f = fem();
        let n = 128;
        let p_star = f.optimal_processors(n, 1 << 20);
        let at = f.iteration_time(n, p_star);
        assert!(f.iteration_time(n, p_star * 4) > at);
        assert!(f.iteration_time(n, p_star * 16) > f.iteration_time(n, p_star * 4));
    }

    #[test]
    fn single_processor_pays_no_exchange() {
        let f = fem();
        let t1 = f.iteration_time(100, 1);
        assert!((t1 - f.e_flops * 10_000.0 * f.tfp).abs() < 1e-18);
    }

    #[test]
    fn contrast_with_jacobi_extremal_rule() {
        // For the Jacobi/nearest-neighbour model the paper proves extremal
        // allocation; for CG/all-to-all the optimum is interior. Both facts
        // in one place: the FEM optimum is strictly between the extremes.
        let f = fem();
        let cap = 1 << 14;
        let p = f.optimal_processors(256, cap);
        assert!(p > 1 && p < cap, "interior optimum expected, got {p}");
    }
}
