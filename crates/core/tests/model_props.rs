//! Property tests for the analytic model: convexity, closed forms vs
//! numeric search, monotonicity of the derived quantities.

use parspeed_core::convex::{golden_min, is_unimodal_sampled};
use parspeed_core::minsize::{min_grid_side, BusVariant};
use parspeed_core::{ArchModel, AsyncBus, BusParams, MachineParams, SyncBus, Workload};
use parspeed_stencil::{PartitionShape, Stencil};
use proptest::prelude::*;

fn arb_machine() -> impl Strategy<Value = MachineParams> {
    // Plausible ranges around the calibrated defaults (log-uniform-ish).
    (1.0e-8f64..1.0e-5, 1.0e-7f64..1.0e-5, 0.0f64..1.0e-5).prop_map(|(tfp, b, c)| {
        let mut m = MachineParams::paper_defaults();
        m.tfp = tfp;
        m.bus = BusParams { b, c };
        m
    })
}

proptest! {
    /// Both bus cycle-time curves are unimodal in the area for any
    /// positive parameter set — the convexity §8 leans on.
    #[test]
    fn bus_cycle_times_are_unimodal(m in arb_machine(), n_idx in 0usize..3, shape_idx in 0usize..2) {
        let n = [64usize, 128, 256][n_idx];
        let shape = [PartitionShape::Strip, PartitionShape::Square][shape_idx];
        let w = Workload::new(n, &Stencil::five_point(), shape);
        let hi = (n * n) as f64 - 1.0;
        let sync = SyncBus::new(&m);
        prop_assert!(is_unimodal_sampled(4.0, hi, 800, 1e-15, |a| sync.cycle_time(&w, a)));
        let async_ = AsyncBus::new(&m);
        prop_assert!(is_unimodal_sampled(4.0, hi, 800, 1e-15, |a| async_.cycle_time(&w, a)));
    }

    /// The closed-form optima agree with golden-section search for any
    /// parameter set (strips: eq. 3; squares: the §6.1 cubic).
    #[test]
    fn closed_forms_match_numeric_search(m in arb_machine(), shape_idx in 0usize..2) {
        let n = 128usize;
        let shape = [PartitionShape::Strip, PartitionShape::Square][shape_idx];
        let w = Workload::new(n, &Stencil::five_point(), shape);
        let sync = SyncBus::new(&m);
        let closed = sync.closed_form_optimal_area(&w).unwrap();
        let (numeric, _) = golden_min(1.0, (n * n) as f64, |a| sync.cycle_time(&w, a));
        // Compare achieved cycle times (the curve can be flat near the
        // optimum, so abscissae may differ more than values).
        let c_closed = sync.cycle_time(&w, closed.clamp(1.0, (n * n) as f64));
        let c_numeric = sync.cycle_time(&w, numeric);
        prop_assert!(c_closed <= c_numeric * (1.0 + 1e-6),
            "closed {c_closed} vs numeric {c_numeric}");
    }

    /// Minimal problem sizes grow monotonically with the processor count
    /// and shrink with more compute per point.
    #[test]
    fn min_problem_size_monotonicity(m in arb_machine(), v_idx in 0usize..4) {
        let v = BusVariant::all()[v_idx];
        let mut prev = 0.0;
        for np in [4usize, 8, 16, 32] {
            let n_min = min_grid_side(&m, 6.0, 1.0, np, v);
            prop_assert!(n_min > prev);
            prev = n_min;
        }
        let light = min_grid_side(&m, 6.0, 1.0, 16, v);
        let heavy = min_grid_side(&m, 12.0, 1.0, 16, v);
        prop_assert!(heavy < light);
    }

    /// Optimal unbounded speedup is monotone in the grid side for both
    /// shapes and both bus types.
    #[test]
    fn unbounded_speedup_monotone_in_n(m in arb_machine(), shape_idx in 0usize..2) {
        let shape = [PartitionShape::Strip, PartitionShape::Square][shape_idx];
        let sync = SyncBus::new(&m);
        let async_ = AsyncBus::new(&m);
        let mut prev_s = 0.0;
        let mut prev_a = 0.0;
        for n in [64usize, 128, 256, 512] {
            let w = Workload::new(n, &Stencil::five_point(), shape);
            let s = sync.optimal_speedup_unbounded(&w);
            let a = async_.optimal_speedup_unbounded(&w);
            prop_assert!(s >= prev_s);
            prop_assert!(a >= prev_a);
            prop_assert!(a + 1e-12 >= s, "async {a} worse than sync {s}");
            prev_s = s;
            prev_a = a;
        }
    }

    /// The optimizer respects its budget and reports consistent fields.
    #[test]
    fn optimizer_invariants(m in arb_machine(), n_idx in 0usize..3, cap in 1usize..128) {
        let n = [64usize, 128, 256][n_idx];
        let w = Workload::new(n, &Stencil::five_point(), PartitionShape::Square);
        let opt = SyncBus::new(&m).optimize(&w, parspeed_core::ProcessorBudget::Limited(cap));
        prop_assert!(opt.processors >= 1);
        prop_assert!(opt.processors <= cap.max(1));
        prop_assert!(opt.speedup > 0.0);
        prop_assert!(opt.speedup <= opt.processors as f64 + 1e-9);
        prop_assert!((opt.efficiency - opt.speedup / opt.processors as f64).abs() < 1e-12);
        prop_assert!(opt.cycle_time > 0.0);
    }

    /// The §8 scheduled bus: unimodal in the area, never worse than the
    /// unscheduled bus at the same allocation, never below the bus-work
    /// conservation floor — for any parameter set.
    #[test]
    fn scheduled_bus_sits_between_sync_and_the_work_floor(
        m in arb_machine(),
        n_idx in 0usize..3,
        shape_idx in 0usize..2,
        p in 2usize..128,
    ) {
        use parspeed_core::ScheduledBus;
        let n = [64usize, 128, 256][n_idx];
        let shape = [PartitionShape::Strip, PartitionShape::Square][shape_idx];
        let w = Workload::new(n, &Stencil::five_point(), shape);
        let hi = (n * n) as f64 - 1.0;
        let sched = ScheduledBus::new(&m);
        prop_assert!(is_unimodal_sampled(4.0, hi, 800, 1e-15, |a| sched.cycle_time(&w, a)));
        let area = w.points() / p as f64;
        let t_sched = sched.cycle_time(&w, area);
        let t_sync = SyncBus::new(&m).cycle_time(&w, area);
        prop_assert!(t_sched <= t_sync * (1.0 + 1e-12), "sched {t_sched} > sync {t_sync}");
        // Work conservation: the bus must still move every word.
        let v = w.one_way_words(area);
        let floor = 2.0 * p as f64 * v * m.bus.b;
        prop_assert!(t_sched + 1e-18 >= floor, "sched {t_sched} beats the bus-work floor {floor}");
    }

    /// The scheduled-bus optimizer (interior optimum plus the extremal
    /// candidates — the paper's one-processor "case 3" included) is never
    /// beaten by a brute-force scan over allocations.
    #[test]
    fn scheduled_bus_optimum_is_global(m in arb_machine(), n_idx in 0usize..2) {
        use parspeed_core::{assigned_area, ProcessorBudget, ScheduledBus};
        let n = [64usize, 128][n_idx];
        let w = Workload::new(n, &Stencil::five_point(), PartitionShape::Square);
        let sched = ScheduledBus::new(&m);
        let opt = sched.optimize(&w, ProcessorBudget::Limited(256));
        for p in 1..=256usize {
            let t = sched.cycle_time(&w, assigned_area(&w, p));
            prop_assert!(
                opt.cycle_time <= t * (1.0 + 1e-9),
                "P={p} beats the optimizer: {t} < {}",
                opt.cycle_time
            );
        }
    }

    /// Memory accounting: partition words are non-increasing in the
    /// processor count, min_processors is the exact threshold, and a
    /// memory-constrained optimum never beats the unconstrained one.
    #[test]
    fn memory_budget_invariants(
        m in arb_machine(),
        n_idx in 0usize..3,
        shape_idx in 0usize..2,
        pivot in 2usize..64,
    ) {
        use parspeed_core::{optimize_constrained, MemoryBudget, ProcessorBudget};
        let n = [64usize, 128, 256][n_idx];
        let shape = [PartitionShape::Strip, PartitionShape::Square][shape_idx];
        let w = Workload::new(n, &Stencil::five_point(), shape);
        let mut prev = f64::INFINITY;
        for p in [1usize, 2, 4, 8, 16, 32, 64] {
            let words = MemoryBudget::partition_words(&w, p);
            prop_assert!(words <= prev + 1e-9);
            prev = words;
        }
        let budget = MemoryBudget::words(MemoryBudget::partition_words(&w, pivot));
        let floor = budget.min_processors(&w).unwrap();
        prop_assert!(budget.fits(&w, floor));
        prop_assert!(floor <= pivot);
        if floor > 1 {
            prop_assert!(!budget.fits(&w, floor - 1));
        }
        let bus = SyncBus::new(&m);
        let free = bus.optimize(&w, ProcessorBudget::Limited(64));
        let constrained =
            optimize_constrained(&bus, &w, ProcessorBudget::Limited(64), Some(budget)).unwrap();
        prop_assert!(constrained.speedup <= free.speedup + 1e-9);
        prop_assert!(budget.fits(&w, constrained.processors));
    }
}
