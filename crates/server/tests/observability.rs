//! End-to-end observability: the per-stage histograms account for the
//! time a client actually experiences, the `metrics` and `trace` ops
//! answer well-formed wire records, and turning observation off leaves
//! no residue (and costs no samples).

use parspeed_engine::{jsonl, Engine, Query, Request, Response, SolverKind};
use parspeed_obs::Stage;
use parspeed_server::{Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn heavy(i: usize) -> Query {
    // Distinct CG solves (no two share a cache key), heavy enough that
    // engine exec dominates the end-to-end time.
    Request::solve(31).solver(SolverKind::Cg).tol(1e-10).max_iters(10_000 + i).query()
}

fn roundtrip(addr: SocketAddr, lines: &[&str]) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    for line in lines {
        stream.write_all(line.as_bytes()).expect("write");
        stream.write_all(b"\n").expect("write");
    }
    stream.shutdown(Shutdown::Write).expect("half-close");
    BufReader::new(stream).lines().map(|l| l.expect("read")).collect()
}

/// The deterministic accounting check: one sequential client, zero
/// window, so every stage total is attributable and their sum must
/// (within measurement slack) reproduce the measured end-to-end time.
/// `window` is excluded from the sum — it overlaps the tail of `queue`
/// by construction (both end when the batch fires).
#[test]
fn stage_sums_account_for_end_to_end_time() {
    let n = 12usize;
    let server = Server::start(
        Arc::new(Engine::default()),
        ServerConfig { window: Duration::ZERO, workers: 1, ..ServerConfig::default() },
    );
    let client = server.client();
    let start = Instant::now();
    for i in 0..n {
        match client.call(heavy(i)) {
            Response::Single(Ok(_)) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
    let wall_ns = start.elapsed().as_nanos() as f64;
    let metrics = server.metrics();
    server.shutdown();

    let summary =
        |stage: Stage| metrics.stages.iter().find(|(s, _)| *s == stage).map(|(_, s)| *s).unwrap();
    // Per-request stages saw every request; per-batch stages saw every
    // batch (sequential submission: one request per batch).
    for stage in Stage::ALL {
        assert_eq!(summary(stage).count, n as u64, "{stage:?} sample count");
    }
    let accounted: u64 = [Stage::Queue, Stage::Plan, Stage::Dedup, Stage::Cache, Stage::Exec]
        .iter()
        .chain([Stage::Route].iter())
        .map(|&s| summary(s).total_ns)
        .sum();
    let frac = accounted as f64 / wall_ns;
    assert!(frac <= 1.05, "stages account for more time than passed: {frac:.3}");
    assert!(
        frac >= 0.5,
        "stages miss most of the end-to-end time: {frac:.3} \
         (queue {} plan {} dedup {} cache {} exec {} route {} wall {})",
        summary(Stage::Queue).total_ns,
        summary(Stage::Plan).total_ns,
        summary(Stage::Dedup).total_ns,
        summary(Stage::Cache).total_ns,
        summary(Stage::Exec).total_ns,
        summary(Stage::Route).total_ns,
        wall_ns,
    );
    // Exec dominates for this workload, and the counters agree with the
    // histograms about how much engine time was spent.
    assert!(summary(Stage::Exec).total_ns as f64 > 0.25 * wall_ns);
    let engine_ns = metrics.stats.engine_seconds() * 1e9;
    let exec_ns = summary(Stage::Exec).total_ns as f64;
    assert!(engine_ns >= exec_ns * 0.9, "engine_nanos {engine_ns} vs exec {exec_ns}");
}

#[test]
fn metrics_op_answers_stage_histograms_over_tcp() {
    let mut server = Server::start(Arc::new(Engine::default()), ServerConfig::default());
    let addr = server.listen(("127.0.0.1", 0)).expect("bind");
    // Complete the work on an in-process client first so the TCP probe
    // deterministically sees non-empty histograms.
    let client = server.client();
    for i in 0..5 {
        client.call(heavy(i));
    }
    let replies = roundtrip(addr, &[r#"{"op":"metrics"}"#]);
    assert_eq!(replies.len(), 1);
    let v = jsonl::parse(&replies[0]).unwrap();
    assert_eq!(v.get("op").unwrap().as_str(), Some("metrics"));
    assert_eq!(v.get("version").unwrap().as_usize(), Some(2));
    let stats = v.get("stats").unwrap();
    assert_eq!(stats.get("completed").unwrap().as_usize(), Some(5));
    assert!(stats.get("engine_seconds").unwrap().as_f64().unwrap() > 0.0);
    assert!(stats.get("dedup_factor").unwrap().as_f64().unwrap() >= 1.0);
    let stages = v.get("stages").unwrap();
    for stage in Stage::ALL {
        let s = stages.get(stage.name()).unwrap_or_else(|| panic!("missing {stage:?}"));
        for field in ["count", "total_ns", "max_ns", "p50_ns", "p90_ns", "p99_ns", "p999_ns"] {
            assert!(s.get(field).is_some(), "{stage:?} missing {field}");
        }
        // The TCP probe itself never enters the batcher, so only the
        // five in-process requests are visible.
        assert_eq!(s.get("count").unwrap().as_usize(), Some(5), "{stage:?}");
    }
    server.shutdown();
}

#[test]
fn trace_op_keeps_the_last_n_requests() {
    let mut server = Server::start(
        Arc::new(Engine::default()),
        ServerConfig { trace: 3, ..ServerConfig::default() },
    );
    let addr = server.listen(("127.0.0.1", 0)).expect("bind");
    let client = server.client();
    for i in 0..7 {
        client.call(heavy(i));
    }
    let replies = roundtrip(addr, &[r#"{"op":"trace"}"#]);
    let v = jsonl::parse(&replies[0]).unwrap();
    assert_eq!(v.get("op").unwrap().as_str(), Some("trace"));
    assert_eq!(v.get("capacity").unwrap().as_usize(), Some(3));
    assert_eq!(v.get("kept").unwrap().as_usize(), Some(3));
    let jsonl::Json::Arr(events) = v.get("events").unwrap() else { panic!("events array") };
    // Ring evicted the oldest: the survivors are the last three
    // submissions, oldest first.
    let seqs: Vec<usize> =
        events.iter().map(|e| e.get("seq").unwrap().as_usize().unwrap()).collect();
    assert_eq!(seqs, [4, 5, 6]);
    let mut last_at = 0u64;
    for e in events {
        assert_eq!(e.get("query").unwrap().as_str(), Some("solve"));
        assert!(e.get("cache_hit").is_some());
        assert!(e.get("queue_ns").unwrap().as_f64().unwrap() >= 0.0);
        assert!(e.get("batch_ns").unwrap().as_f64().unwrap() > 0.0);
        let at = e.get("at_ns").unwrap().as_f64().unwrap() as u64;
        assert!(at >= last_at, "trace timestamps go backwards");
        last_at = at;
    }
    server.shutdown();
}

#[test]
fn observe_off_records_nothing_and_disables_tracing() {
    let mut server = Server::start(
        Arc::new(Engine::default()),
        // trace asked for, but observe=false wins: no ring either.
        ServerConfig { observe: false, trace: 64, ..ServerConfig::default() },
    );
    let addr = server.listen(("127.0.0.1", 0)).expect("bind");
    let client = server.client();
    for i in 0..3 {
        client.call(heavy(i));
    }
    let metrics = server.metrics();
    assert!(metrics.stages.iter().all(|(_, s)| s.count == 0), "observe=false recorded samples");
    // The ops still answer (counters are always on), just with empty
    // histograms / no events — and `stats` is untouched by any of this.
    let replies =
        roundtrip(addr, &[r#"{"op":"metrics"}"#, r#"{"op":"trace"}"#, r#"{"op":"stats"}"#]);
    let m = jsonl::parse(&replies[0]).unwrap();
    assert_eq!(m.get("stats").unwrap().get("completed").unwrap().as_usize(), Some(3));
    let t = jsonl::parse(&replies[1]).unwrap();
    assert_eq!(t.get("capacity").unwrap().as_usize(), Some(0));
    assert_eq!(t.get("kept").unwrap().as_usize(), Some(0));
    let s = jsonl::parse(&replies[2]).unwrap();
    assert_eq!(s.get("op").unwrap().as_str(), Some("stats"));
    assert!(s.get("engine_seconds").is_none(), "stats wire shape must stay frozen");
    server.shutdown();
}
