//! Wire robustness over real TCP: malformed JSONL mid-stream answers an
//! error slot on *that* connection only and never poisons the batcher or
//! other clients; v1-versioned lines get the same deprecation path as
//! file mode (accepted, answered in legacy shape, counted); the
//! serving-only `stats` op answers a live telemetry snapshot.

use parspeed_engine::jsonl;
use parspeed_engine::Engine;
use parspeed_server::{Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn start_tcp_server() -> (Server, SocketAddr) {
    let mut server = Server::start(
        Arc::new(Engine::default()),
        ServerConfig {
            window: Duration::from_micros(300),
            max_batch: 64,
            workers: 2,
            queue_depth: 4096,
            ..ServerConfig::default()
        },
    );
    let addr = server.listen(("127.0.0.1", 0)).expect("bind");
    (server, addr)
}

/// Writes `lines`, half-closes, and reads every reply line until the
/// server closes its side — i.e. the full, ordered reply stream.
fn roundtrip(addr: SocketAddr, lines: &[&str]) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    for line in lines {
        stream.write_all(line.as_bytes()).expect("write");
        stream.write_all(b"\n").expect("write");
    }
    stream.shutdown(Shutdown::Write).expect("half-close");
    BufReader::new(stream).lines().map(|l| l.expect("read")).collect()
}

const GOOD_V2: &str = r#"{"op":"table1","version":2,"n":64,"stencil":"5pt"}"#;
const GOOD_V1: &str = r#"{"op":"minsize","variant":"sync-square","e":6.0,"k":1.0,"procs":14}"#;

#[test]
fn malformed_line_mid_stream_poisons_nothing() {
    let (server, addr) = start_tcp_server();

    // Client A interleaves garbage between good lines; client B sends
    // only good lines, concurrently.
    let a = std::thread::spawn(move || {
        roundtrip(
            addr,
            &[GOOD_V2, "this is not json", GOOD_V2, r#"{"op":"frobnicate","version":2}"#, GOOD_V2],
        )
    });
    let b = std::thread::spawn(move || roundtrip(addr, &[GOOD_V2; 5]));
    let a = a.join().unwrap();
    let b = b.join().unwrap();

    assert_eq!(a.len(), 5, "connection A lost replies: {a:?}");
    for (i, line) in a.iter().enumerate() {
        let v = jsonl::parse(line).expect("reply is JSON");
        match i {
            1 => {
                // Raw garbage: not JSON at all, so there is no version
                // field to honor — the reply answers in the *current*
                // wire shape (version + machine-readable error_kind),
                // carrying this connection's 1-based line number. It
                // used to answer in the legacy v1 shape, which stranded
                // v2 clients without the error_kind machinery.
                assert_eq!(v.get("ok"), Some(&jsonl::Json::Bool(false)), "{line}");
                assert_eq!(v.get("version").unwrap().as_usize(), Some(2), "{line}");
                assert_eq!(v.get("error_kind").unwrap().as_str(), Some("parse"), "{line}");
                assert_eq!(v.get("line").unwrap().as_usize(), Some(2), "{line}");
            }
            3 => {
                // Well-formed JSON, unknown op, declared v2 → v2 error
                // shape with the machine-readable kind.
                assert_eq!(v.get("ok"), Some(&jsonl::Json::Bool(false)), "{line}");
                assert_eq!(v.get("error_kind").unwrap().as_str(), Some("parse"), "{line}");
                assert_eq!(v.get("line").unwrap().as_usize(), Some(4), "{line}");
            }
            _ => {
                assert_eq!(
                    v.get("ok"),
                    Some(&jsonl::Json::Bool(true)),
                    "slot {i} poisoned: {line}"
                );
                assert_eq!(v.get("op").unwrap().as_str(), Some("table1"));
            }
        }
    }
    assert_eq!(b.len(), 5, "connection B lost replies: {b:?}");
    for line in &b {
        let v = jsonl::parse(line).expect("reply is JSON");
        assert_eq!(v.get("ok"), Some(&jsonl::Json::Bool(true)), "connection B poisoned: {line}");
    }

    let stats = server.shutdown();
    // 8 good queries answered; A's two bad lines answered outside the
    // batcher and never counted as admitted work.
    assert_eq!(stats.completed, 8);
    assert_eq!(stats.submitted, 8);
}

#[test]
fn v1_lines_over_tcp_get_the_file_mode_deprecation_path() {
    let (server, addr) = start_tcp_server();
    let replies = roundtrip(addr, &[GOOD_V1, GOOD_V2, GOOD_V1]);
    assert_eq!(replies.len(), 3);

    // v1 requests answer in the legacy v1 shape: no version field, no
    // error_kind machinery — exactly what `parspeed batch` renders.
    for line in [&replies[0], &replies[2]] {
        let v = jsonl::parse(line).unwrap();
        assert_eq!(v.get("version"), None, "v1 reply grew a version field: {line}");
        assert_eq!(v.get("op").unwrap().as_str(), Some("minsize"));
        assert_eq!(v.get("ok"), Some(&jsonl::Json::Bool(true)));
    }
    // The v2 line on the same connection still answers in v2 shape.
    let v = jsonl::parse(&replies[1]).unwrap();
    assert_eq!(v.get("version").unwrap().as_usize(), Some(2));

    let stats = server.shutdown();
    assert_eq!(stats.v1_lines, 2, "deprecated lines not counted: {stats}");
}

#[test]
fn stats_op_answers_a_live_snapshot_without_entering_the_batcher() {
    let (server, addr) = start_tcp_server();
    let replies = roundtrip(addr, &[GOOD_V2, r#"{"op":"stats"}"#]);
    assert_eq!(replies.len(), 2);
    let v = jsonl::parse(&replies[1]).unwrap();
    assert_eq!(v.get("op").unwrap().as_str(), Some("stats"));
    assert_eq!(v.get("version").unwrap().as_usize(), Some(2));
    // The stats line reflects this connection's own earlier request.
    assert_eq!(v.get("submitted").unwrap().as_usize(), Some(1));
    assert_eq!(v.get("connections").unwrap().as_usize(), Some(1));
    assert!(v.get("avg_batch_fill").unwrap().as_f64().is_some());
    assert_eq!(v.get("draining"), Some(&jsonl::Json::Bool(false)));
    server.shutdown();
}

#[test]
fn unsupported_future_version_answers_in_its_slot_only() {
    let (server, addr) = start_tcp_server();
    let replies =
        roundtrip(addr, &[r#"{"op":"table1","version":7,"n":64,"stencil":"5pt"}"#, GOOD_V2]);
    assert_eq!(replies.len(), 2);
    let v = jsonl::parse(&replies[0]).unwrap();
    assert_eq!(v.get("ok"), Some(&jsonl::Json::Bool(false)));
    assert!(replies[0].contains("version"), "{}", replies[0]);
    let v = jsonl::parse(&replies[1]).unwrap();
    assert_eq!(v.get("ok"), Some(&jsonl::Json::Bool(true)));
    server.shutdown();
}

#[test]
fn huge_deadline_budget_saturates_instead_of_killing_the_connection() {
    let (server, addr) = start_tcp_server();
    // `Instant + u64::MAX ms` overflows; before the `checked_add` clamp
    // this panicked the per-connection reader (thread frontend) or the
    // whole event loop, silently dropping the connection — and every
    // connection after it. Now an unrepresentable budget means "no
    // deadline": the request evaluates, and later lines still answer.
    let huge = format!(
        r#"{{"op":"table1","version":2,"n":64,"stencil":"5pt","deadline_ms":{}}}"#,
        u64::MAX
    );
    let almost = format!(
        r#"{{"op":"table1","version":2,"n":64,"stencil":"5pt","deadline_ms":{}}}"#,
        u64::MAX - 1
    );
    let replies = roundtrip(addr, &[&huge, &almost, GOOD_V2]);
    assert_eq!(replies.len(), 3, "connection died on the huge deadline: {replies:?}");
    for line in &replies {
        let v = jsonl::parse(line).expect("reply is JSON");
        assert_eq!(v.get("ok"), Some(&jsonl::Json::Bool(true)), "{line}");
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed, 3);
}

#[test]
fn health_keeps_the_frozen_prefix_and_appends_brownout() {
    let (server, addr) = start_tcp_server();
    let replies = roundtrip(addr, &[r#"{"op":"health","version":2}"#]);
    assert_eq!(replies.len(), 1, "{replies:?}");
    let jsonl::Json::Obj(fields) = jsonl::parse(&replies[0]).unwrap() else {
        panic!("health is not an object: {}", replies[0]);
    };
    // The original six fields stay first, in order — positional probes
    // of the pre-brownout record keep working; new fields only append.
    let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        ["version", "op", "ok", "uptime_seconds", "draining", "shard", "brownout"],
        "{}",
        replies[0]
    );
    assert!(replies[0].contains(r#""brownout":false"#), "{}", replies[0]);
    server.shutdown();
}
