//! Admission control and drain: queue-depth saturation answers the
//! documented `overloaded` error kind in the request's own reply slot,
//! the server recovers to full throughput after the burst (no stuck
//! permits), and drain-on-shutdown flushes every accepted request.

use parspeed_engine::{ArchKind, Engine, Query, Request, Response};
use parspeed_server::{Server, ServerConfig};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn optimize(n: usize) -> Query {
    Request::optimize(ArchKind::SyncBus, n).procs(32).query()
}

/// Deterministic saturation: the window is far longer than the test, so
/// nothing fires until drain — the queue provably fills to exactly
/// `queue_depth` and every request beyond it gets the overload answer,
/// held in sequence order behind the accepted requests' replies.
#[test]
fn saturation_answers_overloaded_in_slot_and_drain_flushes() {
    let started = Instant::now();
    let server = Server::start(
        Arc::new(Engine::default()),
        ServerConfig {
            window: Duration::from_secs(600),
            max_batch: 64,
            workers: 1,
            queue_depth: 3,
            ..ServerConfig::default()
        },
    );
    let client = server.client();
    for i in 0..6 {
        client.submit(optimize(64 + i));
    }
    let live = server.stats();
    assert_eq!(live.submitted, 6);
    assert_eq!(live.overloaded, 3, "requests 4..6 must be refused: {live}");
    assert_eq!(live.queue_high_watermark, 3);
    assert_eq!(live.completed, 0, "the 600s window must not have fired yet");

    // Drain must fire the pending batch immediately, not wait the window.
    let stats = server.shutdown();
    assert!(started.elapsed() < Duration::from_secs(60), "drain waited for the window");
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.overloaded, 3);

    for i in 0..6u64 {
        let (seq, response) = client.recv();
        assert_eq!(seq, i, "replies out of order");
        match (i, response) {
            (0..=2, Response::Single(Ok(_))) => {}
            (3..=5, Response::Invalid(e)) => {
                assert_eq!(e.kind(), "overloaded");
                assert!(e.to_string().contains("queue is full"), "{e}");
            }
            (i, other) => panic!("slot {i}: unexpected {other:?}"),
        }
    }
}

/// After a saturating burst the server must return to answering
/// everything — refused requests leave no stuck permits behind.
#[test]
fn server_recovers_full_throughput_after_a_burst() {
    let server = Server::start(
        Arc::new(Engine::default()),
        ServerConfig {
            window: Duration::from_micros(300),
            max_batch: 64,
            workers: 2,
            queue_depth: 2,
            ..ServerConfig::default()
        },
    );
    let threads = 4usize;
    let per_thread = 25usize;
    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let client = server.client();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..per_thread {
                    client.submit(optimize(64 + (t * per_thread + i) % 7));
                }
                let mut ok = 0usize;
                let mut overloaded = 0usize;
                for i in 0..per_thread {
                    let (seq, response) = client.recv();
                    assert_eq!(seq, i as u64, "thread {t} replies out of order");
                    match response {
                        Response::Single(Ok(_)) => ok += 1,
                        Response::Invalid(e) if e.kind() == "overloaded" => overloaded += 1,
                        other => panic!("thread {t}: unexpected {other:?}"),
                    }
                }
                (ok, overloaded)
            })
        })
        .collect();
    let mut ok = 0usize;
    let mut overloaded = 0usize;
    for handle in handles {
        let (o, v) = handle.join().expect("burst thread");
        ok += o;
        overloaded += v;
    }
    assert_eq!(ok + overloaded, threads * per_thread, "a reply went missing in the burst");

    // Recovery: paced traffic (one in flight at a time) can never see a
    // full queue again — every request must now succeed.
    let client = server.client();
    for i in 0..20 {
        match client.call(optimize(64 + i)) {
            Response::Single(Ok(_)) => {}
            other => panic!("post-burst request {i} failed: {other:?}"),
        }
    }
    let stats = server.shutdown();
    assert_eq!(stats.submitted, (threads * per_thread + 20) as u64);
    assert_eq!(stats.completed, (ok + 20) as u64);
    assert_eq!(stats.overloaded, overloaded as u64);
}

/// Regression: drain-on-shutdown flushes all accepted requests, even
/// when their window would otherwise hold them far past the shutdown.
#[test]
fn drain_flushes_all_accepted_requests() {
    let started = Instant::now();
    let server = Server::start(
        Arc::new(Engine::default()),
        ServerConfig {
            window: Duration::from_secs(600),
            max_batch: 512,
            workers: 2,
            queue_depth: 4096,
            ..ServerConfig::default()
        },
    );
    let clients: Vec<_> = (0..3).map(|_| server.client()).collect();
    for (c, client) in clients.iter().enumerate() {
        for i in 0..10 {
            client.submit(optimize(64 + c * 10 + i));
        }
    }
    let stats = server.shutdown();
    assert_eq!(stats.submitted, 30);
    assert_eq!(stats.completed, 30, "drain lost accepted requests: {stats}");
    assert_eq!(stats.overloaded, 0);
    for (c, client) in clients.iter().enumerate() {
        for i in 0..10u64 {
            let (seq, response) = client.recv();
            assert_eq!(seq, i);
            assert!(matches!(response, Response::Single(Ok(_))), "client {c} slot {i} not flushed");
        }
    }
    assert!(started.elapsed() < Duration::from_secs(60), "drain waited for the window");
}
