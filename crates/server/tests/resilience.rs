//! The server's failure semantics: deadlines answered in-slot, the
//! worker panic shield, cache-only brownout degradation, and the
//! deterministic fault hook — all under the same contract as overload:
//! every admitted request is answered, in its own reply slot, and the
//! server survives.

use parspeed_chaos::FaultPlan;
use parspeed_engine::{ArchKind, Engine, Query, Request, Response};
use parspeed_server::{BrownoutConfig, Server, ServerConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn optimize(n: usize) -> Query {
    Request::optimize(ArchKind::SyncBus, n).procs(32).query()
}

/// A request whose deadline expires while it queues answers the
/// `deadline_exceeded` kind in its own slot — the connection stays up
/// and the next request answers normally.
#[test]
fn expired_deadline_answers_in_slot_and_poisons_nothing() {
    // One worker, long window: the deadline provably expires in-queue.
    let server = Server::start(
        Arc::new(Engine::default()),
        ServerConfig { window: Duration::from_millis(120), workers: 1, ..ServerConfig::default() },
    );
    let client = server.client();
    let seq = client.submit_with_deadline(optimize(64), Some(Instant::now()));
    let (got, response) = client.recv();
    assert_eq!(got, seq);
    match response {
        Response::Invalid(e) => {
            assert_eq!(e.kind(), "deadline_exceeded");
            assert!(e.to_string().contains("deadline"), "{e}");
        }
        other => panic!("unexpected {other:?}"),
    }
    // Nothing is poisoned: an undeadlined request still answers.
    assert!(matches!(client.call(optimize(64)), Response::Single(Ok(_))));

    let missed = server.resilience().snapshot().deadline_missed;
    assert_eq!(missed, 1);
    let stats = server.shutdown();
    // Accounting holds: the missed slot still counts as answered.
    assert_eq!(stats.submitted, stats.completed + stats.overloaded);
}

/// A generous deadline never fires: the reply is the real result.
#[test]
fn generous_deadline_is_invisible() {
    let server = Server::start(Arc::new(Engine::default()), ServerConfig::default());
    let client = server.client();
    let response =
        client.call_with_deadline(optimize(256), Instant::now() + Duration::from_secs(60));
    assert!(matches!(response, Response::Single(Ok(_))), "{response:?}");
    assert_eq!(server.resilience().snapshot().deadline_missed, 0);
    server.shutdown();
}

/// An injected worker panic mid-batch is caught by the shield: every
/// slot of the doomed batch answers `internal`, the worker survives,
/// and the very next batch serves normally.
#[test]
fn worker_panic_answers_every_slot_and_the_worker_survives() {
    let server = Server::start(
        Arc::new(Engine::default()),
        ServerConfig { workers: 1, ..ServerConfig::default() },
    );
    let plan = Arc::new(FaultPlan::parse("panic@1", 7).expect("plan parses"));
    server.install_fault_plan(Some(Arc::clone(&plan)));

    let client = server.client();
    match client.call(optimize(64)) {
        Response::Invalid(e) => {
            assert_eq!(e.kind(), "internal");
            assert!(e.to_string().contains("panicked"), "{e}");
        }
        other => panic!("unexpected {other:?}"),
    }
    // The lone worker survived the panic: it still serves.
    assert!(matches!(client.call(optimize(128)), Response::Single(Ok(_))));

    assert_eq!(server.resilience().snapshot().worker_panics, 1);
    let events = plan.events();
    assert!(events.iter().any(|e| e.contains("worker panic caught")), "{events:?}");
    let stats = server.shutdown();
    assert_eq!(stats.submitted, stats.completed + stats.overloaded);
}

/// Under queue pressure past the enter watermark, brownout sheds cold
/// requests as `overloaded` while cached ones still answer; once the
/// queue falls to the exit watermark, full service resumes.
#[test]
fn brownout_serves_warm_keys_and_sheds_cold_ones() {
    let engine = Arc::new(Engine::default());
    // Warm one key through the engine directly.
    engine.run_batch(&[optimize(256)]);

    let server = Server::start(
        Arc::clone(&engine) as Arc<dyn parspeed_engine::Service + Send + Sync>,
        ServerConfig {
            // A window long enough that submissions pile up in-queue.
            window: Duration::from_secs(600),
            workers: 1,
            brownout: Some(BrownoutConfig { enter: 2, exit: 0 }),
            ..ServerConfig::default()
        },
    );
    let client = server.client();
    // Two cold-but-admitted requests reach the enter watermark.
    client.submit(optimize(300));
    client.submit(optimize(301));
    // The queue now sits at the watermark: the next submission flips
    // brownout on. A cold key sheds...
    client.submit(optimize(302));
    // ...while the warm key still answers (admitted through brownout).
    client.submit(optimize(256));

    let snap = server.resilience().snapshot();
    assert_eq!(snap.shed, 1, "exactly the cold request sheds");
    let metrics = server.metrics();
    assert!(metrics.brownout, "brownout flag rides the metrics snapshot");
    assert_eq!(metrics.resilience.shed, 1);

    let stats = server.shutdown();
    assert_eq!(stats.overloaded, 1);
    let mut kinds = Vec::new();
    for _ in 0..4 {
        let (_, response) = client.recv();
        kinds.push(match response {
            Response::Single(Ok(_)) => "ok",
            Response::Invalid(e) if e.kind() == "overloaded" => {
                assert!(e.to_string().contains("brownout"), "{e}");
                "shed"
            }
            other => panic!("unexpected {other:?}"),
        });
    }
    assert_eq!(kinds, ["ok", "ok", "shed", "ok"]);
}

/// The fault plan's event trace is deterministic: the same seed and the
/// same traffic produce the same trace, twice.
#[test]
fn fault_plan_trace_is_reproducible() {
    let run = || {
        let server = Server::start(
            Arc::new(Engine::default()),
            ServerConfig { workers: 1, ..ServerConfig::default() },
        );
        let plan = Arc::new(FaultPlan::parse("delay:0:1@2,panic@4", 99).expect("plan parses"));
        server.install_fault_plan(Some(Arc::clone(&plan)));
        let client = server.client();
        for i in 0..5 {
            let _ = client.call(optimize(64 + i));
        }
        server.shutdown();
        plan.trace()
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "same seed + same traffic must replay identically");
    assert!(first.contains("armed worker panic"), "{first}");
    assert!(first.contains("armed 1 ms delay"), "{first}");
}
