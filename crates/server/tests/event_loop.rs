//! The event-loop frontend under load, over real TCP: one loop thread
//! holds a thousand concurrent connections at flat memory (the whole
//! point of replacing thread-per-connection readiness with threads), a
//! stalled reader is shed with in-slot `overloaded` answers instead of
//! stalling the loop or its neighbours, and the legacy thread frontend
//! behind `--io threads` still speaks the identical wire.

use parspeed_engine::jsonl;
use parspeed_engine::{jsonl::render_response, ArchKind, Engine, Query, Request, WIRE_VERSION};
use parspeed_server::{EventLoopConfig, IoModel, Server, ServerConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn start_server(cfg: ServerConfig) -> (Server, SocketAddr) {
    let mut server = Server::start(Arc::new(Engine::default()), cfg);
    let addr = server.listen(("127.0.0.1", 0)).expect("bind");
    (server, addr)
}

fn base_config() -> ServerConfig {
    ServerConfig {
        window: Duration::from_micros(300),
        max_batch: 128,
        workers: 2,
        queue_depth: 65_536,
        ..ServerConfig::default()
    }
}

/// Reads a `/proc/self/status` field (kB for the Vm* lines).
fn proc_status(field: &str) -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("/proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix(field))
        .and_then(|rest| rest.trim_start_matches(':').split_whitespace().next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no {field} in /proc/self/status"))
}

/// The three distinct queries every soak connection sends, in order —
/// distinct so that reply *content* proves per-connection ordering, not
/// just reply *count*.
fn soak_queries() -> Vec<Query> {
    [64usize, 128, 256]
        .iter()
        .map(|&n| Request::optimize(ArchKind::SyncBus, n).procs(64).query())
        .collect()
}

fn soak_lines() -> Vec<String> {
    [64usize, 128, 256]
        .iter()
        .map(|&n| {
            format!(
                r#"{{"op":"optimize","version":2,"arch":"sync-bus","n":{n},"stencil":"5pt","shape":"square","procs":64}}"#
            )
        })
        .collect()
}

/// One loop thread, a thousand live connections, zero dropped replies,
/// byte-exact per-connection ordering, and flat memory while the tail
/// 900 connections are served. Quick mode: small requests, heavy dedup,
/// so the soak is load on the *frontend*, not the engine.
#[test]
fn soak_one_thousand_connections_flat_memory_no_drops() {
    const CONNS: usize = 1000;
    let (server, addr) = start_server(base_config());

    // The serial engine renders the reference replies: the soak must be
    // bit-identical to it, per connection, in order.
    let engine = Engine::default();
    let queries = soak_queries();
    let expected: Vec<String> = queries
        .iter()
        .map(|q| {
            let response = engine.run_batch(std::slice::from_ref(q)).responses.remove(0);
            render_response(q, &response, WIRE_VERSION, 1)
        })
        .collect();
    let lines = soak_lines();

    // Phase 1: open every connection and write its full request stream.
    // Requests are small (three ~100-byte lines per connection) so the
    // writes never fill a socket buffer and never deadlock against the
    // unread replies.
    let mut streams = Vec::with_capacity(CONNS);
    for i in 0..CONNS {
        let mut stream = TcpStream::connect(addr).unwrap_or_else(|e| panic!("connect {i}: {e}"));
        for line in &lines {
            stream.write_all(line.as_bytes()).expect("write");
            stream.write_all(b"\n").expect("write");
        }
        stream.shutdown(Shutdown::Write).expect("half-close");
        streams.push(stream);
    }

    // A thousand concurrent connections on the default frontend must
    // not mean two thousand frontend threads. The whole process —
    // harness, workers, and every *other* test running in this binary —
    // stays far below what thread-per-connection would need.
    let threads = proc_status("Threads");
    assert!(
        threads < 300,
        "{threads} threads while {CONNS} connections are open — \
         thread-per-connection is back"
    );

    // Phase 2: drain the first 100 connections, then measure RSS, then
    // drain the remaining 900. Serving those 900 reuses per-connection
    // buffers already sized by the first wave: memory stays flat.
    let drain = |stream: &mut TcpStream, i: usize| {
        let replies: Vec<String> =
            BufReader::new(stream).lines().map(|l| l.expect("read")).collect();
        assert_eq!(replies.len(), lines.len(), "connection {i} dropped replies: {replies:?}");
        for (j, (got, want)) in replies.iter().zip(&expected).enumerate() {
            assert_eq!(got, want, "connection {i}, reply {j} out of order or corrupted");
        }
    };
    for (i, stream) in streams.iter_mut().take(100).enumerate() {
        drain(stream, i);
    }
    let rss_after_first_wave = proc_status("VmRSS");
    for (i, stream) in streams.iter_mut().enumerate().skip(100) {
        drain(stream, i);
    }
    let rss_after_soak = proc_status("VmRSS");
    let growth_kib = rss_after_soak.saturating_sub(rss_after_first_wave);
    assert!(
        growth_kib < 64 * 1024,
        "RSS grew {growth_kib} KiB while serving the tail 900 connections \
         ({rss_after_first_wave} -> {rss_after_soak} KiB) — per-connection state is not flat"
    );
    drop(streams);

    let stats = server.shutdown();
    assert_eq!(stats.completed, (CONNS * lines.len()) as u64, "dropped work: {stats}");
    assert_eq!(stats.overloaded, 0, "soak shed requests: {stats}");
}

/// A client that stops reading its replies gets *shed*, not serviced
/// into an unbounded buffer and not stalled into a dead loop: once its
/// write backlog crosses the shed watermark, new engine-bound lines
/// answer `overloaded` in their own slots, a neighbouring connection
/// keeps full round-trip service, and when the stalled client finally
/// reads, every reply — real and shed alike — arrives in input order.
#[test]
fn slow_reader_is_shed_as_overloaded_without_stalling_others() {
    // Watermarks far apart: reads never pause (stop is above the whole
    // backlog this test can build), so every line is *parsed* and the
    // shed path — not the read-pause path — is what answers.
    let (server, addr) = start_server(ServerConfig {
        event_loop: EventLoopConfig {
            shed_watermark: 64 * 1024,
            stop_watermark: 64 * 1024 * 1024,
            ..EventLoopConfig::default()
        },
        ..base_config()
    });

    // Loopback TCP absorbs ~4 MiB in kernel buffers before the server's
    // own write buffer backs up; ~16k table1 replies (~550 bytes each,
    // one engine evaluation thanks to dedup) build ~9 MiB — the backlog
    // lands well past the shed watermark no matter how the kernel
    // autotunes.
    const BURST1: usize = 16_000;
    const BURST2: usize = 5;
    let request = r#"{"op":"table1","version":2,"n":64,"stencil":"5pt"}"#;

    let mut slow = TcpStream::connect(addr).expect("connect slow");
    let mut burst = String::new();
    for _ in 0..BURST1 {
        burst.push_str(request);
        burst.push('\n');
    }
    slow.write_all(burst.as_bytes()).expect("write burst 1");

    // A healthy neighbour polls `stats` round-trips the whole time the
    // slow client's backlog grows — the loop never stalls on the
    // blocked socket. Poll until every burst-1 line is answered:
    // `completed` counts engine answers, `overloaded` counts lines the
    // backlog shed mid-flood once it crossed the watermark (shedding
    // *during* the burst is the mechanism working, not a failure).
    let mut healthy = TcpStream::connect(addr).expect("connect healthy");
    let mut healthy_reader = BufReader::new(healthy.try_clone().expect("clone"));
    let poll_stats = |w: &mut TcpStream, r: &mut BufReader<TcpStream>| -> jsonl::Json {
        w.write_all(b"{\"op\":\"stats\"}\n").expect("write stats");
        let mut line = String::new();
        r.read_line(&mut line).expect("read stats");
        jsonl::parse(&line).expect("stats is JSON")
    };
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stats = poll_stats(&mut healthy, &mut healthy_reader);
        let completed = stats.get("completed").unwrap().as_usize().unwrap();
        let overloaded = stats.get("overloaded").unwrap().as_usize().unwrap();
        if completed + overloaded == BURST1 {
            break;
        }
        assert!(Instant::now() < deadline, "burst 1 never fully answered: {stats:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
    // The wake that delivered the last reply also pumps it into the
    // connection's write buffer; one tick of margin makes sure the
    // backlog accounting the shed verdict reads is settled.
    std::thread::sleep(Duration::from_millis(100));

    // Burst 2 on the stalled connection: every line must be refused
    // in-slot with the machine-readable `overloaded` kind — the reply
    // names the unread backlog, not a queue, as the reason.
    let mut burst2 = String::new();
    for _ in 0..BURST2 {
        burst2.push_str(request);
        burst2.push('\n');
    }
    slow.write_all(burst2.as_bytes()).expect("write burst 2");
    slow.shutdown(Shutdown::Write).expect("half-close");

    // The neighbour still has full service while the slow client is
    // backed up — shedding is per-connection, not global.
    let stats = poll_stats(&mut healthy, &mut healthy_reader);
    assert_eq!(stats.get("op").unwrap().as_str(), Some("stats"));
    healthy.shutdown(Shutdown::Write).expect("half-close healthy");

    // The slow client finally reads: one reply per line, in input
    // order, none lost. Burst 1 is a mix — real answers until the
    // backlog crossed the watermark, in-slot sheds after — and burst 2
    // is shed entirely (the backlog was still unread when it arrived).
    let replies: Vec<String> = BufReader::new(slow).lines().map(|l| l.expect("read")).collect();
    assert_eq!(replies.len(), BURST1 + BURST2, "lost replies: got {}", replies.len());
    let mut real = 0usize;
    let mut shed = 0usize;
    for (i, line) in replies.iter().enumerate() {
        // Real answers and sheds may interleave mid-flood (the verdict
        // tracks the live backlog, which breathes as the socket drains)
        // — the slot numbers below are what pin the ordering.
        if line.contains(r#""ok":true"#) {
            real += 1;
            continue;
        }
        let v = jsonl::parse(line).expect("reply is JSON");
        assert_eq!(
            v.get("error_kind").unwrap().as_str(),
            Some("overloaded"),
            "reply {i} has the wrong kind: {line}"
        );
        // Slot numbers prove the shed answers sit exactly where their
        // requests were.
        assert_eq!(v.get("line").unwrap().as_usize(), Some(i + 1), "reply {i}: {line}");
        let msg = v.get("error").unwrap().as_str().unwrap_or_default();
        assert!(msg.contains("write buffer full"), "shed reason does not name the backlog: {line}");
        shed += 1;
    }
    assert!(real > 0, "nothing was served before the backlog built");
    assert!(shed >= BURST2, "burst 2 was admitted despite the unread backlog");
    assert_eq!(real + shed, BURST1 + BURST2);
    // Burst 2 specifically — sent after the backlog was known unread —
    // must have been shed to the last line.
    for (i, line) in replies.iter().skip(BURST1).enumerate() {
        assert!(
            line.contains(r#""error_kind":"overloaded""#),
            "burst-2 line {i} was admitted despite the backlog: {line}"
        );
    }

    let stats = server.shutdown();
    assert_eq!(stats.completed, real as u64, "{stats}");
    assert_eq!(stats.overloaded, shed as u64, "{stats}");
}

/// An oversize request line answers a parse error in its slot and the
/// connection keeps working — the loop discards to the next newline
/// instead of buffering without bound or killing the stream.
#[test]
fn oversize_line_answers_in_slot_and_connection_survives() {
    let (server, addr) = start_server(ServerConfig {
        event_loop: EventLoopConfig { max_line: 4096, ..EventLoopConfig::default() },
        ..base_config()
    });
    let mut stream = TcpStream::connect(addr).expect("connect");
    let huge = format!("{{\"op\":\"table1\",\"pad\":\"{}\"\n", "x".repeat(64 * 1024));
    stream.write_all(huge.as_bytes()).expect("write oversize");
    stream
        .write_all(b"{\"op\":\"table1\",\"version\":2,\"n\":64,\"stencil\":\"5pt\"}\n")
        .expect("write good");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let replies: Vec<String> = BufReader::new(stream).lines().map(|l| l.expect("read")).collect();
    assert_eq!(replies.len(), 2, "{replies:?}");
    let v = jsonl::parse(&replies[0]).expect("reply is JSON");
    assert_eq!(v.get("ok"), Some(&jsonl::Json::Bool(false)), "{}", replies[0]);
    assert_eq!(v.get("error_kind").unwrap().as_str(), Some("parse"), "{}", replies[0]);
    assert_eq!(v.get("line").unwrap().as_usize(), Some(1), "{}", replies[0]);
    assert!(replies[0].contains("4096-byte limit"), "{}", replies[0]);
    let v = jsonl::parse(&replies[1]).expect("reply is JSON");
    assert_eq!(v.get("ok"), Some(&jsonl::Json::Bool(true)), "{}", replies[1]);
    server.shutdown();
}

/// `--io threads` keeps the legacy thread-per-connection frontend alive
/// behind the flag, speaking the identical wire: same replies, same
/// error slots, same serving-only ops.
#[test]
fn threads_io_model_speaks_the_identical_wire() {
    let (server, addr) = start_server(ServerConfig { io: IoModel::Threads, ..base_config() });

    let mut stream = TcpStream::connect(addr).expect("connect");
    for line in soak_lines() {
        stream.write_all(line.as_bytes()).expect("write");
        stream.write_all(b"\n").expect("write");
    }
    stream.write_all(b"not json\n{\"op\":\"stats\"}\n").expect("write tail");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let replies: Vec<String> = BufReader::new(stream).lines().map(|l| l.expect("read")).collect();
    assert_eq!(replies.len(), 5, "{replies:?}");

    let engine = Engine::default();
    for (i, q) in soak_queries().iter().enumerate() {
        let response = engine.run_batch(std::slice::from_ref(q)).responses.remove(0);
        assert_eq!(replies[i], render_response(q, &response, WIRE_VERSION, i + 1));
    }
    // The malformed-line fix applies to both frontends: current wire
    // shape, not legacy v1.
    let v = jsonl::parse(&replies[3]).expect("reply is JSON");
    assert_eq!(v.get("version").unwrap().as_usize(), Some(2), "{}", replies[3]);
    assert_eq!(v.get("error_kind").unwrap().as_str(), Some("parse"), "{}", replies[3]);
    let v = jsonl::parse(&replies[4]).expect("reply is JSON");
    assert_eq!(v.get("op").unwrap().as_str(), Some("stats"), "{}", replies[4]);
    server.shutdown();
}

/// Draining with a half-written reply stream flushes and closes clean
/// (EOF), never a mid-line reset — the event loop's drain path honours
/// the same contract the thread frontend had.
#[test]
fn shutdown_flushes_open_event_loop_connections() {
    let (server, addr) = start_server(base_config());
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"{\"op\":\"table1\",\"version\":2,\"n\":64,\"stencil\":\"5pt\"}\n")
        .expect("write");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut first = String::new();
    reader.read_line(&mut first).expect("first reply");
    assert!(first.contains(r#""ok":true"#), "{first}");

    let done = std::thread::spawn(move || server.shutdown());
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("read to EOF");
    // Whatever arrived after the drain began is whole lines, not a
    // torn reply.
    if !rest.is_empty() {
        assert_eq!(rest[rest.len() - 1], b'\n', "torn reply at drain: {rest:?}");
    }
    done.join().expect("shutdown");
}
