//! Deterministic concurrency harness: a scripted multi-client driver.
//!
//! Each script is derived from a seed (client count, barrier-staged
//! submission waves, per-wave request counts, query parameters), so a
//! failure replays exactly. Every query is parameterized uniquely per
//! `(client, tag)` slot, and the expected answer for each slot is
//! computed serially on a reference engine up front — so the assertions
//! pin all three serving guarantees at once:
//!
//! * **complete** — every client receives exactly one reply per request;
//! * **per-connection ordered** — replies arrive in submission order
//!   (sequence numbers 0, 1, 2, … with no gap and no swap);
//! * **no cross-client slot leakage** — the reply in slot `(client,
//!   seq)` answers *that* slot's query; any routing mix-up surfaces as a
//!   value mismatch because no two slots share a query.

use parspeed_engine::{ArchKind, Engine, Query, Request, Response};
use parspeed_server::{Server, ServerConfig};
use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Deterministic script randomness (splitmix-style LCG).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// The query for one `(client, tag)` slot. The grid side is unique per
/// slot (tags stay below 101), so two different slots can never share an
/// answer — a leaked or swapped reply is always a visible mismatch.
fn query_for(client: usize, tag: usize) -> Query {
    assert!(tag < 101);
    Request::optimize(ArchKind::SyncBus, 64 + (client * 101 + tag)).procs(32).query()
}

/// Runs one scripted schedule and checks every reply against the serial
/// reference.
fn run_script(seed: u64) {
    let mut lcg = Lcg(seed);
    let clients = 2 + lcg.below(4) as usize; // 2..=5
    let waves = 1 + lcg.below(3) as usize; // 1..=3
    let counts: Vec<Vec<usize>> =
        (0..clients).map(|_| (0..waves).map(|_| lcg.below(5) as usize).collect()).collect();

    // Serial reference: every slot's query through a plain engine batch.
    let mut slot_queries: Vec<(usize, usize)> = Vec::new();
    for (c, per_wave) in counts.iter().enumerate() {
        let total: usize = per_wave.iter().sum();
        for tag in 0..total {
            slot_queries.push((c, tag));
        }
    }
    let reference_engine = Engine::default();
    let queries: Vec<Query> = slot_queries.iter().map(|&(c, t)| query_for(c, t)).collect();
    let expected = reference_engine.run_batch(&queries).responses;
    let expect_for = |client: usize, tag: usize| -> &Response {
        let idx = slot_queries.iter().position(|&s| s == (client, tag)).unwrap();
        &expected[idx]
    };

    let server = Server::start(
        Arc::new(Engine::default()),
        ServerConfig {
            window: Duration::from_micros(300),
            max_batch: 64,
            workers: 2,
            queue_depth: 4096,
            ..ServerConfig::default()
        },
    );
    let barrier = Arc::new(Barrier::new(clients));
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let client = server.client();
            let barrier = Arc::clone(&barrier);
            let per_wave = counts[c].clone();
            std::thread::spawn(move || {
                let mut tag = 0usize;
                for &count in &per_wave {
                    // Barrier-staged: every client enters the wave
                    // together, so waves interleave across connections.
                    barrier.wait();
                    for _ in 0..count {
                        let seq = client.submit(query_for(c, tag));
                        assert_eq!(seq, tag as u64, "client {c}: seq allocation out of order");
                        tag += 1;
                    }
                }
                let replies: Vec<(u64, Response)> = (0..tag).map(|_| client.recv()).collect();
                (c, replies)
            })
        })
        .collect();

    for handle in handles {
        let (c, replies) = handle.join().expect("client thread");
        let total: usize = counts[c].iter().sum();
        assert_eq!(replies.len(), total, "client {c}: incomplete replies (seed {seed})");
        for (i, (seq, response)) in replies.iter().enumerate() {
            assert_eq!(*seq, i as u64, "client {c}: replies out of order (seed {seed})");
            assert_eq!(
                response,
                expect_for(c, i),
                "client {c} slot {i}: wrong answer — cross-client leakage (seed {seed})"
            );
        }
    }
    let stats = server.shutdown();
    let total: u64 = counts.iter().flatten().map(|&n| n as u64).sum();
    assert_eq!(stats.submitted, total);
    assert_eq!(stats.completed, total);
    assert_eq!(stats.overloaded, 0);
}

#[test]
fn scripted_interleavings_stay_ordered_and_leak_free() {
    for seed in 0..12 {
        run_script(seed);
    }
}

/// High-contention path: many clients hammering a *shared* duplicated
/// pool inside one generous window, so the batcher provably coalesces
/// across connections and the dedup savings show up in the stats.
#[test]
fn shared_traffic_coalesces_across_clients() {
    let server = Server::start(
        Arc::new(Engine::default()),
        ServerConfig {
            window: Duration::from_millis(200),
            max_batch: 4096,
            workers: 2,
            queue_depth: 4096,
            ..ServerConfig::default()
        },
    );
    let clients = 8usize;
    let per_client = 50usize;
    let barrier = Arc::new(Barrier::new(clients));
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let client = server.client();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                // Every client cycles the same 5 queries: all duplication
                // here is cross-client by construction once batched.
                for i in 0..per_client {
                    client.submit(query_for(0, i % 5));
                }
                let replies: Vec<(u64, Response)> =
                    (0..per_client).map(|_| client.recv()).collect();
                (c, replies)
            })
        })
        .collect();
    let reference =
        Engine::default().run_batch(&(0..5).map(|i| query_for(0, i)).collect::<Vec<_>>());
    for handle in handles {
        let (c, replies) = handle.join().expect("client thread");
        for (i, (seq, response)) in replies.iter().enumerate() {
            assert_eq!(*seq, i as u64, "client {c} out of order");
            assert_eq!(response, &reference.responses[i % 5], "client {c} slot {i}");
        }
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed, (clients * per_client) as u64);
    assert!(stats.cross_client_batches >= 1, "a 200ms window never coalesced two clients: {stats}");
    assert!(stats.cross_client_dedup_hits > 0, "cross-client duplicates never deduped: {stats}");
}

/// One scripted disconnect schedule: ghost connections submit into an
/// open window and vanish before their replies route.
fn run_disconnect_script(seed: u64) {
    let mut lcg = Lcg(seed ^ 0xD15C);
    let ghosts = 1 + lcg.below(3) as usize; // 1..=3
    let per_ghost: Vec<usize> = (0..ghosts).map(|_| 1 + lcg.below(3) as usize).collect();

    let mut server = Server::start(
        Arc::new(Engine::default()),
        // A window long enough that a ghost provably disconnects while
        // its requests are still pending in the batcher.
        ServerConfig {
            window: Duration::from_millis(100),
            max_batch: 4096,
            ..ServerConfig::default()
        },
    );
    let addr = server.listen(("127.0.0.1", 0)).expect("bind");

    let mut admitted = 0u64;
    for (g, &count) in per_ghost.iter().enumerate() {
        let mut stream = TcpStream::connect(addr).expect("connect");
        for tag in 0..count {
            let line = format!(
                r#"{{"op":"optimize","version":2,"arch":"sync-bus","n":{},"stencil":"5pt","shape":"square","procs":32}}"#,
                64 + (g * 101 + tag)
            );
            stream.write_all(line.as_bytes()).expect("write");
            stream.write_all(b"\n").expect("write");
        }
        admitted += count as u64;
        // Wait for admission (the submit counter), then vanish with the
        // window still open — the replies have nowhere to go.
        let deadline = Instant::now() + Duration::from_secs(10);
        while server.stats().submitted < admitted {
            assert!(Instant::now() < deadline, "ghost {g}'s requests never admitted");
            std::thread::sleep(Duration::from_millis(1));
        }
        let _ = stream.shutdown(Shutdown::Both);
        drop(stream);
    }

    // A live in-process client shares the same windows as the ghosts
    // and must be completely unaffected by their disconnects.
    let live = server.client();
    let live_count = 1 + lcg.below(4) as usize;
    for tag in 0..live_count {
        live.submit(query_for(90, tag));
    }
    let reference =
        Engine::default().run_batch(&(0..live_count).map(|t| query_for(90, t)).collect::<Vec<_>>());
    for (tag, want) in reference.responses.iter().enumerate() {
        let (seq, got) = live.recv();
        assert_eq!(seq, tag as u64, "live client out of order (seed {seed})");
        assert_eq!(&got, want, "live client slot {tag} wrong (seed {seed})");
    }

    // The drain is the leak detector: a reorder-buffer slot that was
    // allocated but never routed would leave a writer waiting forever
    // and hang the join below.
    let stats = server.shutdown();
    let total = admitted + live_count as u64;
    assert_eq!(stats.submitted, total, "seed {seed}: {stats}");
    // No skew: every admitted request was batched, evaluated, and
    // counted complete, ghosts included — the batch-group counters
    // never learn the consumer died.
    assert_eq!(stats.completed, total, "seed {seed}: {stats}");
    assert_eq!(stats.batched_requests, total, "seed {seed}: {stats}");
    assert_eq!(stats.overloaded, 0, "seed {seed}: {stats}");
    assert_eq!(stats.connections, ghosts as u64 + 1, "seed {seed}: {stats}");
    assert_eq!(stats.queue_depth, 0, "seed {seed}: jobs left in the queue: {stats}");
}

/// Mid-window disconnects: a connection that submits and drops before
/// its reply routes must leak nothing — not a reorder-buffer slot (the
/// drain would hang), not a counter (completed/batched stay exact) —
/// and must never disturb a live client sharing its batches.
#[test]
fn mid_window_disconnect_leaks_no_slots_and_skews_no_counters() {
    for seed in 0..6 {
        run_disconnect_script(seed);
    }
}
