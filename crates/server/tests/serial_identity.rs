//! Property test: any concurrent submission schedule of N clients × M
//! requests is answer-bit-identical to the same requests run serially
//! through `Engine::run_batch`.
//!
//! This is the serving-layer extension of the engine's PR-2
//! shuffled-duplicated-batch property (`crates/engine/tests/
//! service_properties.rs`): instead of shuffling one batch, the schedule
//! shuffles *ownership* — the pool's queries are dealt across client
//! threads that submit concurrently through the micro-batcher, so the
//! engine sees nondeterministic coalescings of the same traffic. Every
//! reply must still be bit-for-bit the response a caller would get from
//! one serial `run_batch` over their own request list.
//!
//! The pool cycles every `Query` kind with a deterministic answer:
//! `Optimize`, `MinSize`, `Isoefficiency`, `Leverage`, `Sweep`,
//! `Table1`, `Compare`, `Simulate`, `Solve`, and `Experiment` (which
//! answers the `unsupported` error — the serving engine registers no
//! experiment runner — in its slot, deterministically). `Threads` is the
//! one exclusion: it is a wall-clock measurement, nondeterministic by
//! definition, so bit-identity is not a meaningful property for it.

use parspeed_engine::{
    ArchKind, Engine, Lever, MinSizeVariant, Query, Request, Response, SimArchKind, SolverKind,
};
use parspeed_server::{Server, ServerConfig};
use proptest::prelude::*;
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Every deterministic query kind, smallest instances that still
/// exercise real code paths.
fn pool() -> Vec<Query> {
    vec![
        Request::optimize(ArchKind::SyncBus, 256).procs(64).query(),
        Request::optimize(ArchKind::Hypercube, 512).query(),
        Request::minsize(MinSizeVariant::SyncSquare, 14).query(),
        Request::isoeff(ArchKind::SyncBus, 16, 0.5).query(),
        Request::leverage(Lever::Bus, 2.0, 128).query(),
        Request::sweep(32, 128).query(),
        Request::table1(128).query(),
        Request::compare(64).procs(16).query(),
        Request::simulate(SimArchKind::SyncBus, 32, 2).query(),
        Request::solve(15).solver(SolverKind::Cg).tol(1e-6).max_iters(10_000).query(),
        Request::experiment("e1").quick(true).query(),
    ]
}

proptest! {
    fn concurrent_schedules_are_bit_identical_to_serial_run_batch(
        seed in 0u64..1_000_000,
        clients in 1usize..5,
        per_client in 1usize..8,
    ) {
        // Deal each client a request list from the pool (seeded LCG, so
        // schedules duplicate queries across clients).
        let pool = pool();
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let lists: Vec<Vec<Query>> = (0..clients)
            .map(|_| (0..per_client).map(|_| pool[next() % pool.len()].clone()).collect())
            .collect();

        // The serial reference: each client's list through a plain
        // engine, no server anywhere near it.
        let reference = Engine::default();
        let expected: Vec<Vec<Response>> =
            lists.iter().map(|list| reference.run_batch(list).responses).collect();

        // The concurrent schedule: one thread per client, barrier-
        // released, pipelining its whole list through the micro-batcher.
        let server = Server::start(
            Arc::new(Engine::default()),
            ServerConfig {
                window: Duration::from_micros(200),
                max_batch: 32,
                workers: 3,
                queue_depth: 4096,
                ..ServerConfig::default()
            },
        );
        let barrier = Arc::new(Barrier::new(clients));
        let handles: Vec<_> = lists
            .iter()
            .map(|list| {
                let client = server.client();
                let list = list.clone();
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    for query in &list {
                        client.submit(query.clone());
                    }
                    (0..list.len()).map(|_| client.recv()).collect::<Vec<_>>()
                })
            })
            .collect();
        for (c, handle) in handles.into_iter().enumerate() {
            let replies = handle.join().expect("client thread");
            prop_assert_eq!(replies.len(), expected[c].len());
            for (i, (seq, response)) in replies.iter().enumerate() {
                prop_assert_eq!(*seq, i as u64, "client {} replies out of order", c);
                prop_assert_eq!(
                    response,
                    &expected[c][i],
                    "client {} slot {} differs from serial run_batch (seed {})",
                    c, i, seed
                );
            }
        }
        let stats = server.shutdown();
        prop_assert_eq!(stats.completed as usize, clients * per_client);
        prop_assert_eq!(stats.overloaded, 0);
    }
}
