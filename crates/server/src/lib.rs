//! `parspeed-server` — the concurrent serving layer: a multi-threaded
//! frontend over the engine's [`Service`] surface that accepts many
//! simultaneous clients and funnels their requests through a
//! **cross-client micro-batcher**.
//!
//! Everything below the service boundary already amortizes coordination
//! cost *within* one batch: the engine plans, dedups, caches, and
//! executes a batch's queries as one unit. But a serving workload does
//! not arrive as one batch — it arrives as thousands of small requests
//! from independent connections, and dispatching each alone pays the
//! whole per-batch overhead for a problem of size 1. That is the paper's
//! core tradeoff (per-iteration overhead vs problem size) at the serving
//! layer, and the fix is the same: **aggregate work before paying the
//! coordination cost**. The micro-batcher holds the first request of a
//! quiet period for a short window ([`ServerConfig::window`]) and
//! coalesces everything that arrives meanwhile — from *all* connections
//! — into one engine batch, so dedup and the sharded result cache
//! amortize across users, not just within a file.
//!
//! The layer guarantees, in order of importance:
//!
//! * **per-connection ordered replies** — each connection sees exactly
//!   one reply per request, in its own submission order, however batches
//!   complete (a reorder router holds early replies back);
//! * **no cross-client leakage** — every query is tagged with a
//!   [`SlotAddr`](parspeed_engine::SlotAddr) and the engine's
//!   slot-addressed batch entry point returns each reply under its tag;
//! * **overload is an answer, not a disconnect** — a bounded submission
//!   queue refuses excess requests with the documented `overloaded`
//!   error kind in the request's own reply slot;
//! * **graceful drain** — shutdown stops admission, flushes every
//!   accepted request's reply, then tears connections down.
//!
//! Frontends: raw TCP with wire-v2 JSONL framing ([`Server::listen`] —
//! the same schema as `parspeed batch`, streamed), and an in-process
//! [`Client`] handle ([`Server::client`]) that tests and embedders drive
//! with typed [`Query`]s. The CLI exposes the whole thing as
//! `parspeed serve`.
//!
//! ```
//! use parspeed_engine::{ArchKind, Engine, EvalValue, Request, Response};
//! use parspeed_server::{Server, ServerConfig};
//! use std::sync::Arc;
//!
//! let server = Server::start(Arc::new(Engine::default()), ServerConfig::default());
//! let client = server.client();
//! let response = client.call(Request::optimize(ArchKind::SyncBus, 256).procs(64).query());
//! match response {
//!     Response::Single(Ok(EvalValue::Optimum { processors, .. })) => {
//!         assert_eq!(processors, 14); // the paper's §6.1 anchor
//!     }
//!     other => panic!("unexpected {other:?}"),
//! }
//! let stats = server.shutdown();
//! assert_eq!(stats.completed, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod batcher;
mod conn;
mod eventloop;
mod metrics;
mod net;
mod stats;

pub use conn::{ConnShared, Delivery};
pub use eventloop::{spawn_event_loop, EventLoopConfig, WireHandler};
pub use metrics::{resilience_to_json, MetricsSnapshot, ServerObs};
pub use stats::{health_to_json, ServerStats};

use batcher::{Job, Shared};
use parspeed_engine::{Query, Response, Service, WIRE_VERSION};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Micro-batching knobs. The defaults suit tests and light serving;
/// `parspeed serve` exposes every field as a flag.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// How long the first request of a quiet period waits for company
    /// before its batch fires (`--window-us`). Zero fires immediately
    /// with whatever is queued at pop time.
    pub window: Duration,
    /// Most requests coalesced into one engine batch (`--max-batch`);
    /// reaching it fires the batch before the window closes.
    pub max_batch: usize,
    /// Batcher worker threads (`--workers`). Each executes whole
    /// batches; more workers overlap independent windows.
    pub workers: usize,
    /// Bound on the submission queue (`--queue-depth`); requests
    /// arriving beyond it are answered with the `overloaded` error.
    pub queue_depth: usize,
    /// Record per-stage latency histograms (the `metrics` op). On by
    /// default — three relaxed atomic ops per sample, well under the
    /// bench-gated 5% overhead budget (`parspeed serve --no-observe`
    /// turns it off, which also disables tracing).
    pub observe: bool,
    /// Keep the last N request traces in a ring (`--trace N`, the
    /// `trace` op). 0 — the default — disables tracing entirely.
    pub trace: usize,
    /// The shard id this server answers `{"op":"health"}` probes with —
    /// `Some` when the server runs as one backend of a sharded router
    /// fleet, `None` (the default) for a standalone server, which
    /// reports `"shard":null`.
    pub shard: Option<usize>,
    /// How long the acceptor sleeps between polls of a quiet listening
    /// socket (`--accept-poll-us`). Bounds how fast a drain is noticed;
    /// previously a hard-coded 200 µs.
    pub accept_poll: Duration,
    /// Brownout (cache-only degradation) watermarks, `None` (the
    /// default) to disable. See [`BrownoutConfig`].
    pub brownout: Option<BrownoutConfig>,
    /// Which TCP frontend [`Server::listen`] attaches (`--io`). The
    /// default is the readiness-driven event loop; [`IoModel::Threads`]
    /// keeps the original two-threads-per-connection frontend for
    /// comparison and as a fallback.
    pub io: IoModel,
    /// Event-loop tuning (buffer watermarks, poll tick, line limit) —
    /// ignored under [`IoModel::Threads`].
    pub event_loop: EventLoopConfig,
}

/// How [`Server::listen`] drives accepted sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoModel {
    /// One event-loop thread multiplexes every connection with
    /// nonblocking I/O, reusable per-connection buffers, and write
    /// backpressure ([`EventLoopConfig`]). The default.
    #[default]
    EventLoop,
    /// Two OS threads (blocking reader + writer) per connection — the
    /// original frontend, kept behind `--io threads`.
    Threads,
}

/// Brownout watermarks: under queue pressure the server degrades to
/// cache-only service — requests whose results are warm in the engine's
/// result cache still answer, cold ones are shed as `overloaded` (and
/// counted in the `metrics` op's `resilience.shed`). Hysteresis keeps
/// the mode from flapping: brownout starts when the submission queue
/// reaches `enter` pending requests and ends when it falls back to
/// `exit` (`exit < enter`).
#[derive(Debug, Clone, Copy)]
pub struct BrownoutConfig {
    /// Queue depth at or above which brownout begins
    /// (`--brownout-enter`).
    pub enter: usize,
    /// Queue depth at or below which brownout ends
    /// (`--brownout-exit`).
    pub exit: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            window: Duration::from_micros(200),
            max_batch: 512,
            workers: 2,
            queue_depth: 4096,
            observe: true,
            trace: 0,
            shard: None,
            accept_poll: Duration::from_micros(200),
            brownout: None,
            io: IoModel::default(),
            event_loop: EventLoopConfig::default(),
        }
    }
}

struct IoState {
    /// Reader/writer threads of accepted connections.
    conn_threads: Vec<JoinHandle<()>>,
    /// One stream clone per accepted connection, for drain teardown.
    streams: Vec<TcpStream>,
    /// Next connection id (TCP and in-process clients share the space).
    next_conn_id: u64,
}

/// The running server: batcher workers plus any frontends attached to
/// them. Dropping it without [`shutdown`](Server::shutdown) leaks the
/// worker threads for the rest of the process — call `shutdown`.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    acceptors: Vec<JoinHandle<()>>,
    io: Arc<Mutex<IoState>>,
}

impl Server {
    /// Starts the batcher workers over `service` (usually
    /// `Arc<Engine>`) and returns the handle frontends attach to.
    pub fn start(service: Arc<dyn Service + Send + Sync>, config: ServerConfig) -> Server {
        assert!(config.workers >= 1, "server needs at least one worker");
        assert!(config.max_batch >= 1, "max_batch must be positive");
        assert!(config.queue_depth >= 1, "queue_depth must be positive");
        let shared = Arc::new(Shared::new(service, config));
        if config.observe {
            // The engine attributes plan/dedup/cache/exec time into the
            // same stage set the server uses for queue/window/route —
            // through the Service surface, so the engine never learns
            // the server exists.
            shared.service.install_recorder(shared.obs.clone());
        }
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("parspeed-batch-{i}"))
                    .spawn(move || shared.worker_loop())
                    .expect("spawn batcher worker")
            })
            .collect();
        Server {
            shared,
            workers,
            acceptors: Vec::new(),
            io: Arc::new(Mutex::new(IoState {
                conn_threads: Vec::new(),
                streams: Vec::new(),
                next_conn_id: 0,
            })),
        }
    }

    fn new_conn(&self) -> Arc<ConnShared> {
        alloc_conn(&self.shared, &mut self.io.lock().unwrap())
    }

    /// Opens an in-process connection: a typed client whose requests go
    /// through the same admission control, micro-batcher, and ordered
    /// reply routing as TCP traffic.
    pub fn client(&self) -> Client {
        Client { conn: self.new_conn(), shared: Arc::clone(&self.shared) }
    }

    /// Binds `addr` and starts accepting wire-v2 JSONL connections on a
    /// background thread (the event loop, or the thread-per-connection
    /// acceptor under [`IoModel::Threads`] — identical wire semantics
    /// either way). Returns the bound address (so `:0` works).
    pub fn listen(&mut self, addr: impl ToSocketAddrs) -> io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        match self.shared.cfg.io {
            IoModel::EventLoop => {
                let handler: Arc<dyn WireHandler> = Arc::new(ServerHandler {
                    shared: Arc::clone(&self.shared),
                    io: Arc::clone(&self.io),
                });
                let thread = eventloop::spawn_event_loop(
                    listener,
                    handler,
                    self.shared.cfg.event_loop,
                    "parspeed-eventloop".into(),
                )?;
                self.acceptors.push(thread);
            }
            IoModel::Threads => {
                // Non-blocking accept so the thread can notice the
                // drain flag.
                listener.set_nonblocking(true)?;
                let shared = Arc::clone(&self.shared);
                let io_state = Arc::clone(&self.io);
                let acceptor = std::thread::Builder::new()
                    .name("parspeed-accept".into())
                    .spawn(move || loop {
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                if let Err(e) = spawn_conn(stream, &shared, &io_state) {
                                    eprintln!("note: dropping connection: {e}");
                                }
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                if shared.is_draining() {
                                    return;
                                }
                                std::thread::sleep(shared.cfg.accept_poll);
                            }
                            Err(_) => return,
                        }
                    })
                    .expect("spawn acceptor");
                self.acceptors.push(acceptor);
            }
        }
        Ok(local)
    }

    /// A live telemetry snapshot.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// A live observability snapshot: the counters plus one
    /// latency-histogram summary per pipeline stage (the `metrics` op).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics()
    }

    /// The server's observability state. The handle stays valid after
    /// [`shutdown`](Server::shutdown) — grab it first to render final
    /// metrics or flush the trace ring after the drain.
    pub fn observability(&self) -> Arc<ServerObs> {
        Arc::clone(&self.shared.obs)
    }

    /// The server's resilience counters (retries, deadline misses,
    /// shed requests, caught panics — the `metrics` op's `resilience`
    /// section). Like [`observability`](Server::observability), the
    /// handle stays valid after shutdown.
    pub fn resilience(&self) -> Arc<parspeed_obs::ResilienceCounters> {
        Arc::clone(&self.shared.resilience)
    }

    /// Installs a deterministic [`FaultPlan`](parspeed_chaos::FaultPlan)
    /// (or, with `None`, removes it). While installed, every admitted
    /// request ticks the plan once, and due triggers fire against this
    /// server: `panic` panics a batcher worker mid-batch (the panic
    /// shield answers every slot and keeps the worker alive),
    /// `delay:S:MS` stalls the next batch by `MS` milliseconds. Ring
    ///-level actions (`kill`/`drop`/`dup`/`wedge`) have no meaning on a
    /// standalone server and are recorded as ignored. Zero cost when
    /// absent: one mutex-guarded `Option` check per batch.
    pub fn install_fault_plan(&self, plan: Option<Arc<parspeed_chaos::FaultPlan>>) {
        *self.shared.faults.lock().unwrap() = plan;
    }

    /// Graceful drain: stops admitting (late requests get the
    /// `overloaded` answer), flushes a reply for every accepted request,
    /// tears down connections, joins every thread, and returns the final
    /// telemetry. In-process [`Client`]s stay usable for `recv`; their
    /// further submissions are refused with the overload answer.
    pub fn shutdown(self) -> ServerStats {
        self.shared.drain();
        for worker in self.workers {
            let _ = worker.join();
        }
        // Acceptors notice the drain flag on their next poll.
        for acceptor in self.acceptors {
            let _ = acceptor.join();
        }
        // No new connections can appear now; unblock the readers of the
        // live ones (EOF), which lets the writers flush and exit.
        let (streams, conn_threads) = {
            let mut io = self.io.lock().unwrap();
            (std::mem::take(&mut io.streams), std::mem::take(&mut io.conn_threads))
        };
        for stream in &streams {
            let _ = stream.shutdown(Shutdown::Read);
        }
        for thread in conn_threads {
            let _ = thread.join();
        }
        // The engine may outlive this server; leave it reporting into a
        // no-op sink rather than our now-final stage set.
        if self.shared.cfg.observe {
            self.shared.service.install_recorder(Arc::new(parspeed_obs::NoopRecorder));
        }
        self.shared.stats()
    }
}

/// Allocates a connection id (TCP and in-process clients share the
/// space) and counts the connection. The one place both frontends go
/// through, so the id scheme and counter can never diverge.
fn alloc_conn(shared: &Shared, io: &mut IoState) -> Arc<ConnShared> {
    let id = io.next_conn_id;
    io.next_conn_id += 1;
    shared.counters.add(&shared.counters.connections, 1);
    Arc::new(
        ConnShared::with_obs(id, Arc::clone(&shared.obs))
            .with_resilience(Arc::clone(&shared.resilience)),
    )
}

/// Glues the event loop to the batcher: connections allocate through
/// [`alloc_conn`] and lines dispatch through the same
/// [`net::process_line`] the blocking reader uses, so the two frontends
/// cannot drift apart in wire behavior.
struct ServerHandler {
    shared: Arc<Shared>,
    io: Arc<Mutex<IoState>>,
}

impl WireHandler for ServerHandler {
    fn connect(&self) -> Arc<ConnShared> {
        alloc_conn(&self.shared, &mut self.io.lock().unwrap())
    }

    fn line(
        &self,
        conn: &Arc<ConnShared>,
        text: &str,
        line_no: usize,
        v1_lines: &mut u64,
        shed: Option<&str>,
    ) {
        net::process_line(&self.shared, conn, text, line_no, v1_lines, shed);
    }

    fn disconnect(&self, conn: &Arc<ConnShared>, v1_lines: u64) {
        net::note_v1_lines(conn.id, v1_lines);
        conn.mark_eof();
    }

    fn draining(&self) -> bool {
        self.shared.is_draining()
    }
}

/// Registers an accepted stream and spawns its reader/writer pair.
fn spawn_conn(
    stream: TcpStream,
    shared: &Arc<Shared>,
    io_state: &Arc<Mutex<IoState>>,
) -> io::Result<()> {
    let reader_stream = stream.try_clone()?;
    let teardown_clone = stream.try_clone()?;
    let mut io = io_state.lock().unwrap();
    let conn = alloc_conn(shared, &mut io);
    let id = conn.id;

    let reader_conn = Arc::clone(&conn);
    let reader_shared = Arc::clone(shared);
    let reader = std::thread::Builder::new()
        .name(format!("parspeed-read-{id}"))
        .spawn(move || net::reader_loop(reader_stream, reader_conn, reader_shared))?;
    let writer_conn = Arc::clone(&conn);
    let writer = std::thread::Builder::new()
        .name(format!("parspeed-write-{id}"))
        .spawn(move || net::writer_loop(stream, writer_conn))?;

    io.streams.push(teardown_clone);
    io.conn_threads.push(reader);
    io.conn_threads.push(writer);
    Ok(())
}

/// An in-process connection: typed queries in, typed responses out,
/// with the exact semantics of a TCP connection — admission control,
/// cross-client batching, and per-connection ordered replies.
pub struct Client {
    conn: Arc<ConnShared>,
    shared: Arc<Shared>,
}

impl Client {
    /// Submits one query, returning its connection-local sequence
    /// number. Never blocks on the batcher: a refused request (full
    /// queue, draining server) is answered with the `overloaded` error
    /// in its reply slot like any other reply.
    pub fn submit(&self, query: Query) -> u64 {
        self.submit_with_deadline(query, None)
    }

    /// [`submit`](Self::submit) with an absolute deadline: if the
    /// result is not produced by `deadline`, the slot answers with the
    /// `deadline_exceeded` error instead. The deadline is checked when
    /// the batch fires, so a reply can arrive slightly past it (the
    /// batch that beat the deadline still delivers) but an expired
    /// request never occupies engine time.
    pub fn submit_with_deadline(&self, query: Query, deadline: Option<Instant>) -> u64 {
        let seq = self.conn.alloc_seq();
        self.shared.submit(Job {
            conn: Arc::clone(&self.conn),
            seq,
            query,
            version: WIRE_VERSION,
            line_no: seq as usize + 1,
            render: false,
            submitted: Instant::now(),
            deadline,
        });
        seq
    }

    /// Receives the next reply in submission order, blocking until it
    /// is released. Panics if called with no outstanding submission
    /// (there would be nothing to wait for). The check is a snapshot —
    /// with the usual one-thread-per-client pattern it is exact.
    pub fn recv(&self) -> (u64, Response) {
        assert!(!self.conn.idle(), "recv with no outstanding submission");
        match self.conn.next_released() {
            Some((seq, Delivery::Typed(response))) => (seq, response),
            Some((_, Delivery::Line(_))) => unreachable!("rendered delivery on a typed client"),
            None => unreachable!("in-process connections never reach EOF"),
        }
    }

    /// [`recv`](Self::recv) with a deadline; `None` on timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<(u64, Response)> {
        match self.conn.next_released_timeout(timeout)? {
            (seq, Delivery::Typed(response)) => Some((seq, response)),
            (_, Delivery::Line(_)) => unreachable!("rendered delivery on a typed client"),
        }
    }

    /// Submit one query and wait for its reply.
    pub fn call(&self, query: Query) -> Response {
        let seq = self.submit(query);
        let (got, response) = self.recv();
        assert_eq!(got, seq, "per-connection ordering violated");
        response
    }

    /// Submit one query with an absolute deadline and wait for its
    /// reply (a result, or the `deadline_exceeded` error in its slot).
    pub fn call_with_deadline(&self, query: Query, deadline: Instant) -> Response {
        let seq = self.submit_with_deadline(query, Some(deadline));
        let (got, response) = self.recv();
        assert_eq!(got, seq, "per-connection ordering violated");
        response
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parspeed_engine::{ArchKind, Engine, EvalValue, Request};

    fn optimize(n: usize) -> Query {
        Request::optimize(ArchKind::SyncBus, n).procs(64).query()
    }

    #[test]
    fn one_client_round_trip_and_shutdown_stats() {
        let server = Server::start(Arc::new(Engine::default()), ServerConfig::default());
        let client = server.client();
        match client.call(optimize(256)) {
            Response::Single(Ok(EvalValue::Optimum { processors, .. })) => {
                assert_eq!(processors, 14)
            }
            other => panic!("unexpected {other:?}"),
        }
        let stats = server.shutdown();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.overloaded, 0);
        assert_eq!(stats.connections, 1);
        assert!(stats.draining);
    }

    #[test]
    fn pipelined_submissions_coalesce_into_fewer_batches() {
        let server = Server::start(
            Arc::new(Engine::default()),
            ServerConfig { window: Duration::from_millis(20), ..ServerConfig::default() },
        );
        let client = server.client();
        let seqs: Vec<u64> = (0..50).map(|_| client.submit(optimize(256))).collect();
        let mut replies = Vec::new();
        for _ in &seqs {
            replies.push(client.recv());
        }
        // In order, and all identical (one duplicated query).
        for (i, (seq, _)) in replies.iter().enumerate() {
            assert_eq!(*seq, i as u64);
        }
        assert!(replies.iter().all(|(_, r)| r == &replies[0].1));
        let stats = server.shutdown();
        assert_eq!(stats.completed, 50);
        assert!(stats.batches < 50, "window never coalesced: {stats}");
        assert!(stats.avg_batch_fill() > 1.0);
    }

    #[test]
    fn submissions_after_shutdown_get_the_overload_answer() {
        let server = Server::start(Arc::new(Engine::default()), ServerConfig::default());
        let client = server.client();
        client.call(optimize(128));
        server.shutdown();
        match client.call(optimize(256)) {
            Response::Invalid(e) => {
                assert_eq!(e.kind(), "overloaded");
                assert!(e.to_string().contains("draining"), "{e}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
