//! The cross-client micro-batcher: a bounded submission queue with a
//! time/size window, drained by worker threads into single
//! [`Service::call_tagged`] batches.
//!
//! The window trades latency for problem size, exactly the paper's
//! optimal-speedup tradeoff applied to the serving layer: the first
//! request to arrive at an empty queue opens a window of
//! [`ServerConfig::window`]; until it closes, further requests from *any*
//! connection join the same pending set; the batch fires when the window
//! expires, when [`ServerConfig::max_batch`] requests are pending, or
//! immediately once the server is draining. One engine batch then pays
//! the planning/dedup/cache coordination cost once for everyone.
//!
//! Admission control is a hard bound on the pending set
//! ([`ServerConfig::queue_depth`]): a request arriving at a full queue is
//! answered in its own reply slot with an
//! [`overloaded`](parspeed_engine::ParspeedError::Overloaded) error — the
//! connection is never stalled or dropped, and nothing is ever admitted
//! that cannot be replied to. Draining behaves the same way: accepted
//! requests are all flushed, late ones get the overload answer.

use crate::conn::{ConnShared, Delivery};
use crate::metrics::{ns_between, MetricsSnapshot, ServerObs};
use crate::stats::{Counters, ServerStats};
use crate::ServerConfig;
use parspeed_chaos::{FaultAction, FaultPlan};
use parspeed_engine::{jsonl, ParspeedError, Query, Response, Service, SlotAddr, TaggedRequest};
use parspeed_obs::{ResilienceCounters, Stage, TraceEvent};
use std::collections::HashSet;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// One admitted (or about-to-be-refused) request on its way to the
/// engine: the query plus everything needed to route and render its
/// reply.
pub(crate) struct Job {
    /// The submitting connection.
    pub conn: Arc<ConnShared>,
    /// Connection-local sequence number (reply slot address).
    pub seq: u64,
    /// The parsed query.
    pub query: Query,
    /// The wire version the request line spoke (rendering shape).
    pub version: u32,
    /// 1-based input line number on the connection (error slots).
    pub line_no: usize,
    /// Render the reply to a JSONL line (TCP) instead of keeping it
    /// typed (in-process clients).
    pub render: bool,
    /// When admission accepted the request (`queue` stage start).
    pub submitted: Instant,
    /// Absolute expiry: past it, the slot answers `deadline_exceeded`
    /// instead of entering the engine (`None` = no deadline).
    pub deadline: Option<Instant>,
}

#[derive(Default)]
struct SubmissionQueue {
    jobs: VecDeque<Job>,
    /// When the currently open window closes; `Some` iff jobs is
    /// non-empty.
    deadline: Option<Instant>,
    /// When the currently open window opened (`window` stage start);
    /// `Some` iff jobs is non-empty.
    opened: Option<Instant>,
    draining: bool,
}

/// Everything the workers, submitters, and frontends share.
pub(crate) struct Shared {
    pub service: Arc<dyn Service + Send + Sync>,
    pub cfg: ServerConfig,
    pub counters: Counters,
    /// Per-stage histograms, trace ring, batch ids. Shared with every
    /// connection (route timing) and installed into the engine.
    pub obs: Arc<ServerObs>,
    /// Recovery-action counters (the `metrics` op's `resilience`
    /// section): deadline misses, shed requests, caught panics.
    pub resilience: Arc<ResilienceCounters>,
    /// The installed fault plan, if any (`Server::install_fault_plan`).
    pub faults: Mutex<Option<Arc<FaultPlan>>>,
    /// Whether brownout (cache-only degradation) is currently active.
    /// Only moves when [`ServerConfig::brownout`] is set; updated under
    /// the queue lock, read lock-free by `metrics`.
    brownout_active: AtomicBool,
    /// Worker panics the fault plan has scheduled but not yet fired
    /// (consumed by the next batch, inside the panic shield).
    pending_panics: AtomicU64,
    /// Injected latency (ms) the next batch must sleep before serving.
    pending_delay_ms: AtomicU64,
    queue: Mutex<SubmissionQueue>,
    cv: Condvar,
}

impl Shared {
    pub fn new(service: Arc<dyn Service + Send + Sync>, cfg: ServerConfig) -> Self {
        if let Some(b) = cfg.brownout {
            assert!(b.exit < b.enter, "brownout exit watermark must be below enter");
        }
        Shared {
            service,
            cfg,
            counters: Counters::default(),
            obs: Arc::new(ServerObs::new(cfg.observe, cfg.trace)),
            resilience: Arc::new(ResilienceCounters::new()),
            faults: Mutex::new(None),
            brownout_active: AtomicBool::new(false),
            pending_panics: AtomicU64::new(0),
            pending_delay_ms: AtomicU64::new(0),
            queue: Mutex::new(SubmissionQueue::default()),
            cv: Condvar::new(),
        }
    }

    /// Whether cache-only degradation is active right now.
    pub fn in_brownout(&self) -> bool {
        self.brownout_active.load(Ordering::Relaxed)
    }

    /// Admission control: queue the job, or answer its slot with an
    /// `overloaded` error on a full queue / draining server. Never
    /// blocks beyond the queue lock and never disconnects anyone.
    ///
    /// With brownout watermarks configured, pressure degrades service
    /// before refusing it outright: once the queue reaches the `enter`
    /// watermark, only requests the service says are warm
    /// ([`Service::probe_cached`]) are admitted — cold ones shed with
    /// the overload answer — until the queue falls back to `exit`.
    pub fn submit(&self, job: Job) {
        self.counters.add(&self.counters.submitted, 1);
        if let Some(plan) = self.faults.lock().unwrap().clone() {
            self.apply_faults(&plan);
        }
        // The cache probe takes cache-shard locks and (for sweeps) a
        // plan expansion — do it before the queue lock, and only when
        // brownout is configured at all.
        let warm = self.cfg.brownout.is_some() && self.service.probe_cached(&job.query);
        let mut q = self.queue.lock().unwrap();
        if let Some(b) = self.cfg.brownout {
            if q.jobs.len() >= b.enter {
                self.brownout_active.store(true, Ordering::Relaxed);
            } else if q.jobs.len() <= b.exit {
                self.brownout_active.store(false, Ordering::Relaxed);
            }
        }
        let refusal = if q.draining {
            Some("server is draining for shutdown; request refused (not evaluated)".to_string())
        } else if q.jobs.len() >= self.cfg.queue_depth {
            Some(format!(
                "server overloaded: submission queue is full ({} pending); \
                 request refused (not evaluated), retry later",
                q.jobs.len()
            ))
        } else if self.brownout_active.load(Ordering::Relaxed) && !warm {
            ResilienceCounters::bump(&self.resilience.shed);
            Some(format!(
                "server in brownout (queue depth {} over watermark): cold request shed \
                 (not evaluated), retry later; cached requests still answer",
                q.jobs.len()
            ))
        } else {
            None
        };
        match refusal {
            None => {
                if q.jobs.is_empty() {
                    let now = Instant::now();
                    q.deadline = Some(now + self.cfg.window);
                    q.opened = Some(now);
                }
                q.jobs.push_back(job);
                self.counters.raise(&self.counters.queue_high_watermark, q.jobs.len() as u64);
                self.cv.notify_one();
            }
            Some(msg) => {
                drop(q);
                deliver_overload(&job, msg, &self.counters, &self.obs);
            }
        }
    }

    /// Ticks the installed fault plan for one submission and arms the
    /// actions a standalone server can express: `panic` fires inside
    /// the next batch (under the panic shield), `delay` stalls the next
    /// batch. Ring-level actions are recorded and ignored — a lone
    /// server has no ring.
    fn apply_faults(&self, plan: &FaultPlan) {
        for action in plan.on_request() {
            match action {
                FaultAction::PanicWorker => {
                    self.pending_panics.fetch_add(1, Ordering::SeqCst);
                    plan.record("server: armed worker panic for the next batch");
                }
                FaultAction::DelayLane { shard, millis } => {
                    self.pending_delay_ms.fetch_add(millis, Ordering::SeqCst);
                    plan.record(format!("server: armed {millis} ms delay (lane {shard})"));
                }
                other => plan.record(format!("server: ignoring ring-level fault {other}")),
            }
        }
    }

    /// Whether the server is draining for shutdown.
    pub fn is_draining(&self) -> bool {
        self.queue.lock().unwrap().draining
    }

    /// A consistent counter snapshot: `queue_depth` and `draining` are
    /// read under one queue-lock acquisition (they can never disagree
    /// with each other), then the counters under their own ordering
    /// point (see [`Counters::snapshot`]).
    pub fn stats(&self) -> ServerStats {
        let (depth, draining) = {
            let q = self.queue.lock().unwrap();
            (q.jobs.len(), q.draining)
        };
        self.counters.snapshot(depth, draining)
    }

    /// The full observability snapshot (the `metrics` op).
    pub fn metrics(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            stats: self.stats(),
            stages: self.obs.stage_summaries(),
            resilience: self.resilience.snapshot(),
            brownout: self.in_brownout(),
            latency: self.obs.latency_summary(),
        }
    }

    /// The lightweight liveness record (the `health` op): uptime, the
    /// drain flag, and the shard id — one queue-lock acquisition, no
    /// counter snapshot — plus the additive `brownout` flag (cache-only
    /// degradation active right now). New fields append after the
    /// frozen six-field prefix, so positional probes of the original
    /// record keep working.
    pub fn health(&self) -> jsonl::Json {
        let mut json = crate::stats::health_to_json(
            self.obs.uptime_seconds(),
            self.is_draining(),
            self.cfg.shard,
        );
        if let jsonl::Json::Obj(fields) = &mut json {
            fields.push(("brownout".into(), jsonl::Json::Bool(self.in_brownout())));
        }
        json
    }

    /// Starts the drain: no further admissions; pending batches fire
    /// immediately; workers exit once the queue is empty.
    pub fn drain(&self) {
        self.queue.lock().unwrap().draining = true;
        self.cv.notify_all();
    }

    /// One worker thread: collect a window's batch, execute, route.
    pub fn worker_loop(&self) {
        loop {
            let (batch, opened, popped) = {
                let mut q = self.queue.lock().unwrap();
                loop {
                    if q.jobs.is_empty() {
                        if q.draining {
                            return;
                        }
                        q = self.cv.wait(q).unwrap();
                        continue;
                    }
                    let now = Instant::now();
                    let deadline = q.deadline.expect("deadline set while jobs pending");
                    if q.draining || q.jobs.len() >= self.cfg.max_batch || now >= deadline {
                        let take = q.jobs.len().min(self.cfg.max_batch);
                        let batch: Vec<Job> = q.jobs.drain(..take).collect();
                        let opened = q.opened.take().expect("opened set while jobs pending");
                        // Leftovers beyond max_batch already waited a full
                        // window — let the next batch fire immediately.
                        q.deadline = (!q.jobs.is_empty()).then_some(now);
                        q.opened = (!q.jobs.is_empty()).then_some(now);
                        if !q.jobs.is_empty() {
                            self.cv.notify_one();
                        }
                        break (batch, opened, now);
                    }
                    (q, _) = self.cv.wait_timeout(q, deadline - now).unwrap();
                }
            };
            // `queue` is per request (submit → popped with its batch);
            // `window` is per batch (window open → fire) and overlaps
            // the tail of `queue` by construction — end-to-end
            // accounting should sum `queue`, not both.
            for job in &batch {
                self.obs.record(Stage::Queue, ns_between(job.submitted, popped));
            }
            self.obs.record(Stage::Window, ns_between(opened, popped));
            self.execute(batch, popped);
        }
    }

    /// Runs one coalesced batch through the service and routes every
    /// reply to its slot. `popped` is when the batch left the queue
    /// (the per-request `queue` stage end, used for trace events).
    ///
    /// Two failure paths resolve here, both in-slot: a job whose
    /// deadline expired while it queued answers `deadline_exceeded`
    /// without entering the engine, and a worker panic mid-service
    /// (a service bug, or an injected `panic` fault) is caught by a
    /// panic shield that answers every slot with the `internal` error
    /// and keeps the worker alive — an admitted request is answered no
    /// matter what happens to its batch.
    fn execute(&self, jobs: Vec<Job>, popped: Instant) {
        let c = &self.counters;

        // Injected straggler latency fires before the deadline check, so
        // a delayed batch can push queued requests past their budgets —
        // exactly the failure the deadline exists to bound.
        let delay_ms = self.pending_delay_ms.swap(0, Ordering::SeqCst);
        if delay_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(delay_ms));
        }

        let now = Instant::now();
        let (jobs, expired): (Vec<Job>, Vec<Job>) =
            jobs.into_iter().partition(|j| j.deadline.is_none_or(|d| now < d));
        if !expired.is_empty() {
            let _group = c.batch_group();
            c.add(&c.completed, expired.len() as u64);
            for job in &expired {
                ResilienceCounters::bump(&self.resilience.deadline_missed);
                deliver(
                    job,
                    Response::Invalid(ParspeedError::deadline_exceeded(
                        "deadline expired while the request queued; result not produced \
                         (the request was not evaluated)",
                    )),
                    &self.obs,
                );
            }
        }
        if jobs.is_empty() {
            return;
        }

        let batch_id = self.obs.next_batch_id();
        let clients: HashSet<u64> = jobs.iter().map(|j| j.conn.id).collect();

        let tagged: Vec<(SlotAddr, Query)> = jobs
            .iter()
            .map(|j| (SlotAddr { client: j.conn.id, seq: j.seq }, j.query.clone()))
            .collect();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let armed = self
                .pending_panics
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok();
            if armed {
                panic!("injected worker panic (fault plan)");
            }
            self.service.call_tagged(&TaggedRequest::new(tagged))
        }));
        let result = match outcome {
            Ok(result) => result,
            Err(_) => {
                // The shield: the batch died mid-service, but every
                // admitted slot still answers, and this worker thread
                // survives to serve the next batch.
                ResilienceCounters::bump(&self.resilience.worker_panics);
                if let Some(plan) = self.faults.lock().unwrap().clone() {
                    plan.record(format!(
                        "server: worker panic caught; {} slot(s) answered internal",
                        jobs.len()
                    ));
                }
                {
                    let _group = c.batch_group();
                    c.add(&c.batches, 1);
                    c.add(&c.batched_requests, jobs.len() as u64);
                    c.raise(&c.max_batch_fill, jobs.len() as u64);
                    c.add(&c.completed, jobs.len() as u64);
                }
                for job in &jobs {
                    deliver(
                        job,
                        Response::Invalid(ParspeedError::Internal(
                            "worker panicked while serving the batch; the request may or may \
                             not have been evaluated"
                                .into(),
                        )),
                        &self.obs,
                    );
                }
                return;
            }
        };
        match result {
            Ok(reply) => {
                let engine_nanos = (reply.telemetry.wall_seconds * 1e9) as u64;
                {
                    // Post the whole batch's counters as one unit: a
                    // snapshot either sees all of this batch or none.
                    let _group = c.batch_group();
                    c.add(&c.batches, 1);
                    c.add(&c.batched_requests, jobs.len() as u64);
                    c.raise(&c.max_batch_fill, jobs.len() as u64);
                    c.add(&c.atoms, reply.telemetry.atoms as u64);
                    c.add(&c.unique, reply.telemetry.unique as u64);
                    c.add(&c.cache_hits, reply.telemetry.cache_hits as u64);
                    c.add(&c.engine_nanos, engine_nanos);
                    if clients.len() > 1 {
                        c.add(&c.cross_client_batches, 1);
                        c.add(
                            &c.cross_client_dedup_hits,
                            (reply.telemetry.atoms - reply.telemetry.unique) as u64,
                        );
                    }
                    c.add(&c.completed, jobs.len() as u64);
                }
                if self.obs.tracing() {
                    // Cache-hit attribution is batch-level: after dedup
                    // a cached key may have served many requests at
                    // once, so per-request blame is not well defined.
                    let cache_hit = reply.telemetry.cache_hits > 0;
                    for job in &jobs {
                        self.obs.trace_push(TraceEvent {
                            at_ns: self.obs.ns_since_epoch(job.submitted),
                            client: job.conn.id,
                            seq: job.seq,
                            op: jsonl::op_name(&job.query),
                            batch: batch_id,
                            cache_hit,
                            queue_ns: ns_between(job.submitted, popped),
                            batch_ns: engine_nanos,
                        });
                    }
                }
                debug_assert_eq!(reply.replies.len(), jobs.len());
                for (job, (slot, response)) in jobs.iter().zip(reply.replies) {
                    debug_assert_eq!(slot, SlotAddr { client: job.conn.id, seq: job.seq });
                    deliver(job, response, &self.obs);
                }
            }
            Err(e) => {
                // Envelope-level failure (cannot happen for the versions
                // this server speaks, but every admitted job still gets
                // a reply in its slot).
                {
                    let _group = c.batch_group();
                    c.add(&c.batches, 1);
                    c.add(&c.batched_requests, jobs.len() as u64);
                    c.raise(&c.max_batch_fill, jobs.len() as u64);
                    c.add(&c.completed, jobs.len() as u64);
                }
                for job in &jobs {
                    deliver(job, Response::Invalid(e.clone()), &self.obs);
                }
            }
        }
    }
}

/// Routes one response to its job's slot, rendering for TCP connections.
/// The single delivery funnel — every reply passes here, so the one
/// end-to-end latency sample per request (admission to reply routed,
/// the `metrics` op's SLO percentiles) can never be missed or doubled.
pub(crate) fn deliver(job: &Job, response: Response, obs: &ServerObs) {
    obs.record_latency(ns_between(job.submitted, Instant::now()));
    let delivery = if job.render {
        Delivery::Line(jsonl::render_response(&job.query, &response, job.version, job.line_no))
    } else {
        Delivery::Typed(response)
    };
    job.conn.route(job.seq, delivery);
}

/// Answers a refused job's slot with the documented `overloaded` error.
pub(crate) fn deliver_overload(job: &Job, msg: String, counters: &Counters, obs: &ServerObs) {
    counters.add(&counters.overloaded, 1);
    deliver(job, Response::Invalid(ParspeedError::overloaded(msg)), obs);
}
