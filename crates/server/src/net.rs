//! The TCP frontend: JSONL framing over `std::net`, one reader and one
//! writer thread per connection.
//!
//! The wire is exactly `parspeed batch`'s wire-v2 JSONL (see
//! `crates/engine/src/README.md`), streamed instead of slurped: one JSON
//! request object per line in, one JSON response object per non-empty
//! input line out, in input order. The same compatibility rules apply —
//! v2 lines answer in v2 shape, v1-versioned (or unversioned) lines are
//! accepted, counted, and answered in the legacy v1 shape, with one
//! deprecation note logged per connection at close, matching file mode's
//! stderr note. A line that fails to parse answers
//! `{"ok":false,"line":N,...}` in its own slot and poisons nothing: not
//! the connection (later lines still answer) and not the batcher (other
//! clients' in-flight requests never see it).
//!
//! Four extra ops exist only on the serving wire, all answered in the
//! request's own reply slot without entering the batcher:
//! `{"op":"stats"}` answers the server's
//! [`ServerStats`](crate::ServerStats) snapshot (byte-frozen shape);
//! `{"op":"metrics"}` answers the full
//! [`MetricsSnapshot`](crate::MetricsSnapshot) — the same counters plus
//! engine time, the dedup factor, and one latency-histogram summary per
//! pipeline stage; `{"op":"trace"}` answers the ring of recent request
//! traces (empty unless the server runs with `--trace N`);
//! `{"op":"health"}` answers the byte-frozen liveness record
//! ([`health_to_json`](crate::health_to_json)) load-balancer probes
//! poll without paying for a counter snapshot.

use crate::batcher::{deliver_overload, Job, Shared};
use crate::conn::{ConnShared, Delivery};
use crate::metrics;
use parspeed_engine::{jsonl, ParspeedError, WIRE_VERSION};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Handles one trimmed, non-empty wire line for a connection — the
/// single parse/dispatch path both frontends (thread-per-connection and
/// the event loop) share, so the wire semantics cannot drift between
/// them. Allocates the line's reply slot, intercepts the serving-only
/// ops, and either admits the query or routes the error answer.
///
/// `shed` carries the event-loop write-backpressure verdict: `Some`
/// when the connection's write buffer is over the shed watermark, in
/// which case engine-bound queries are refused in-slot with the
/// documented `overloaded` answer (the client is not consuming replies;
/// admitting more work would only grow the buffer). Serving-only ops
/// and parse errors still answer — their replies are small and a
/// health probe must work *especially* under overload.
pub(crate) fn process_line(
    shared: &Arc<Shared>,
    conn: &Arc<ConnShared>,
    text: &str,
    line_no: usize,
    v1_lines: &mut u64,
    shed: Option<&str>,
) {
    let seq = conn.alloc_seq();
    // One tokenization per line: the serving-only ops are
    // intercepted from the parsed value (the engine's reader does not
    // know them), everything else becomes a query from the same value.
    let parsed = match jsonl::parse(text) {
        Ok(v) => match v.get("op").and_then(jsonl::Json::as_str) {
            Some("stats") => {
                conn.route(seq, Delivery::Line(shared.stats().to_json().render()));
                return;
            }
            Some("health") => {
                conn.route(seq, Delivery::Line(shared.health().render()));
                return;
            }
            Some("metrics") => {
                conn.route(seq, Delivery::Line(shared.metrics().to_json().render()));
                return;
            }
            Some("trace") => {
                let reply =
                    metrics::trace_to_json(&shared.obs.trace_events(), shared.obs.trace_capacity());
                conn.route(seq, Delivery::Line(reply.render()));
                return;
            }
            _ => jsonl::parse_query_value(&v),
        },
        // A line that is not JSON at all has no version field to honor,
        // so it answers in the *current* wire shape (carrying
        // `error_kind`), not the legacy v1 one — v2 clients should
        // never receive replies missing v2 machinery.
        Err(e) => Err(jsonl::LineError { version: WIRE_VERSION, error: ParspeedError::parse(e) }),
    };
    match parsed {
        Ok(parsed) => {
            if parsed.version < WIRE_VERSION {
                *v1_lines += 1;
                shared.counters.add(&shared.counters.v1_lines, 1);
            }
            let now = Instant::now();
            let job = Job {
                conn: Arc::clone(conn),
                seq,
                query: parsed.query,
                version: parsed.version,
                line_no,
                render: true,
                submitted: now,
                // The budget starts at admission: what is left after
                // queueing and batching is what the engine may use. A
                // budget too large to represent (`u64::MAX` ms) is no
                // deadline at all — `checked_add` saturates to `None`
                // instead of panicking the frontend on `Instant`
                // overflow.
                deadline: parsed
                    .deadline_ms
                    .and_then(|ms| now.checked_add(Duration::from_millis(ms))),
            };
            match shed {
                Some(msg) => deliver_overload(&job, msg.to_string(), &shared.counters, &shared.obs),
                None => shared.submit(job),
            }
        }
        Err(e) => conn.route(seq, Delivery::Line(jsonl::render_parse_error(&e, line_no))),
    }
}

/// Logs the once-per-connection wire-v1 deprecation note (the same one
/// `parspeed batch` prints in file mode).
pub(crate) fn note_v1_lines(conn_id: u64, v1_lines: u64) {
    if v1_lines > 0 {
        eprintln!(
            "note: connection {conn_id} sent {v1_lines} request line(s) using deprecated wire v1; \
             add \"version\":2 (see crates/engine/src/README.md)"
        );
    }
}

/// Drives one connection's read half: parse lines, admit queries, route
/// parse failures and stats snapshots straight to the reply stream.
pub(crate) fn reader_loop(stream: TcpStream, conn: Arc<ConnShared>, shared: Arc<Shared>) {
    let mut v1_lines = 0u64;
    let mut line_no = 0usize;
    for line in BufReader::new(stream).lines() {
        let Ok(line) = line else { break };
        line_no += 1;
        let text = line.trim();
        if text.is_empty() {
            continue;
        }
        process_line(&shared, &conn, text, line_no, &mut v1_lines, None);
    }
    note_v1_lines(conn.id, v1_lines);
    conn.mark_eof();
}

/// Drives one connection's write half: emit released replies in
/// sequence order until the stream is flushed-and-done.
pub(crate) fn writer_loop(stream: TcpStream, conn: Arc<ConnShared>) {
    let mut out = BufWriter::new(&stream);
    while let Some((_seq, delivery)) = conn.next_released() {
        let line = match delivery {
            Delivery::Line(line) => line,
            // TCP jobs are always submitted with `render: true`.
            Delivery::Typed(_) => unreachable!("typed delivery on a TCP connection"),
        };
        if out.write_all(line.as_bytes()).is_err()
            || out.write_all(b"\n").is_err()
            || out.flush().is_err()
        {
            // The peer stopped reading: shut the *read* half too so the
            // reader sees EOF and stops admitting requests whose replies
            // nobody will ever consume.
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    }
    let _ = stream.shutdown(Shutdown::Write);
}
