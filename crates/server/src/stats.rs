//! Server telemetry counters and the [`ServerStats`] snapshot.
//!
//! Consistency model (exact, not hand-waved):
//!
//! * **Admission-path counters** — `connections`, `submitted`,
//!   `overloaded`, `v1_lines`, `queue_high_watermark` — are relaxed
//!   atomics bumped the moment the event happens. They may *lead* the
//!   batch group below by whatever is in flight: a snapshot can show
//!   `submitted > completed + overloaded + queue_depth` while requests
//!   sit inside an executing batch.
//! * **Batch-group counters** — `completed`, `batches`,
//!   `batched_requests`, `max_batch_fill`, `cross_client_*`, `atoms`,
//!   `unique`, `cache_hits`, `engine_nanos` — are updated together,
//!   once per completed batch, under one ordering point
//!   ([`Counters::batch_group`], a mutex whose release/acquire pairing
//!   is the fence the snapshot takes). A snapshot therefore never
//!   splits a batch: either all of a batch's contributions are visible
//!   or none are, so invariants like `batched_requests ==` Σ batch
//!   sizes and `completed ≤ batched_requests` hold on every read.
//! * **`queue_depth` / `draining`** are read under the submission-queue
//!   lock itself (one acquisition for both, see
//!   [`Shared::stats`](crate::batcher::Shared::stats)) and are exact at
//!   that instant.
//!
//! After [`Server::shutdown`](crate::Server::shutdown) everything has
//! quiesced and every field is exact.

use parspeed_engine::jsonl::Json;
use parspeed_engine::WIRE_VERSION;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// The live counters (crate-internal; snapshot through [`ServerStats`]).
#[derive(Debug, Default)]
pub(crate) struct Counters {
    // Admission-path counters (may lead the batch group; see module docs).
    pub connections: AtomicU64,
    pub submitted: AtomicU64,
    pub overloaded: AtomicU64,
    pub queue_high_watermark: AtomicU64,
    pub v1_lines: AtomicU64,
    // Batch-group counters (updated together under `batch_sync`).
    pub completed: AtomicU64,
    pub batches: AtomicU64,
    pub batched_requests: AtomicU64,
    pub max_batch_fill: AtomicU64,
    pub cross_client_batches: AtomicU64,
    pub cross_client_dedup_hits: AtomicU64,
    pub atoms: AtomicU64,
    pub unique: AtomicU64,
    pub cache_hits: AtomicU64,
    pub engine_nanos: AtomicU64,
    /// The one ordering point for the batch group: workers hold it while
    /// posting a completed batch's counters, [`snapshot`](Counters::snapshot)
    /// holds it while reading them, so a snapshot never sees half a batch.
    batch_sync: Mutex<()>,
}

impl Counters {
    pub fn add(&self, counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    pub fn raise(&self, counter: &AtomicU64, candidate: u64) {
        counter.fetch_max(candidate, Ordering::Relaxed);
    }

    /// Enters the batch-group critical section (workers post a whole
    /// batch's counters inside it; held for ~ten uncontended atomic adds
    /// per *batch*, so it never shows up next to the engine call).
    pub fn batch_group(&self) -> MutexGuard<'_, ()> {
        self.batch_sync.lock().unwrap()
    }

    /// Snapshots every counter. Taking [`batch_group`](Counters::batch_group)
    /// is the acquire side of the workers' release: the batch-group
    /// fields are mutually consistent (see module docs for which other
    /// fields may lead).
    pub fn snapshot(&self, queue_depth: usize, draining: bool) -> ServerStats {
        let _sync = self.batch_group();
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        ServerStats {
            connections: get(&self.connections),
            submitted: get(&self.submitted),
            completed: get(&self.completed),
            overloaded: get(&self.overloaded),
            queue_depth,
            queue_high_watermark: get(&self.queue_high_watermark),
            batches: get(&self.batches),
            batched_requests: get(&self.batched_requests),
            max_batch_fill: get(&self.max_batch_fill),
            cross_client_batches: get(&self.cross_client_batches),
            cross_client_dedup_hits: get(&self.cross_client_dedup_hits),
            atoms: get(&self.atoms),
            unique: get(&self.unique),
            cache_hits: get(&self.cache_hits),
            engine_nanos: get(&self.engine_nanos),
            v1_lines: get(&self.v1_lines),
            draining,
        }
    }
}

/// A point-in-time view of what the server has done: admission, batching
/// window occupancy, and how much work cross-client coalescing saved.
/// See the module docs for exactly which fields may lag which.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted (TCP) plus in-process clients handed out.
    pub connections: u64,
    /// Requests that reached admission control (accepted or not).
    pub submitted: u64,
    /// Requests answered by the engine (each in its own reply slot).
    pub completed: u64,
    /// Requests refused admission — answered with an `overloaded` error
    /// in their reply slot, never by disconnecting the client.
    pub overloaded: u64,
    /// Requests sitting in the submission queue right now.
    pub queue_depth: usize,
    /// The deepest the submission queue has ever been.
    pub queue_high_watermark: u64,
    /// Engine batches executed.
    pub batches: u64,
    /// Requests carried by those batches (window occupancy numerator).
    pub batched_requests: u64,
    /// Largest single batch executed.
    pub max_batch_fill: u64,
    /// Batches that coalesced requests from more than one connection.
    pub cross_client_batches: u64,
    /// Atoms deduplicated away inside cross-client batches — work that
    /// per-connection batching could never have shared.
    pub cross_client_dedup_hits: u64,
    /// Atomic evaluations planned across all batches (before dedup).
    pub atoms: u64,
    /// Unique evaluation keys after dedup.
    pub unique: u64,
    /// Unique keys served from the engine's result cache.
    pub cache_hits: u64,
    /// Engine-reported wall time summed across batches
    /// ([`BatchTelemetry::wall_seconds`](parspeed_engine::BatchTelemetry::wall_seconds)
    /// in nanoseconds — previously dropped on the floor by the server's
    /// own accounting). On the wire this travels in the `metrics` op
    /// only; the `stats` reply shape is frozen.
    pub engine_nanos: u64,
    /// Request lines that spoke deprecated wire v1.
    pub v1_lines: u64,
    /// Whether the server is draining for shutdown.
    pub draining: bool,
}

impl ServerStats {
    /// Mean requests per executed batch (window occupancy).
    pub fn avg_batch_fill(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }

    /// Total engine wall time, in seconds.
    pub fn engine_seconds(&self) -> f64 {
        self.engine_nanos as f64 / 1e9
    }

    /// Batch-weighted dedup factor: atoms per unique evaluation across
    /// everything served (1.0 when nothing has run), the serving-layer
    /// twin of [`BatchTelemetry::dedup_factor`](parspeed_engine::BatchTelemetry::dedup_factor).
    pub fn dedup_factor(&self) -> f64 {
        if self.unique == 0 {
            1.0
        } else {
            self.atoms as f64 / self.unique as f64
        }
    }

    /// The counter fields in wire order, *excluding* the version/op
    /// envelope — shared by [`to_json`](ServerStats::to_json) (which
    /// must stay byte-compatible, so it adds nothing) and the `metrics`
    /// op (which appends the newer derived fields).
    pub(crate) fn counter_fields(&self) -> Vec<(String, Json)> {
        vec![
            ("connections".into(), Json::Num(self.connections as f64)),
            ("submitted".into(), Json::Num(self.submitted as f64)),
            ("completed".into(), Json::Num(self.completed as f64)),
            ("overloaded".into(), Json::Num(self.overloaded as f64)),
            ("queue_depth".into(), Json::Num(self.queue_depth as f64)),
            ("queue_high_watermark".into(), Json::Num(self.queue_high_watermark as f64)),
            ("batches".into(), Json::Num(self.batches as f64)),
            ("batched_requests".into(), Json::Num(self.batched_requests as f64)),
            ("avg_batch_fill".into(), Json::Num(self.avg_batch_fill())),
            ("max_batch_fill".into(), Json::Num(self.max_batch_fill as f64)),
            ("cross_client_batches".into(), Json::Num(self.cross_client_batches as f64)),
            ("cross_client_dedup_hits".into(), Json::Num(self.cross_client_dedup_hits as f64)),
            ("atoms".into(), Json::Num(self.atoms as f64)),
            ("unique".into(), Json::Num(self.unique as f64)),
            ("cache_hits".into(), Json::Num(self.cache_hits as f64)),
            ("v1_lines".into(), Json::Num(self.v1_lines as f64)),
            ("draining".into(), Json::Bool(self.draining)),
        ]
    }

    /// The stats as one wire-v2 JSONL record (the reply to the `stats`
    /// op; like the batch-mode telemetry record, it is new in v2 and
    /// always rendered in v2 shape). **Byte-compatible by contract**:
    /// existing clients parse this reply positionally and by exact
    /// field set, so it must never gain, lose, or reorder fields —
    /// richer data (engine time, dedup factor, stage histograms) goes
    /// out through `{"op":"metrics"}` instead.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("version".into(), Json::Num(WIRE_VERSION as f64)),
            ("op".into(), Json::Str("stats".into())),
        ];
        fields.extend(self.counter_fields());
        Json::Obj(fields)
    }
}

/// The `{"op":"health"}` wire reply — the lightweight liveness record a
/// load-balancer probe reads without paying for a full counter snapshot:
/// `{"version":2,"op":"health","ok":true,"uptime_seconds":…,
/// "draining":…,"shard":…}`. `shard` is the backend's id behind a
/// router, `null` on a standalone server. **Byte-compatible by
/// contract** like the `stats` op: the field set and order are frozen
/// by test; richer data belongs on `{"op":"metrics"}`.
pub fn health_to_json(uptime_seconds: f64, draining: bool, shard: Option<usize>) -> Json {
    Json::Obj(vec![
        ("version".into(), Json::Num(WIRE_VERSION as f64)),
        ("op".into(), Json::Str("health".into())),
        ("ok".into(), Json::Bool(true)),
        ("uptime_seconds".into(), Json::Num(uptime_seconds)),
        ("draining".into(), Json::Bool(draining)),
        ("shard".into(), shard.map_or(Json::Null, |s| Json::Num(s as f64))),
    ])
}

impl fmt::Display for ServerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} connection(s), {} submitted → {} completed + {} overloaded; \
             {} batch(es) carrying {} request(s) ({:.1} avg fill, {} max); \
             {} cross-client batch(es) saved {} duplicate evaluation(s); \
             {} atoms → {} unique ({:.2}× dedup), {} cache hits; \
             {:.3}s engine time; {} v1 line(s)",
            self.connections,
            self.submitted,
            self.completed,
            self.overloaded,
            self.batches,
            self.batched_requests,
            self.avg_batch_fill(),
            self.max_batch_fill,
            self.cross_client_batches,
            self.cross_client_dedup_hits,
            self.atoms,
            self.unique,
            self.dedup_factor(),
            self.cache_hits,
            self.engine_seconds(),
            self.v1_lines,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_json_round_trip() {
        let c = Counters::default();
        c.add(&c.submitted, 7);
        c.add(&c.completed, 5);
        c.add(&c.overloaded, 2);
        c.add(&c.batches, 2);
        c.add(&c.batched_requests, 5);
        c.raise(&c.max_batch_fill, 3);
        let s = c.snapshot(1, false);
        assert_eq!(s.submitted, 7);
        assert!((s.avg_batch_fill() - 2.5).abs() < 1e-12);
        let rendered = s.to_json().render();
        let back = parspeed_engine::jsonl::parse(&rendered).unwrap();
        assert_eq!(back.get("op").unwrap().as_str(), Some("stats"));
        assert_eq!(back.get("version").unwrap().as_usize(), Some(2));
        assert_eq!(back.get("overloaded").unwrap().as_usize(), Some(2));
        assert_eq!(back.get("avg_batch_fill").unwrap().as_f64(), Some(2.5));
    }

    #[test]
    fn stats_wire_shape_is_frozen() {
        // The byte-compatibility contract: exactly these fields, in
        // exactly this order, whatever else the server learns to
        // measure. `engine_nanos` and friends must NOT appear.
        let Json::Obj(fields) = Counters::default().snapshot(0, false).to_json() else {
            panic!("stats renders an object")
        };
        let names: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            names,
            [
                "version",
                "op",
                "connections",
                "submitted",
                "completed",
                "overloaded",
                "queue_depth",
                "queue_high_watermark",
                "batches",
                "batched_requests",
                "avg_batch_fill",
                "max_batch_fill",
                "cross_client_batches",
                "cross_client_dedup_hits",
                "atoms",
                "unique",
                "cache_hits",
                "v1_lines",
                "draining",
            ]
        );
    }

    #[test]
    fn health_wire_shape_is_frozen() {
        // Same contract as the stats op: exactly these fields, in
        // exactly this order — probes parse this positionally.
        let Json::Obj(fields) = health_to_json(1.5, false, None) else {
            panic!("health renders an object")
        };
        let names: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, ["version", "op", "ok", "uptime_seconds", "draining", "shard"]);
    }

    #[test]
    fn health_reports_shard_identity_and_drain() {
        let standalone = health_to_json(0.25, false, None).render();
        let back = parspeed_engine::jsonl::parse(&standalone).unwrap();
        assert_eq!(back.get("op").unwrap().as_str(), Some("health"));
        assert_eq!(back.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(back.get("shard"), Some(&Json::Null));
        assert_eq!(back.get("draining"), Some(&Json::Bool(false)));

        let sharded = health_to_json(9.0, true, Some(2)).render();
        let back = parspeed_engine::jsonl::parse(&sharded).unwrap();
        assert_eq!(back.get("shard").unwrap().as_usize(), Some(2));
        assert_eq!(back.get("draining"), Some(&Json::Bool(true)));
        assert_eq!(back.get("uptime_seconds").unwrap().as_f64(), Some(9.0));
    }

    #[test]
    fn engine_time_and_dedup_factor_are_derived_not_wire() {
        let c = Counters::default();
        c.add(&c.atoms, 100);
        c.add(&c.unique, 25);
        c.add(&c.engine_nanos, 1_500_000_000);
        let s = c.snapshot(0, false);
        assert!((s.dedup_factor() - 4.0).abs() < 1e-12);
        assert!((s.engine_seconds() - 1.5).abs() < 1e-12);
        assert!(!s.to_json().render().contains("engine"), "stats wire stays frozen");
    }

    #[test]
    fn display_names_the_load_bearing_numbers() {
        let s = Counters::default().snapshot(0, true);
        let text = s.to_string();
        assert!(text.contains("0 submitted"));
        assert!(text.contains("overloaded"));
        assert!(text.contains("cross-client"));
        assert!(text.contains("engine time"));
    }
}
