//! The server's observability state and the `{"op":"metrics"}` /
//! `{"op":"trace"}` snapshot types.
//!
//! [`ServerObs`] owns what `parspeed-obs` provides generically: one
//! [`StageSet`] covering the full pipeline (the server records `queue`,
//! `window`, and `route`; the engine records `plan`, `dedup`, `cache`,
//! and `exec` through the same object via
//! [`Service::install_recorder`](parspeed_engine::Service::install_recorder)),
//! plus the [`TraceRing`] of recent requests and the batch-id counter
//! trace events reference.
//!
//! [`MetricsSnapshot`] is the full answer to `{"op":"metrics"}`: the
//! [`ServerStats`] counters (including the engine-time and dedup-factor
//! fields the byte-frozen `stats` op cannot carry) plus one
//! [`StageSummary`] per stage. It renders as wire-v2 JSON or as the
//! shared Prometheus-style text exposition.

use crate::stats::ServerStats;
use parspeed_engine::jsonl::Json;
use parspeed_engine::WIRE_VERSION;
use parspeed_obs::{
    render_exposition, Recorder, ResilienceSnapshot, ShardedHistogram, Stage, StageSet,
    StageSummary,
};
use parspeed_obs::{TraceEvent, TraceRing};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Saturating nanosecond span between two instants (0 if reversed).
pub(crate) fn ns_between(from: Instant, to: Instant) -> u64 {
    to.saturating_duration_since(from).as_nanos() as u64
}

/// The server's observability state: per-stage histograms, the request
/// trace ring, and the batch-id counter. One per server; shared with
/// every connection and installed into the engine as its [`Recorder`].
#[derive(Debug)]
pub struct ServerObs {
    enabled: bool,
    epoch: Instant,
    stages: StageSet,
    /// End-to-end request latency (admission to reply routed) — the SLO
    /// histogram behind the `metrics` op's `latency` object. Every
    /// delivery funnel records here, so overloads and deadline answers
    /// count exactly like real results.
    latency: ShardedHistogram,
    trace: TraceRing,
    batch_ids: AtomicU64,
}

impl ServerObs {
    pub(crate) fn new(enabled: bool, trace_capacity: usize) -> Self {
        ServerObs {
            enabled,
            epoch: Instant::now(),
            stages: StageSet::new(),
            latency: ShardedHistogram::new(),
            trace: TraceRing::new(if enabled { trace_capacity } else { 0 }),
            batch_ids: AtomicU64::new(0),
        }
    }

    /// Whether stage recording is on (see
    /// [`ServerConfig::observe`](crate::ServerConfig::observe)).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// One summary per pipeline stage, in canonical order.
    pub fn stage_summaries(&self) -> Vec<(Stage, StageSummary)> {
        self.stages.summaries()
    }

    /// The kept trace events, oldest first (non-destructive, so a
    /// `{"op":"trace"}` probe does not erase the drain flush).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.trace.events()
    }

    /// The trace ring capacity (0 = tracing off).
    pub fn trace_capacity(&self) -> usize {
        self.trace.capacity()
    }

    /// Seconds since the server started (the `health` op's uptime).
    /// Always live — the epoch is stamped even with observability off.
    pub fn uptime_seconds(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Attributes one latency sample (no-op when disabled).
    pub(crate) fn record(&self, stage: Stage, nanos: u64) {
        if self.enabled {
            self.stages.record(stage, nanos);
        }
    }

    /// Counts one end-to-end latency sample (no-op when disabled).
    pub(crate) fn record_latency(&self, nanos: u64) {
        if self.enabled {
            self.latency.record(nanos);
        }
    }

    /// The end-to-end latency summary (p50/p90/p99/p999 and friends).
    pub fn latency_summary(&self) -> StageSummary {
        StageSummary::of(&self.latency.snapshot())
    }

    /// Hands out the next engine-batch id (trace correlation).
    pub(crate) fn next_batch_id(&self) -> u64 {
        self.batch_ids.fetch_add(1, Ordering::Relaxed)
    }

    /// Monotonic nanoseconds of `at` since the server started.
    pub(crate) fn ns_since_epoch(&self, at: Instant) -> u64 {
        ns_between(self.epoch, at)
    }

    /// Appends a trace event (no-op when tracing is off).
    pub(crate) fn trace_push(&self, event: TraceEvent) {
        self.trace.push(event);
    }

    pub(crate) fn tracing(&self) -> bool {
        self.trace.enabled()
    }
}

impl Recorder for ServerObs {
    fn record(&self, stage: Stage, nanos: u64) {
        ServerObs::record(self, stage, nanos);
    }
}

/// The full observability snapshot: everything `{"op":"stats"}` says,
/// the engine-time fields it cannot carry, and one histogram summary
/// per pipeline stage.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// The counter snapshot (same consistency rules as the `stats` op).
    pub stats: ServerStats,
    /// One summary per stage, in canonical pipeline order.
    pub stages: Vec<(Stage, StageSummary)>,
    /// Recovery-action counters: deadline misses, shed requests,
    /// caught worker panics (and, on a router, retries/failovers/
    /// breaker transitions).
    pub resilience: ResilienceSnapshot,
    /// Whether cache-only brownout degradation is active right now.
    pub brownout: bool,
    /// End-to-end request latency (admission to reply routed): the SLO
    /// percentiles — p50/p99/p999 — operators alert on, one histogram
    /// across every connection and delivery path.
    pub latency: StageSummary,
}

impl MetricsSnapshot {
    /// The snapshot as one wire-v2 JSONL record (the reply to the
    /// `metrics` op): `{"version":2,"op":"metrics","stats":{…},
    /// "stages":{…}}`. The `stats` object carries every `stats`-op
    /// field plus `engine_seconds` and `dedup_factor` — new fields land
    /// here, never on the byte-frozen `stats` op.
    pub fn to_json(&self) -> Json {
        let mut stats = self.stats.counter_fields();
        stats.push(("engine_seconds".into(), Json::Num(self.stats.engine_seconds())));
        stats.push(("dedup_factor".into(), Json::Num(self.stats.dedup_factor())));
        let stages = self
            .stages
            .iter()
            .map(|(stage, s)| (stage.name().to_string(), summary_to_json(s)))
            .collect();
        // `latency` appends after the frozen prefix (additive-append
        // tail pattern): positional consumers of the original record
        // keep working, new consumers find the SLO percentiles by name.
        Json::Obj(vec![
            ("version".into(), Json::Num(WIRE_VERSION as f64)),
            ("op".into(), Json::Str("metrics".into())),
            ("stats".into(), Json::Obj(stats)),
            ("stages".into(), Json::Obj(stages)),
            ("resilience".into(), resilience_to_json(&self.resilience, self.brownout)),
            ("latency".into(), summary_to_json(&self.latency)),
        ])
    }

    /// The Prometheus-style text exposition (`parspeed serve
    /// --metrics-human`). Rendered through the wire shape so
    /// `parspeed metrics --human` — which only has the wire record —
    /// produces byte-identical text.
    pub fn render_human(&self) -> String {
        Self::render_human_wire(&self.to_json()).expect("own wire shape renders")
    }

    /// Renders a parsed `{"op":"metrics"}` wire record as the shared
    /// Prometheus-style text. `None` if the value is not such a record.
    pub fn render_human_wire(v: &Json) -> Option<String> {
        if v.get("op").and_then(Json::as_str) != Some("metrics") {
            return None;
        }
        let Json::Obj(stats) = v.get("stats")? else { return None };
        let mut out = String::from("# parspeed server metrics\n");
        for (name, value) in stats {
            let rendered = match value {
                Json::Bool(b) => if *b { "1" } else { "0" }.to_string(),
                other => other.render(),
            };
            out.push_str(&format!("parspeed_{name} {rendered}\n"));
        }
        // The resilience counters (absent on pre-resilience records).
        if let Some(Json::Obj(resilience)) = v.get("resilience") {
            for (name, value) in resilience {
                let rendered = match value {
                    Json::Bool(b) => if *b { "1" } else { "0" }.to_string(),
                    other => other.render(),
                };
                out.push_str(&format!("parspeed_resilience_{name} {rendered}\n"));
            }
        }
        let Json::Obj(stages) = v.get("stages")? else { return None };
        let mut summaries: Vec<(&str, StageSummary)> =
            stages.iter().map(|(name, s)| (name.as_str(), summary_from_json(s))).collect();
        // End-to-end latency renders as one more labeled series (absent
        // on pre-latency records).
        if let Some(latency) = v.get("latency") {
            summaries.push(("e2e", summary_from_json(latency)));
        }
        out.push_str(&render_exposition(&summaries));
        Some(out)
    }
}

/// One histogram summary as its wire object (shared by the per-stage
/// and end-to-end `latency` sections, so the shapes cannot drift).
fn summary_to_json(s: &StageSummary) -> Json {
    Json::Obj(vec![
        ("count".into(), Json::Num(s.count as f64)),
        ("total_ns".into(), Json::Num(s.total_ns as f64)),
        ("max_ns".into(), Json::Num(s.max_ns as f64)),
        ("p50_ns".into(), Json::Num(s.p50_ns as f64)),
        ("p90_ns".into(), Json::Num(s.p90_ns as f64)),
        ("p99_ns".into(), Json::Num(s.p99_ns as f64)),
        ("p999_ns".into(), Json::Num(s.p999_ns as f64)),
    ])
}

/// The inverse of [`summary_to_json`], tolerant of missing fields.
fn summary_from_json(s: &Json) -> StageSummary {
    let field = |k: &str| s.get(k).and_then(Json::as_f64).unwrap_or(0.0) as u64;
    StageSummary {
        count: field("count"),
        total_ns: field("total_ns"),
        max_ns: field("max_ns"),
        p50_ns: field("p50_ns"),
        p90_ns: field("p90_ns"),
        p99_ns: field("p99_ns"),
        p999_ns: field("p999_ns"),
    }
}

/// The shared `resilience` wire object — one field per
/// [`ResilienceSnapshot`] counter (names and order from
/// [`ResilienceSnapshot::fields`], so the server's and the router's
/// `metrics` replies can never drift) plus the live `brownout` flag.
pub fn resilience_to_json(snap: &ResilienceSnapshot, brownout: bool) -> Json {
    let mut fields: Vec<(String, Json)> =
        snap.fields().iter().map(|(name, v)| (name.to_string(), Json::Num(*v as f64))).collect();
    fields.push(("brownout".into(), Json::Bool(brownout)));
    Json::Obj(fields)
}

/// The `{"op":"trace"}` wire reply: ring capacity, kept count, and the
/// events oldest-first.
pub(crate) fn trace_to_json(events: &[TraceEvent], capacity: usize) -> Json {
    let rendered = events
        .iter()
        .map(|e| {
            Json::Obj(vec![
                ("at_ns".into(), Json::Num(e.at_ns as f64)),
                ("client".into(), Json::Num(e.client as f64)),
                ("seq".into(), Json::Num(e.seq as f64)),
                ("query".into(), Json::Str(e.op.into())),
                ("batch".into(), Json::Num(e.batch as f64)),
                ("cache_hit".into(), Json::Bool(e.cache_hit)),
                ("queue_ns".into(), Json::Num(e.queue_ns as f64)),
                ("batch_ns".into(), Json::Num(e.batch_ns as f64)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("version".into(), Json::Num(WIRE_VERSION as f64)),
        ("op".into(), Json::Str("trace".into())),
        ("capacity".into(), Json::Num(capacity as f64)),
        ("kept".into(), Json::Num(events.len() as f64)),
        ("events".into(), Json::Arr(rendered)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Counters;

    #[test]
    fn metrics_json_carries_stats_and_stages() {
        let obs = ServerObs::new(true, 4);
        obs.record(Stage::Queue, 1000);
        obs.record(Stage::Exec, 2_000_000);
        let resilience = ResilienceSnapshot { deadline_missed: 3, ..Default::default() };
        obs.record_latency(3_000_000);
        let snapshot = MetricsSnapshot {
            stats: Counters::default().snapshot(0, false),
            stages: obs.stage_summaries(),
            resilience,
            brownout: false,
            latency: obs.latency_summary(),
        };
        let rendered = snapshot.to_json().render();
        let back = parspeed_engine::jsonl::parse(&rendered).unwrap();
        assert_eq!(back.get("op").unwrap().as_str(), Some("metrics"));
        let stats = back.get("stats").unwrap();
        assert_eq!(stats.get("submitted").unwrap().as_usize(), Some(0));
        assert!(stats.get("engine_seconds").is_some());
        assert!(stats.get("dedup_factor").is_some());
        let stages = back.get("stages").unwrap();
        for stage in Stage::ALL {
            let s = stages.get(stage.name()).unwrap_or_else(|| panic!("missing {stage:?}"));
            assert!(s.get("p999_ns").is_some());
        }
        assert_eq!(stages.get("queue").unwrap().get("count").unwrap().as_usize(), Some(1));
        // The resilience section rides the metrics op, one field per
        // counter plus the brownout flag.
        let res = back.get("resilience").unwrap();
        assert_eq!(res.get("deadline_missed").unwrap().as_usize(), Some(3));
        assert_eq!(res.get("retries").unwrap().as_usize(), Some(0));
        assert_eq!(res.get("brownout"), Some(&Json::Bool(false)));
        // The end-to-end SLO section: appended after the frozen prefix,
        // same summary shape as a stage.
        let latency = back.get("latency").unwrap();
        assert_eq!(latency.get("count").unwrap().as_usize(), Some(1));
        assert!(latency.get("p999_ns").unwrap().as_f64().unwrap() >= 1.0);
    }

    #[test]
    fn human_rendering_is_shared_between_typed_and_wire_paths() {
        let obs = ServerObs::new(true, 0);
        obs.record(Stage::Plan, 500);
        obs.record_latency(2_500);
        let snapshot = MetricsSnapshot {
            stats: Counters::default().snapshot(2, true),
            stages: obs.stage_summaries(),
            resilience: ResilienceSnapshot::default(),
            brownout: true,
            latency: obs.latency_summary(),
        };
        let direct = snapshot.render_human();
        let wire = parspeed_engine::jsonl::parse(&snapshot.to_json().render()).unwrap();
        assert_eq!(MetricsSnapshot::render_human_wire(&wire).unwrap(), direct);
        assert!(direct.contains("parspeed_queue_depth 2"), "{direct}");
        assert!(direct.contains("parspeed_draining 1"), "{direct}");
        assert!(direct.contains("parspeed_resilience_retries 0"), "{direct}");
        assert!(direct.contains("parspeed_resilience_brownout 1"), "{direct}");
        assert!(direct.contains("parspeed_stage_latency_ns{stage=\"plan\",quantile=\"0.5\"}"));
        assert!(direct.contains("parspeed_stage_latency_ns{stage=\"e2e\",quantile=\"0.999\"}"));
    }

    #[test]
    fn disabled_obs_records_nothing() {
        let obs = ServerObs::new(false, 128);
        obs.record(Stage::Queue, 1000);
        assert!(!obs.tracing(), "trace ring forced off with observe=false");
        assert!(obs.stage_summaries().iter().all(|(_, s)| s.count == 0));
    }

    #[test]
    fn trace_reply_shape() {
        let events = vec![TraceEvent {
            at_ns: 5,
            client: 1,
            seq: 0,
            op: "solve",
            batch: 3,
            cache_hit: false,
            queue_ns: 10,
            batch_ns: 20,
        }];
        let v = trace_to_json(&events, 16);
        let back = parspeed_engine::jsonl::parse(&v.render()).unwrap();
        assert_eq!(back.get("op").unwrap().as_str(), Some("trace"));
        assert_eq!(back.get("kept").unwrap().as_usize(), Some(1));
        let Json::Arr(items) = back.get("events").unwrap() else { panic!("events array") };
        assert_eq!(items[0].get("query").unwrap().as_str(), Some("solve"));
    }
}
