//! The readiness-driven TCP frontend: one thread, many connections.
//!
//! The thread-per-connection frontend ([`net`](crate::net)) pays two OS
//! threads plus a per-line `String` allocation per connection — a fixed
//! per-client overhead that caps how many clients a shard can front.
//! This module replaces it with a single event-loop thread multiplexed
//! over every connection via [`parspeed_netio::Poller`] (epoll on
//! Linux): nonblocking accept, reads into a **reusable per-connection
//! buffer** that lines are sliced out of without allocating, and writes
//! through a **reusable per-connection output buffer** with real
//! backpressure.
//!
//! Backpressure is two watermarks on the output buffer, integrated with
//! the batcher's overload semantics rather than bolted beside them:
//!
//! * over the **shed** watermark ([`EventLoopConfig::shed_watermark`]),
//!   newly parsed engine-bound requests answer `overloaded` in their
//!   own slot without entering the batcher — the client is not
//!   consuming replies, so admitting more work would only grow the
//!   buffer (serving-only ops still answer: a health probe must work
//!   *especially* under overload);
//! * over the **stop** watermark ([`EventLoopConfig::stop_watermark`]),
//!   the connection stops being *read* entirely (its read interest is
//!   dropped) until the buffer drains back below the shed watermark —
//!   the slow client's bytes accumulate in its own socket, and the
//!   batcher, the loop, and every other connection proceed untouched.
//!
//! A connection whose write buffer is full therefore **never wedges the
//! batcher**: replies the batcher routes land in the connection's
//! reorder buffer ([`ConnShared`]), the loop moves them to the output
//! buffer as space allows, and everything else runs at full speed.
//!
//! Batcher workers finish replies on their own threads; they signal the
//! loop through the [`ConnShared`] waker — a self-pipe
//! ([`parspeed_netio::WakePipe`]) registered in the same poller — so
//! the loop never polls connections for output and never misses any.
//!
//! The loop is generic over a [`WireHandler`] so the sharded router
//! frontend reuses the exact same accept/read/backpressure machinery
//! with its own per-line dispatch.

use crate::conn::{ConnShared, Delivery};
use parspeed_engine::{jsonl, ParspeedError, WIRE_VERSION};
use parspeed_netio::{accept_nonblocking, Event, Interest, Poller, WakePipe};
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What a serving tier plugs into the event loop: connection setup, the
/// per-line wire dispatch, and the drain flag. The loop owns sockets,
/// buffers, and backpressure; the handler owns wire semantics.
pub trait WireHandler: Send + Sync + 'static {
    /// Allocates the shared per-connection state (id, reorder buffer)
    /// for a newly accepted connection.
    fn connect(&self) -> Arc<ConnShared>;

    /// Handles one trimmed, non-empty request line. `shed`, when
    /// `Some`, is the loop's write-backpressure verdict: engine-bound
    /// work must be refused in-slot with the overload answer carrying
    /// this message (cheap serving-only ops may still answer).
    fn line(
        &self,
        conn: &Arc<ConnShared>,
        text: &str,
        line_no: usize,
        v1_lines: &mut u64,
        shed: Option<&str>,
    );

    /// A request line exceeded [`EventLoopConfig::max_line`]: answer its
    /// slot with a parse error naming the limit (the line itself is
    /// being discarded and was never parsed, so it has no version to
    /// honor — current wire shape, like any other unparseable line).
    fn oversize(&self, conn: &Arc<ConnShared>, line_no: usize, max_line: usize) {
        let seq = conn.alloc_seq();
        let e = jsonl::LineError {
            version: WIRE_VERSION,
            error: ParspeedError::parse(format!(
                "request line exceeded the {max_line}-byte limit; \
                 excess discarded up to the next newline"
            )),
        };
        conn.route(seq, Delivery::Line(jsonl::render_parse_error(&e, line_no)));
    }

    /// The connection's read half ended (EOF, error, or server drain):
    /// emit any per-connection notes and mark the reorder buffer EOF.
    fn disconnect(&self, conn: &Arc<ConnShared>, v1_lines: u64);

    /// Whether the tier is draining for shutdown (checked every tick;
    /// the loop then stops accepting/reading, flushes, and exits).
    fn draining(&self) -> bool;
}

/// Event-loop tuning. The defaults suit production serving; tests
/// shrink the watermarks to exercise backpressure deterministically.
#[derive(Debug, Clone, Copy)]
pub struct EventLoopConfig {
    /// Poll timeout — how often the loop re-checks the drain flag when
    /// fully idle (busy loops notice immediately).
    pub tick: Duration,
    /// Output-buffer bytes beyond which new engine-bound requests are
    /// shed as `overloaded` instead of admitted.
    pub shed_watermark: usize,
    /// Output-buffer bytes beyond which the connection stops being
    /// read (resumes below `shed_watermark` — hysteresis, no flapping).
    pub stop_watermark: usize,
    /// Longest accepted request line; anything longer answers a parse
    /// error and the excess is discarded up to the next newline.
    pub max_line: usize,
    /// How long a drain waits for stalled clients to consume their
    /// buffered replies before closing them anyway.
    pub drain_grace: Duration,
}

impl Default for EventLoopConfig {
    fn default() -> Self {
        EventLoopConfig {
            tick: Duration::from_millis(10),
            shed_watermark: 256 * 1024,
            stop_watermark: 1024 * 1024,
            max_line: 1024 * 1024,
            drain_grace: Duration::from_secs(5),
        }
    }
}

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const TOKEN_CONN_BASE: u64 = 2;

/// How many bytes one readable event may pull from a single connection
/// before yielding to the others (level-triggered polling re-reports
/// the remainder, so nothing is lost — this is fairness, not a limit).
const READ_QUANTUM: usize = 64 * 1024;

/// Cross-thread wake state: batcher workers push the token of a
/// connection with newly released replies and poke the pipe; the loop
/// drains the pipe and takes the token list.
struct WakeState {
    pipe: WakePipe,
    pending: Mutex<Vec<u64>>,
}

impl WakeState {
    fn notify(&self, token: u64) {
        let mut pending = self.pending.lock().unwrap();
        let first = pending.is_empty();
        if !pending.contains(&token) {
            pending.push(token);
        }
        drop(pending);
        // Only the transition empty→non-empty needs a pipe byte: the
        // list is swapped under the same lock, so a push that found it
        // non-empty is always collected by the swap that will follow
        // the already-written byte.
        if first {
            self.pipe.wake();
        }
    }

    fn take(&self) -> Vec<u64> {
        std::mem::take(&mut *self.pending.lock().unwrap())
    }
}

/// One live connection's loop-owned state.
struct LoopConn {
    stream: TcpStream,
    conn: Arc<ConnShared>,
    /// Unparsed input tail (reused across reads; no per-line String).
    rbuf: Vec<u8>,
    /// Rendered replies not yet written to the socket; `wpos` marks the
    /// already-written prefix (compacted when fully flushed).
    wbuf: Vec<u8>,
    wpos: usize,
    line_no: usize,
    v1_lines: u64,
    /// The read half is done (peer EOF, error, or drain) — only
    /// flushing remains.
    eof: bool,
    /// Reading is suspended because `wbuf` crossed the stop watermark.
    paused: bool,
    /// Discarding an oversized line up to its terminating newline.
    discarding: bool,
    /// The interest currently registered with the poller.
    interest: Interest,
}

impl LoopConn {
    fn pending_out(&self) -> usize {
        self.wbuf.len() - self.wpos
    }
}

/// Binds the loop's poller and waker and spawns the loop thread. The
/// listener must already be bound; it is switched to nonblocking here.
pub fn spawn_event_loop(
    listener: TcpListener,
    handler: Arc<dyn WireHandler>,
    cfg: EventLoopConfig,
    thread_name: String,
) -> io::Result<JoinHandle<()>> {
    assert!(cfg.shed_watermark <= cfg.stop_watermark, "shed watermark must not exceed stop");
    listener.set_nonblocking(true)?;
    let poller = Poller::new()?;
    let wake = Arc::new(WakeState { pipe: WakePipe::new()?, pending: Mutex::new(Vec::new()) });
    poller.add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
    poller.add(wake.pipe.read_fd(), TOKEN_WAKE, Interest::READ)?;
    let thread = std::thread::Builder::new().name(thread_name).spawn(move || {
        EventLoop { listener, handler, cfg, poller, wake, conns: Vec::new() }.run()
    })?;
    Ok(thread)
}

struct EventLoop {
    listener: TcpListener,
    handler: Arc<dyn WireHandler>,
    cfg: EventLoopConfig,
    poller: Poller,
    wake: Arc<WakeState>,
    /// Connection slab indexed by `token - TOKEN_CONN_BASE`. Freed
    /// slots are only reused on the *next* iteration, so an event
    /// queued for a closed connection can never touch its successor.
    conns: Vec<Option<LoopConn>>,
}

impl EventLoop {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut free: Vec<usize> = Vec::new();
        let mut freed_this_round: Vec<usize> = Vec::new();
        let mut drain_started: Option<Instant> = None;

        loop {
            let _ = self.poller.wait(&mut events, Some(self.cfg.tick));
            let accepting = drain_started.is_none();
            for &ev in &events {
                match ev.token {
                    TOKEN_LISTENER if accepting => self.accept_burst(&mut free),
                    TOKEN_LISTENER => {}
                    TOKEN_WAKE => {
                        self.wake.pipe.drain();
                        for token in self.wake.take() {
                            self.pump(token, &mut freed_this_round);
                        }
                    }
                    token => {
                        let slot = (token - TOKEN_CONN_BASE) as usize;
                        if self.conns.get(slot).map(Option::is_some) != Some(true) {
                            continue; // closed earlier this round
                        }
                        if ev.readable {
                            self.read_ready(token, &mut freed_this_round);
                        }
                        if ev.writable {
                            self.pump(token, &mut freed_this_round);
                        }
                        if ev.hangup {
                            self.hangup(slot, &mut freed_this_round);
                        }
                    }
                }
            }
            free.append(&mut freed_this_round);

            if self.handler.draining() {
                if drain_started.is_none() {
                    drain_started = Some(Instant::now());
                    self.begin_drain();
                }
                // Flush every tick (wakes also flush): done when every
                // connection is closed, or the grace for stalled
                // clients runs out.
                for slot in 0..self.conns.len() {
                    if self.conns[slot].is_some() {
                        self.pump(slot as u64 + TOKEN_CONN_BASE, &mut freed_this_round);
                    }
                }
                free.append(&mut freed_this_round);
                let live = self.conns.iter().filter(|c| c.is_some()).count();
                let expired = drain_started.is_some_and(|t| t.elapsed() >= self.cfg.drain_grace);
                if live == 0 || expired {
                    return; // sockets and poller close on drop
                }
            }
        }
    }

    /// Accepts until the queue is empty, registering each connection.
    fn accept_burst(&mut self, free: &mut Vec<usize>) {
        loop {
            let stream = match accept_nonblocking(&self.listener) {
                Ok(Some((stream, _peer))) => stream,
                Ok(None) => return,
                Err(e) => {
                    // Out of descriptors or a transient accept error:
                    // note it and let the next readiness report retry.
                    eprintln!("note: dropping connection: {e}");
                    return;
                }
            };
            if let Err(e) = self.register(stream, free) {
                eprintln!("note: dropping connection: {e}");
            }
        }
    }

    fn register(&mut self, stream: TcpStream, free: &mut Vec<usize>) -> io::Result<()> {
        stream.set_nonblocking(true)?;
        let slot = match free.pop() {
            Some(slot) => slot,
            None => {
                self.conns.push(None);
                self.conns.len() - 1
            }
        };
        let token = slot as u64 + TOKEN_CONN_BASE;
        let conn = self.handler.connect();
        let wake = Arc::clone(&self.wake);
        // Installed before the first byte is read, so no release can
        // ever go unsignalled.
        conn.set_waker(Arc::new(move || wake.notify(token)));
        if let Err(e) = self.poller.add(stream.as_raw_fd(), token, Interest::READ) {
            // Slot stays free for the next accept; the reorder buffer
            // is dropped with the socket.
            free.push(slot);
            return Err(e);
        }
        self.conns[slot] = Some(LoopConn {
            stream,
            conn,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            line_no: 0,
            v1_lines: 0,
            eof: false,
            paused: false,
            discarding: false,
            interest: Interest::READ,
        });
        Ok(())
    }

    /// Reads a quantum from a readable connection, slices complete
    /// lines out of the reusable buffer, and dispatches each through
    /// the handler — then pumps any output that produced.
    fn read_ready(&mut self, token: u64, freed: &mut Vec<usize>) {
        let slot = (token - TOKEN_CONN_BASE) as usize;
        let Some(c) = self.conns[slot].as_mut() else { return };
        if c.eof || c.paused {
            return;
        }
        let mut chunk = [0u8; 16 * 1024];
        let mut taken = 0usize;
        let mut saw_eof = false;
        while taken < READ_QUANTUM {
            match c.stream.read(&mut chunk) {
                Ok(0) => {
                    saw_eof = true;
                    break;
                }
                Ok(n) => {
                    c.rbuf.extend_from_slice(&chunk[..n]);
                    taken += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    saw_eof = true;
                    break;
                }
            }
        }

        self.parse_lines(slot, saw_eof);

        if saw_eof {
            let handler = Arc::clone(&self.handler);
            let c = self.conns[slot].as_mut().expect("slot live");
            if !c.eof {
                c.eof = true;
                handler.disconnect(&c.conn, c.v1_lines);
            }
        }
        self.pump(token, freed);
    }

    /// Slices and dispatches every complete line in the read buffer
    /// (plus, `at_eof`, the unterminated final line — parity with the
    /// blocking reader's `BufRead::lines`). The shed verdict is taken
    /// per line from the output buffer's current backlog.
    fn parse_lines(&mut self, slot: usize, at_eof: bool) {
        let handler = Arc::clone(&self.handler);
        let shed_limit = self.cfg.shed_watermark;
        let max_line = self.cfg.max_line;
        let c = self.conns[slot].as_mut().expect("slot live");
        let mut start = 0usize;
        loop {
            if c.discarding {
                match c.rbuf[start..].iter().position(|&b| b == b'\n') {
                    Some(pos) => {
                        start += pos + 1;
                        c.discarding = false;
                        continue;
                    }
                    None => {
                        start = c.rbuf.len();
                        break;
                    }
                }
            }
            let end = match c.rbuf[start..].iter().position(|&b| b == b'\n') {
                Some(pos) => start + pos,
                // EOF flushes the unterminated tail as a final line.
                None if at_eof && start < c.rbuf.len() => c.rbuf.len(),
                None => {
                    if c.rbuf.len() - start > max_line {
                        // Answer the oversized line's slot with a parse
                        // error naming the limit, then discard to the
                        // next newline.
                        c.line_no += 1;
                        handler.oversize(&c.conn, c.line_no, max_line);
                        c.rbuf.clear();
                        c.discarding = true;
                        start = 0;
                    }
                    break;
                }
            };
            // Blank lines consume a line number but answer nothing —
            // the blocking reader's exact behavior.
            c.line_no += 1;
            if !c.rbuf[start..end].iter().all(|b| b.is_ascii_whitespace()) {
                let backlog = c.pending_out();
                let shed_msg = (backlog >= shed_limit).then(|| shed_message(backlog));
                // Slice the line out of the reusable buffer: zero-copy
                // for valid UTF-8 (the lossy conversion only allocates
                // on invalid bytes, which then answer a parse error).
                let text = String::from_utf8_lossy(&c.rbuf[start..end]);
                let line_no = c.line_no;
                let mut v1 = c.v1_lines;
                handler.line(&c.conn, text.trim(), line_no, &mut v1, shed_msg.as_deref());
                c.v1_lines = v1;
            }
            if end == c.rbuf.len() {
                start = end; // unterminated final line at EOF
                break;
            }
            start = end + 1;
        }
        c.rbuf.drain(..start);
    }

    /// Moves released replies into the output buffer, writes what the
    /// socket accepts, updates backpressure state and poller interest,
    /// and finalizes the connection once it is flushed-and-done.
    fn pump(&mut self, token: u64, freed: &mut Vec<usize>) {
        let slot = (token - TOKEN_CONN_BASE) as usize;
        let Some(c) = self.conns[slot].as_mut() else { return };

        let mut dead = false;
        loop {
            // Pull released replies while buffer space remains; the
            // rest stay in the reorder buffer until the client reads.
            while c.pending_out() < self.cfg.stop_watermark {
                match c.conn.try_released() {
                    Some((_seq, Delivery::Line(line))) => {
                        c.wbuf.extend_from_slice(line.as_bytes());
                        c.wbuf.push(b'\n');
                    }
                    Some((_seq, Delivery::Typed(_))) => {
                        unreachable!("typed delivery on a TCP connection")
                    }
                    None => break,
                }
            }
            // Write what the socket will take.
            let mut progressed = false;
            while c.wpos < c.wbuf.len() {
                match c.stream.write(&c.wbuf[c.wpos..]) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => {
                        c.wpos += n;
                        progressed = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if c.wpos == c.wbuf.len() {
                c.wbuf.clear();
                c.wpos = 0;
            }
            // A fully drained buffer may admit more released replies;
            // loop until neither side can progress.
            if dead || !progressed || c.pending_out() > 0 {
                break;
            }
        }

        if dead {
            // The peer stopped reading: tear the whole connection down
            // (mirrors the blocking writer's `Shutdown::Both`).
            let handler = Arc::clone(&self.handler);
            let c = self.conns[slot].as_mut().expect("slot live");
            if !c.eof {
                c.eof = true;
                handler.disconnect(&c.conn, c.v1_lines);
            }
            self.close(slot, freed);
            return;
        }

        let c = self.conns[slot].as_mut().expect("slot live");
        // Backpressure hysteresis: pause reads over the stop watermark,
        // resume once drained below the shed watermark.
        if c.pending_out() >= self.cfg.stop_watermark {
            c.paused = true;
        } else if c.paused && c.pending_out() < self.cfg.shed_watermark {
            c.paused = false;
        }
        let want = Interest { readable: !c.eof && !c.paused, writable: c.pending_out() > 0 };
        if want != c.interest && self.poller.modify(c.stream.as_raw_fd(), token, want).is_ok() {
            c.interest = want;
        }

        // Flushed-and-done: EOF seen, every admitted request answered
        // and written. Half-close so the client's read loop ends.
        if c.eof && c.pending_out() == 0 && c.conn.idle() {
            let _ = c.stream.shutdown(Shutdown::Write);
            self.close(slot, freed);
        }
    }

    /// Both directions are gone (`EPOLLHUP`/`EPOLLERR`): nothing left
    /// to flush to this peer — tear the connection down now.
    fn hangup(&mut self, slot: usize, freed: &mut Vec<usize>) {
        let handler = Arc::clone(&self.handler);
        let Some(c) = self.conns[slot].as_mut() else { return };
        if !c.eof {
            c.eof = true;
            handler.disconnect(&c.conn, c.v1_lines);
        }
        self.close(slot, freed);
    }

    fn close(&mut self, slot: usize, freed: &mut Vec<usize>) {
        if let Some(c) = self.conns[slot].take() {
            let _ = self.poller.delete(c.stream.as_raw_fd());
            // The socket closes on drop; replies still in flight from
            // the batcher route into the reorder buffer and are dropped
            // with it.
            freed.push(slot);
        }
    }

    /// Drain: stop reading everywhere (clients may keep sending — their
    /// bytes stay in their sockets), mark every reorder buffer EOF so
    /// in-flight batches can finish the streams, keep flushing.
    fn begin_drain(&mut self) {
        let handler = Arc::clone(&self.handler);
        for slot in 0..self.conns.len() {
            let Some(c) = self.conns[slot].as_mut() else { continue };
            if !c.eof {
                c.eof = true;
                handler.disconnect(&c.conn, c.v1_lines);
            }
        }
    }
}

/// The in-slot refusal message for a request parsed while the
/// connection's output buffer is over the shed watermark.
fn shed_message(backlog: usize) -> String {
    format!(
        "connection write buffer full ({backlog} bytes of replies unread by the client): \
         request shed (not evaluated); read pending replies to resume"
    )
}
