//! Per-connection state: sequence allocation and ordered reply routing.
//!
//! Batches complete in whatever order the workers finish them, and a
//! single batch answers slots from many connections at once — but every
//! connection must see its replies in its own submission order. Each
//! connection therefore owns a [`Router`]: a reorder buffer keyed by the
//! connection-local sequence number. Workers [`route`](ConnShared::route)
//! replies as they finish; the router *releases* them strictly in
//! sequence order, and the consumer (a TCP writer thread, or an
//! in-process [`Client`](crate::Client) calling `recv`) pops from the
//! released queue. A reply for seq 3 is held until 0, 1, and 2 have been
//! released, so cross-batch completion races can never reorder — or
//! cross-wire — a connection's reply stream.

use crate::metrics::{ns_between, ServerObs};
use parspeed_engine::Response;
use parspeed_obs::{ResilienceCounters, Stage};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One reply on its way back to a connection: typed for in-process
/// clients, a pre-rendered JSONL line for TCP connections.
///
/// Public (with [`ConnShared`]) so sharded frontends — the
/// `parspeed-router` scatter/gather tier — can feed gathered backend
/// replies through the exact reorder machinery a local server uses.
#[derive(Debug)]
pub enum Delivery {
    /// A typed response (in-process clients).
    Typed(Response),
    /// A rendered JSONL response line, newline excluded (TCP).
    Line(String),
}

#[derive(Debug, Default)]
struct Router {
    /// Sequence numbers handed out so far (next seq to allocate).
    allocated: u64,
    /// The next sequence number eligible for release.
    next_emit: u64,
    /// Out-of-order replies waiting for their predecessors, each
    /// stamped with when the worker produced it (`route` stage start).
    pending: BTreeMap<u64, (Delivery, Instant)>,
    /// In-order replies ready for the consumer, oldest first.
    released: VecDeque<(u64, Delivery)>,
    /// No further sequence numbers will be allocated (reader hit EOF or
    /// the server is tearing the connection down).
    eof: bool,
}

/// The state one connection shares between its submitter, the batcher
/// workers, and its reply consumer.
///
/// Public so other frontends (the consistent-hash router) reuse the
/// same seq-keyed reorder buffer instead of reinventing ordered reply
/// delivery: allocate with [`alloc_seq`](ConnShared::alloc_seq), route
/// replies as they arrive — from any thread, in any order — and consume
/// them strictly in sequence with
/// [`next_released`](ConnShared::next_released).
#[derive(Debug)]
pub struct ConnShared {
    /// Frontend-assigned connection id (the [`SlotAddr::client`]
    /// half of every tag this connection submits).
    ///
    /// [`SlotAddr::client`]: parspeed_engine::SlotAddr
    pub id: u64,
    /// Where `route`-stage latency (reply produced → released in order)
    /// is recorded; `None` on bare test connections.
    obs: Option<Arc<ServerObs>>,
    /// Where a duplicate-seq route is counted (`reorder_drops`); `None`
    /// on bare test connections.
    resilience: Option<Arc<ResilienceCounters>>,
    /// Called (outside the state lock) whenever `route` releases at
    /// least one reply — the event-loop frontend's "this connection has
    /// output" signal. Blocking frontends leave it unset and rely on
    /// the condvar alone.
    waker: Mutex<Option<Waker>>,
    state: Mutex<Router>,
    cv: Condvar,
}

/// The wake callback, newtyped so `ConnShared` can keep deriving
/// `Debug` around a closure.
struct Waker(Arc<dyn Fn() + Send + Sync>);

impl fmt::Debug for Waker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Waker")
    }
}

impl ConnShared {
    /// A bare connection (no observability attribution).
    pub fn new(id: u64) -> Self {
        ConnShared {
            id,
            obs: None,
            resilience: None,
            waker: Mutex::new(None),
            state: Mutex::new(Router::default()),
            cv: Condvar::new(),
        }
    }

    /// A connection wired to the server's observability state.
    pub fn with_obs(id: u64, obs: Arc<ServerObs>) -> Self {
        ConnShared { obs: Some(obs), ..Self::new(id) }
    }

    /// Attributes duplicate-route drops to `counters.reorder_drops`
    /// (builder-style, used by both serving frontends).
    pub fn with_resilience(mut self, counters: Arc<ResilienceCounters>) -> Self {
        self.resilience = Some(counters);
        self
    }

    /// Installs the wake callback [`route`](Self::route) invokes after
    /// releasing replies. The event-loop frontend sets it right after
    /// registering the connection — before any request is submitted, so
    /// no release can slip by unseen.
    pub fn set_waker(&self, wake: Arc<dyn Fn() + Send + Sync>) {
        *self.waker.lock().unwrap() = Some(Waker(wake));
    }

    /// Hands out the next connection-local sequence number.
    pub fn alloc_seq(&self) -> u64 {
        let mut r = self.state.lock().unwrap();
        let seq = r.allocated;
        r.allocated += 1;
        seq
    }

    /// Delivers the reply for `seq`, releasing it (and any successors it
    /// unblocks) once every earlier sequence number has been released.
    ///
    /// Routing the same sequence number twice is a frontend bug (one
    /// reply per slot is the layer's core guarantee). The **first**
    /// answer wins: a duplicate is dropped — never silently overwriting
    /// the original — and counted in the resilience `reorder_drops`
    /// field so the `metrics` op surfaces the bug machine-readably.
    pub fn route(&self, seq: u64, delivery: Delivery) {
        let produced = Instant::now();
        let mut r = self.state.lock().unwrap();
        if seq < r.next_emit || r.pending.contains_key(&seq) {
            drop(r);
            if let Some(resilience) = &self.resilience {
                ResilienceCounters::bump(&resilience.reorder_drops);
            }
            return;
        }
        r.pending.insert(seq, (delivery, produced));
        let mut released_any = false;
        loop {
            let emit = r.next_emit;
            let Some((d, produced)) = r.pending.remove(&emit) else { break };
            // `route` = how long the reorder buffer held this reply
            // back waiting for its predecessors (~0 when in order).
            if let Some(obs) = &self.obs {
                obs.record(Stage::Route, ns_between(produced, Instant::now()));
            }
            r.released.push_back((emit, d));
            r.next_emit += 1;
            released_any = true;
        }
        drop(r);
        self.cv.notify_all();
        if released_any {
            let wake = self.waker.lock().unwrap().as_ref().map(|w| Arc::clone(&w.0));
            if let Some(wake) = wake {
                wake();
            }
        }
    }

    /// Whether nothing is outstanding: no released reply waiting and
    /// every allocated sequence number already consumed. Used by the
    /// in-process client to turn a would-be-forever wait into a panic.
    pub fn idle(&self) -> bool {
        let r = self.state.lock().unwrap();
        r.released.is_empty() && r.next_emit == r.allocated
    }

    /// Marks the connection as done allocating (reader EOF / teardown).
    pub fn mark_eof(&self) {
        self.state.lock().unwrap().eof = true;
        self.cv.notify_all();
    }

    /// Pops the next in-order reply without blocking — `None` when
    /// nothing is released right now. The event-loop frontend's
    /// consumer: it learns about releases from the waker, never by
    /// parking a thread here.
    pub fn try_released(&self) -> Option<(u64, Delivery)> {
        self.state.lock().unwrap().released.pop_front()
    }

    /// Pops the next in-order reply, blocking until one is released.
    /// Returns `None` once the connection hit EOF and every allocated
    /// sequence number has been released and consumed — the writer's
    /// signal that the stream is fully flushed.
    pub fn next_released(&self) -> Option<(u64, Delivery)> {
        let mut r = self.state.lock().unwrap();
        loop {
            if let Some(out) = r.released.pop_front() {
                return Some(out);
            }
            if r.eof && r.next_emit == r.allocated {
                return None;
            }
            r = self.cv.wait(r).unwrap();
        }
    }

    /// [`next_released`](Self::next_released) with a deadline; `None`
    /// means flushed-and-done *or* timed out.
    pub fn next_released_timeout(&self, timeout: Duration) -> Option<(u64, Delivery)> {
        let deadline = Instant::now() + timeout;
        let mut r = self.state.lock().unwrap();
        loop {
            if let Some(out) = r.released.pop_front() {
                return Some(out);
            }
            if r.eof && r.next_emit == r.allocated {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            (r, _) = self.cv.wait_timeout(r, deadline - now).unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parspeed_engine::ParspeedError;

    fn typed(marker: &str) -> Delivery {
        Delivery::Typed(Response::Invalid(ParspeedError::invalid(marker)))
    }

    fn marker_of(d: &Delivery) -> String {
        match d {
            Delivery::Typed(Response::Invalid(e)) => e.to_string(),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn out_of_order_routes_release_in_sequence_order() {
        let conn = ConnShared::new(0);
        for _ in 0..3 {
            conn.alloc_seq();
        }
        conn.route(2, typed("c"));
        conn.route(0, typed("a"));
        // seq 1 still missing: only seq 0 may be released.
        let (seq, d) = conn.next_released_timeout(Duration::from_millis(10)).unwrap();
        assert_eq!((seq, marker_of(&d).as_str()), (0, "a"));
        assert!(conn.next_released_timeout(Duration::from_millis(10)).is_none());
        conn.route(1, typed("b"));
        let (seq, d) = conn.next_released().unwrap();
        assert_eq!((seq, marker_of(&d).as_str()), (1, "b"));
        let (seq, d) = conn.next_released().unwrap();
        assert_eq!((seq, marker_of(&d).as_str()), (2, "c"));
    }

    #[test]
    fn eof_with_everything_flushed_ends_the_stream() {
        let conn = ConnShared::new(0);
        let seq = conn.alloc_seq();
        conn.route(seq, typed("only"));
        conn.mark_eof();
        assert!(conn.next_released().is_some());
        assert!(conn.next_released().is_none());
    }

    #[test]
    fn duplicate_route_keeps_the_first_reply_and_counts_the_drop() {
        let counters = Arc::new(ResilienceCounters::new());
        let conn = ConnShared::new(0).with_resilience(Arc::clone(&counters));
        for _ in 0..2 {
            conn.alloc_seq();
        }
        conn.route(0, typed("first"));
        // A double-routed reply (released or still pending) is dropped,
        // never overwriting the original, and the drop is counted.
        conn.route(0, typed("dup-of-released"));
        conn.route(1, typed("second"));
        conn.route(1, typed("dup-of-released-2"));
        let (_, d) = conn.next_released().unwrap();
        assert_eq!(marker_of(&d), "first");
        let (_, d) = conn.next_released().unwrap();
        assert_eq!(marker_of(&d), "second");
        assert_eq!(counters.snapshot().reorder_drops, 2);
        assert!(conn.idle(), "duplicates must not occupy reply slots");
    }

    #[test]
    fn duplicate_route_of_a_pending_reply_is_dropped_too() {
        let counters = Arc::new(ResilienceCounters::new());
        let conn = ConnShared::new(0).with_resilience(Arc::clone(&counters));
        for _ in 0..2 {
            conn.alloc_seq();
        }
        // seq 1 parks in the reorder buffer (seq 0 still missing); a
        // second route for it must keep the parked original.
        conn.route(1, typed("pending-original"));
        conn.route(1, typed("pending-dup"));
        assert_eq!(counters.snapshot().reorder_drops, 1);
        conn.route(0, typed("a"));
        let (_, d) = conn.next_released().unwrap();
        assert_eq!(marker_of(&d), "a");
        let (_, d) = conn.next_released().unwrap();
        assert_eq!(marker_of(&d), "pending-original");
    }

    #[test]
    fn waker_fires_on_release_and_try_released_never_blocks() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let conn = Arc::new(ConnShared::new(0));
        let wakes = Arc::new(AtomicU64::new(0));
        let counted = Arc::clone(&wakes);
        conn.set_waker(Arc::new(move || {
            counted.fetch_add(1, Ordering::SeqCst);
        }));
        for _ in 0..2 {
            conn.alloc_seq();
        }
        assert!(conn.try_released().is_none());
        // Out-of-order route releases nothing — and must not wake.
        conn.route(1, typed("b"));
        assert_eq!(wakes.load(Ordering::SeqCst), 0);
        assert!(conn.try_released().is_none());
        // The gap fill releases both and wakes once.
        conn.route(0, typed("a"));
        assert_eq!(wakes.load(Ordering::SeqCst), 1);
        assert_eq!(marker_of(&conn.try_released().unwrap().1), "a");
        assert_eq!(marker_of(&conn.try_released().unwrap().1), "b");
        assert!(conn.try_released().is_none());
    }

    #[test]
    fn eof_still_waits_for_outstanding_replies() {
        let conn = ConnShared::new(0);
        conn.alloc_seq();
        conn.mark_eof();
        // Allocated but unrouted: the stream is not flushed yet.
        assert!(conn.next_released_timeout(Duration::from_millis(10)).is_none());
        conn.route(0, typed("late"));
        assert!(conn.next_released().is_some());
        assert!(conn.next_released().is_none());
    }
}
