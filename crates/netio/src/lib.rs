//! `parspeed-netio` — readiness polling for the serving tier.
//!
//! The event-loop frontend (`parspeed-server`'s `--io event-loop` mode)
//! needs exactly three things the standard library does not provide:
//! a way to wait for readiness on many sockets at once, a way to change
//! which events each socket is watched for, and a way for *other
//! threads* (the batcher workers finishing a reply) to wake the waiting
//! loop. This crate provides all three — [`Poller`] and [`WakePipe`] —
//! as a safe API over raw OS calls declared by hand: crates.io is
//! unreachable, so there is no `libc`/`mio`/runtime to lean on, and the
//! functions are declared `extern "C"` directly (the standard library
//! already links the platform libc, so the symbols resolve without any
//! build-script work).
//!
//! This is deliberately the **only crate in the workspace containing
//! `unsafe`**: every other crate (including the server that uses this
//! one) keeps `#![forbid(unsafe_code)]`. The unsafe surface is small —
//! four syscall wrappers and a pipe — and every public item is safe to
//! call.
//!
//! On Linux the backend is **epoll** in level-triggered mode:
//! level-triggering means a socket with unread bytes (or writable
//! space) reports ready on every wait until the condition clears, so
//! the loop can stop reading a connection under write backpressure and
//! simply re-enable interest later — no edge-tracking bookkeeping. On
//! other Unixes a **poll(2)** backend with the same API keeps the crate
//! portable (an interest table rebuilt into a `pollfd` array per wait —
//! fine for the fallback's ambitions).

#![warn(missing_docs)]

use std::io;
use std::time::Duration;

/// Which readiness events a registered descriptor is watched for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor has bytes to read (or a peer hangup).
    pub readable: bool,
    /// Wake when the descriptor has buffer space to write into.
    pub writable: bool,
}

impl Interest {
    /// Readable only — the steady state of an idle connection.
    pub const READ: Interest = Interest { readable: true, writable: false };
    /// Writable only — a connection under write backpressure that has
    /// stopped being read.
    pub const WRITE: Interest = Interest { readable: false, writable: true };
    /// Both directions — a connection with queued output that is still
    /// being read.
    pub const BOTH: Interest = Interest { readable: true, writable: true };
    /// Neither — parked (still registered, reported only for errors).
    pub const NONE: Interest = Interest { readable: false, writable: false };
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the descriptor was registered with.
    pub token: u64,
    /// Bytes (or a hangup) are available to read.
    pub readable: bool,
    /// Buffer space is available to write.
    pub writable: bool,
    /// The peer closed or the descriptor errored; the owner should
    /// read to EOF / tear the connection down.
    pub hangup: bool,
}

mod sys;

pub use sys::{Poller, WakePipe};

/// Converts an optional timeout to the millisecond argument `epoll_wait`
/// and `poll` share: `None` = block forever (-1), zero = return
/// immediately, otherwise round *up* so a 100 µs timeout does not
/// busy-spin as 0 ms.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(t) if t.is_zero() => 0,
        Some(t) => {
            let ms = t.as_millis();
            let ms = if Duration::from_millis(ms as u64) < t { ms + 1 } else { ms };
            ms.min(i32::MAX as u128) as i32
        }
    }
}

/// Accepts on a nonblocking listener mapped through the poller: `Ok(None)`
/// when the accept queue is drained (`WouldBlock`), so the event loop can
/// accept in a batch until empty without a second syscall wrapper.
pub fn accept_nonblocking(
    listener: &std::net::TcpListener,
) -> io::Result<Option<(std::net::TcpStream, std::net::SocketAddr)>> {
    match listener.accept() {
        Ok(pair) => Ok(Some(pair)),
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn poller_and_wake_pipe_cross_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Poller>();
        assert_send_sync::<WakePipe>();
        assert_send_sync::<Event>();
    }

    #[test]
    fn timeout_rounds_up_not_down() {
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_ms(Some(Duration::from_micros(100))), 1);
        assert_eq!(timeout_ms(Some(Duration::from_millis(20))), 20);
        assert_eq!(timeout_ms(Some(Duration::from_secs(1_000_000_000))), i32::MAX);
    }

    #[test]
    fn socket_readiness_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let poller = Poller::new().unwrap();
        listener.set_nonblocking(true).unwrap();
        poller.add(listener.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        // Quiet listener: a short wait reports nothing.
        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty(), "{events:?}");

        let mut client = TcpStream::connect(addr).unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable), "{events:?}");

        let (mut accepted, _) = listener.accept().unwrap();
        accepted.set_nonblocking(true).unwrap();
        poller.add(accepted.as_raw_fd(), 8, Interest::READ).unwrap();
        client.write_all(b"ping").unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 8 && e.readable), "{events:?}");
        let mut buf = [0u8; 8];
        assert_eq!(accepted.read(&mut buf).unwrap(), 4);

        // Write interest on an empty socket buffer reports immediately.
        poller.modify(accepted.as_raw_fd(), 8, Interest::BOTH).unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 8 && e.writable), "{events:?}");

        // Parked: readable data no longer wakes the poller.
        poller.modify(accepted.as_raw_fd(), 8, Interest::NONE).unwrap();
        client.write_all(b"more").unwrap();
        poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap();
        assert!(!events.iter().any(|e| e.token == 8 && e.readable), "{events:?}");

        poller.delete(accepted.as_raw_fd()).unwrap();
        poller.delete(listener.as_raw_fd()).unwrap();
    }

    #[test]
    fn peer_close_reports_readable_or_hangup() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        accepted.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(accepted.as_raw_fd(), 1, Interest::READ).unwrap();
        drop(client);
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && (e.readable || e.hangup)), "{events:?}");
    }

    #[test]
    fn wake_pipe_wakes_a_blocked_wait_from_another_thread() {
        let poller = Poller::new().unwrap();
        let pipe = std::sync::Arc::new(WakePipe::new().unwrap());
        poller.add(pipe.read_fd(), 0, Interest::READ).unwrap();

        let remote = std::sync::Arc::clone(&pipe);
        let waker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            remote.wake();
        });
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_secs(10))).unwrap();
        assert!(events.iter().any(|e| e.token == 0 && e.readable), "{events:?}");
        pipe.drain();

        // Drained: the pipe is quiet again.
        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty(), "{events:?}");
        waker.join().unwrap();

        // Waking many times coalesces into (at least) one readiness
        // report and never blocks the waker, even past the pipe's
        // buffer capacity.
        for _ in 0..100_000 {
            pipe.wake();
        }
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 0 && e.readable), "{events:?}");
        pipe.drain();
    }
}
