//! The OS backends: epoll on Linux, poll(2) elsewhere, plus the
//! self-pipe waker both share. All `unsafe` in the workspace lives in
//! this file; everything exported is safe.
//!
//! The raw functions are declared by hand instead of through the `libc`
//! crate (crates.io is unreachable here). The standard library already
//! links the platform libc, so plain `extern "C"` declarations resolve
//! at link time. Constants are the kernel ABI values for the targets we
//! build: they are ABI, not configuration, and do not drift.

use crate::{timeout_ms, Event, Interest};
use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

use std::os::raw::{c_int, c_void};

extern "C" {
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
}

/// Retries a syscall interrupted by a signal — the only errno that
/// means "nothing happened, call again".
fn retry_eintr<T: PartialOrd + From<i8>>(mut f: impl FnMut() -> T) -> io::Result<T> {
    loop {
        let r = f();
        if r >= T::from(0) {
            return Ok(r);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// A byte pipe whose write end any thread may poke to wake a
/// [`Poller::wait`] blocked on the read end — the classic self-pipe
/// trick. Both ends are nonblocking: [`wake`](WakePipe::wake) on a full
/// pipe is a no-op (the sleeper is already guaranteed to wake), and
/// [`drain`](WakePipe::drain) reads until empty.
#[derive(Debug)]
pub struct WakePipe {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl WakePipe {
    /// Opens the pipe with both ends nonblocking and close-on-exec.
    pub fn new() -> io::Result<WakePipe> {
        let (read_fd, write_fd) = pipe_pair()?;
        Ok(WakePipe { read_fd, write_fd })
    }

    /// The read end, for registering with a [`Poller`].
    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// Makes the read end readable. Never blocks: a full pipe already
    /// guarantees the next `wait` returns, so `EAGAIN` is success.
    pub fn wake(&self) {
        let byte = 1u8;
        // SAFETY: write_fd is a pipe fd this struct owns until Drop;
        // the buffer is a live 1-byte stack slot.
        let _ = unsafe { write(self.write_fd, (&byte as *const u8).cast(), 1) };
    }

    /// Consumes every pending wake byte so the next `wait` blocks again.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: read_fd is owned by this struct; buf is a live
            // 64-byte stack buffer and the length passed matches.
            let n = unsafe { read(self.read_fd, buf.as_mut_ptr().cast(), buf.len()) };
            if n < buf.len() as isize {
                // Short read or EAGAIN: the pipe is empty (racy wakes
                // that land after this instant will report again).
                return;
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        // SAFETY: the fds were created by pipe_pair and closed only here.
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

// ---------------------------------------------------------------------------
// Linux: epoll + pipe2
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod imp {
    use super::*;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const O_NONBLOCK: c_int = 0o4000;
    const O_CLOEXEC: c_int = 0o2000000;

    // The kernel ABI struct. On x86 and x86_64 it is packed (a 12-byte
    // layout the kernel chose for 32/64-bit compatibility); other
    // architectures use natural alignment.
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn pipe2(pipefd: *mut c_int, flags: c_int) -> c_int;
    }

    pub(super) fn pipe_pair() -> io::Result<(RawFd, RawFd)> {
        let mut fds = [0 as c_int; 2];
        // SAFETY: fds is a live 2-element array, exactly what pipe2
        // writes into on success.
        let rc = unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok((fds[0], fds[1]))
    }

    fn interest_bits(interest: Interest) -> u32 {
        let mut events = EPOLLRDHUP;
        if interest.readable {
            events |= EPOLLIN;
        }
        if interest.writable {
            events |= EPOLLOUT;
        }
        events
    }

    /// Readiness multiplexer: register descriptors with a `u64` token,
    /// block in [`wait`](Poller::wait) until any is ready.
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        /// Opens the epoll instance (close-on-exec).
        pub fn new() -> io::Result<Poller> {
            // SAFETY: plain syscall, no pointers.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { epfd })
        }

        /// Starts watching `fd`, reporting readiness as `token`.
        /// The caller keeps ownership of `fd` and must [`delete`]
        /// (or close) it before the fd number is reused.
        ///
        /// [`delete`]: Poller::delete
        pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        /// Changes what `fd` is watched for (and its token).
        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        /// Stops watching `fd`.
        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::NONE)
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut event = EpollEvent { events: interest_bits(interest), data: token };
            // SAFETY: event is a live, correctly-laid-out EpollEvent;
            // the kernel only reads it (and ignores it for DEL).
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut event) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Blocks until at least one descriptor is ready (or `timeout`
        /// passes — `None` blocks indefinitely), replacing `out` with
        /// the readiness reports. Returns the number of events.
        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
            out.clear();
            let mut buf = [EpollEvent { events: 0, data: 0 }; 256];
            let n = retry_eintr(|| {
                // SAFETY: buf is a live array of 256 EpollEvents and the
                // length passed matches; the kernel writes at most that
                // many entries.
                unsafe {
                    epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as c_int, timeout_ms(timeout))
                }
            })?;
            for ev in &buf[..n as usize] {
                // Copy out of the (possibly packed) struct before use.
                let (bits, token) = (ev.events, ev.data);
                out.push(Event {
                    token,
                    readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(out.len())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: epfd came from epoll_create1 and is closed once.
            unsafe {
                close(self.epfd);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Other Unixes: poll(2) over an interest table, pipe + fcntl
// ---------------------------------------------------------------------------

#[cfg(all(unix, not(target_os = "linux")))]
mod imp {
    use super::*;
    use std::os::raw::c_uint;
    use std::sync::Mutex;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const F_GETFL: c_int = 3;
    const F_SETFL: c_int = 4;
    // BSD-lineage value (macOS, the BSDs): this fallback never builds
    // for Linux, which has its own module above.
    const O_NONBLOCK: c_int = 0x0004;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_uint, timeout: c_int) -> c_int;
        fn pipe(pipefd: *mut c_int) -> c_int;
        fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    }

    pub(super) fn pipe_pair() -> io::Result<(RawFd, RawFd)> {
        let mut fds = [0 as c_int; 2];
        // SAFETY: fds is a live 2-element array.
        let rc = unsafe { pipe(fds.as_mut_ptr()) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        for fd in fds {
            // SAFETY: plain fcntl on fds we just created.
            let rc = unsafe {
                let flags = fcntl(fd, F_GETFL, 0);
                if flags < 0 {
                    flags
                } else {
                    fcntl(fd, F_SETFL, flags | O_NONBLOCK)
                }
            };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
        }
        Ok((fds[0], fds[1]))
    }

    /// Readiness multiplexer (poll(2) backend): same API as the Linux
    /// epoll version, rebuilt interest table each wait.
    #[derive(Debug, Default)]
    pub struct Poller {
        table: Mutex<Vec<(RawFd, u64, Interest)>>,
    }

    impl Poller {
        /// Opens the poller (no OS resource needed for this backend).
        pub fn new() -> io::Result<Poller> {
            Ok(Poller::default())
        }

        /// Starts watching `fd`, reporting readiness as `token`.
        pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut table = self.table.lock().unwrap();
            if table.iter().any(|(f, _, _)| *f == fd) {
                return Err(io::Error::new(io::ErrorKind::AlreadyExists, "fd registered"));
            }
            table.push((fd, token, interest));
            Ok(())
        }

        /// Changes what `fd` is watched for (and its token).
        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut table = self.table.lock().unwrap();
            match table.iter_mut().find(|(f, _, _)| *f == fd) {
                Some(entry) => {
                    *entry = (fd, token, interest);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        /// Stops watching `fd`.
        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            let mut table = self.table.lock().unwrap();
            let before = table.len();
            table.retain(|(f, _, _)| *f != fd);
            if table.len() == before {
                return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
            }
            Ok(())
        }

        /// Blocks until at least one descriptor is ready (or `timeout`
        /// passes), replacing `out` with the readiness reports.
        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
            out.clear();
            let snapshot: Vec<(RawFd, u64, Interest)> = self.table.lock().unwrap().clone();
            let mut fds: Vec<PollFd> = snapshot
                .iter()
                .map(|(fd, _, interest)| PollFd {
                    fd: *fd,
                    events: if interest.readable { POLLIN } else { 0 }
                        | if interest.writable { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            retry_eintr(|| {
                // SAFETY: fds is a live Vec of PollFd and nfds matches
                // its length.
                unsafe { poll(fds.as_mut_ptr(), fds.len() as c_uint, timeout_ms(timeout)) }
            })?;
            for (slot, (_, token, _)) in fds.iter().zip(&snapshot) {
                let bits = slot.revents;
                if bits == 0 {
                    continue;
                }
                out.push(Event {
                    token: *token,
                    readable: bits & (POLLIN | POLLHUP) != 0,
                    writable: bits & POLLOUT != 0,
                    hangup: bits & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(out.len())
        }
    }
}

use imp::pipe_pair;
pub use imp::Poller;
