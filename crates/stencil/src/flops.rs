//! Floating-point operation accounting for one stencil update — the paper's
//! `E(S)`.
//!
//! The paper treats `E(S)` as a given constant ("the number of floating
//! point operations per grid point employed by the algorithm"). We provide
//! two sources for it:
//!
//! 1. [`count`] derives a *natural* count from the tap list (what a
//!    straightforward scalar implementation performs), and
//! 2. [`calibrated_e`] returns the constants used by the reproduction
//!    experiments, calibrated so the paper's §6.1 quantitative anchors hold
//!    (see `DESIGN.md` §3): `E(5-point) = 6`, `E(9-point box) = 12`,
//!    `E(9-point star) = 11`, `E(13-point star) = 14`.
//!
//! # Measured MFLOP/s vs calibrated `E(S)`
//!
//! Neither source of `E(S)` claims to predict wall-clock cost on a modern
//! host: the fused row-slice kernels in `parspeed-solver` deliver several
//! GFLOP/s (natural accounting) single-thread, and their *relative* cost
//! across stencils differs from both the natural counts and the
//! calibrated constants because memory traffic, not arithmetic, bounds
//! the sweep. The repo therefore carries a measured snapshot,
//! `BENCH_PR3.json` at the workspace root — throughput in Mpoints/s and
//! MFLOP/s (`Mpoints/s × flops_per_point`) for the generic, fused, and
//! row-parallel sweeps of each catalogue stencil. Regenerate it after any
//! kernel change with
//!
//! ```text
//! cargo run --release -p parspeed-bench --bin perf_snapshot
//! ```
//!
//! (`--quick --check` is the CI smoke configuration: smaller grid, and it
//! fails if the fused kernels regress below the generic sweep or drift
//! from bit-identity).

use crate::Stencil;

/// Breakdown of the flops in one Jacobi point update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlopCount {
    /// Additions/subtractions accumulating tap values and the RHS term.
    pub adds: u32,
    /// Multiplications by non-unit tap coefficients and the RHS scale.
    pub muls: u32,
    /// Final divisions (always 1; a real code would multiply by the
    /// precomputed reciprocal, which costs the same here).
    pub divs: u32,
}

impl FlopCount {
    /// Total flops.
    pub fn total(&self) -> u32 {
        self.adds + self.muls + self.divs
    }
}

/// Natural flop count of one update of `stencil`.
///
/// Rules: every tap contributes one add; taps whose coefficient is not
/// `±1` contribute one multiply (groups of taps sharing a coefficient are
/// *not* factored — this matches a simple unrolled kernel). The RHS term
/// `rhs_scale·h²·f` contributes one multiply (by the precomputed
/// `rhs_scale·h²`) and one add; the divisor contributes one divide.
pub fn count(stencil: &Stencil) -> FlopCount {
    let mut adds = 0u32;
    let mut muls = 0u32;
    for t in stencil.taps() {
        adds += 1;
        if t.coeff != 1.0 && t.coeff != -1.0 {
            muls += 1;
        }
    }
    // RHS term: one fused multiply of f by the precomputed scale, one add.
    muls += 1;
    adds += 1;
    FlopCount { adds, muls, divs: 1 }
}

/// Calibrated `E(S)` for the catalogued stencils (see module docs).
pub fn calibrated_e(name: &str) -> Option<f64> {
    match name {
        "5-point" => Some(6.0),
        "9-point box" => Some(12.0),
        "9-point star" => Some(11.0),
        "13-point star" => Some(14.0),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tap;

    #[test]
    fn five_point_natural_count() {
        // 4 unit taps: 4 adds; rhs: 1 mul + 1 add; divide: 1. Total 7.
        let c = Stencil::five_point().flops();
        assert_eq!(c.adds, 5);
        assert_eq!(c.muls, 1);
        assert_eq!(c.divs, 1);
        assert_eq!(c.total(), 7);
    }

    #[test]
    fn nine_point_box_natural_count() {
        // 8 taps (4 with coeff 4): 8 adds + 4 muls; rhs: 1+1; divide: 1.
        let c = Stencil::nine_point_box().flops();
        assert_eq!(c.adds, 9);
        assert_eq!(c.muls, 5);
        assert_eq!(c.total(), 15);
    }

    #[test]
    fn unit_negative_coefficients_do_not_multiply() {
        let c = Stencil::nine_point_star().flops();
        // 8 taps, 4 with coeff 16 (mul), 4 with coeff -1 (no mul).
        assert_eq!(c.muls, 4 + 1);
        assert_eq!(c.adds, 8 + 1);
    }

    #[test]
    fn calibrated_values_cover_catalog_and_keep_paper_ratio() {
        for s in Stencil::catalog() {
            let e = s.calibrated_e().expect("catalog stencils are calibrated");
            assert!(e > 0.0);
        }
        // The §6.1 anchors (14 vs 22 processors at n=256) require
        // E(9-point)/E(5-point) ≈ 2.
        let e5 = calibrated_e("5-point").unwrap();
        let e9 = calibrated_e("9-point box").unwrap();
        assert_eq!(e9 / e5, 2.0);
    }

    #[test]
    fn custom_stencils_are_uncalibrated() {
        let s = Stencil::new("custom", vec![Tap::unit(0, 1), Tap::unit(0, -1)], 1.0, 2.0);
        assert!(s.calibrated_e().is_none());
        assert_eq!(s.flops().total(), 2 + 2 + 1);
    }

    #[test]
    fn natural_counts_are_ordered_like_calibrated_ones() {
        // More taps ⇒ more work, under either accounting.
        let cat = Stencil::catalog();
        let five = &cat[0];
        let thirteen = &cat[3];
        assert!(five.flops_per_point() < thirteen.flops_per_point());
        assert!(five.calibrated_e().unwrap() < thirteen.calibrated_e().unwrap());
    }
}
