//! Discretization stencils for elliptic PDE solvers.
//!
//! This crate provides the stencil layer of the Nicol & Willard (1987) model:
//! the geometry of a difference stencil (which neighbouring grid points a
//! point update reads), the arithmetic cost of one point update (`E(S)` in
//! the paper), and the *perimeter count* `k(P, S)` — how many perimeters of
//! boundary data a partition of shape `P` must communicate per iteration
//! when stencil `S` is used (paper, §3).
//!
//! The four stencils the paper draws (Figures 1 and 3) are provided in
//! [`catalog`](Stencil::catalog):
//!
//! * [`Stencil::five_point`] — classic second-order Laplacian cross,
//! * [`Stencil::nine_point_box`] — Mehrstellen 3×3 box,
//! * [`Stencil::nine_point_star`] — fourth-order cross with arms of reach 2,
//! * [`Stencil::thirteen_point_star`] — reach-2 cross plus unit diagonals.
//!
//! Arbitrary stencils can be built with [`Stencil::new`] from a tap list.
//!
//! # Example
//!
//! ```
//! use parspeed_stencil::{PartitionShape, Stencil};
//!
//! let s = Stencil::five_point();
//! assert_eq!(s.reach(), 1);
//! assert_eq!(s.perimeters(PartitionShape::Strip), 1);
//! let star = Stencil::nine_point_star();
//! assert_eq!(star.perimeters(PartitionShape::Square), 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod catalog;
mod flops;
mod kernel;
mod offsets;
mod perimeter;

pub use flops::FlopCount;
pub use kernel::KernelKind;
pub use offsets::{Offset, Tap};
pub use perimeter::PartitionShape;

/// A difference stencil: the finite set of grid offsets a point update reads,
/// together with the update's coefficients.
///
/// The associated point-Jacobi update for `-∇²u = f` on a grid with spacing
/// `h` is
///
/// ```text
/// u'(i,j) = ( Σ_taps  coeff · u(i+dy, j+dx)  +  rhs_scale · h² · f(i,j) ) / divisor
/// ```
///
/// Only the *geometry* of the taps matters for the performance model (reach
/// determines `k(P,S)`, tap count determines `E(S)`); the coefficients make
/// the stencil usable by the real solvers in `parspeed-solver`.
#[derive(Debug, Clone, PartialEq)]
pub struct Stencil {
    name: &'static str,
    taps: Vec<Tap>,
    rhs_scale: f64,
    divisor: f64,
}

impl Stencil {
    /// Builds a stencil from explicit taps.
    ///
    /// # Panics
    ///
    /// Panics if `taps` is empty, contains the centre offset `(0, 0)`, or
    /// contains a duplicate offset, or if `divisor == 0`.
    pub fn new(name: &'static str, taps: Vec<Tap>, rhs_scale: f64, divisor: f64) -> Self {
        assert!(!taps.is_empty(), "a stencil needs at least one tap");
        assert!(divisor != 0.0, "stencil divisor must be nonzero");
        for (i, t) in taps.iter().enumerate() {
            assert!(
                !(t.offset.dx == 0 && t.offset.dy == 0),
                "the centre point is implicit; do not list offset (0,0) as a tap"
            );
            for u in &taps[..i] {
                assert!(u.offset != t.offset, "duplicate tap offset {:?}", t.offset);
            }
        }
        Self { name, taps, rhs_scale, divisor }
    }

    /// Human-readable name ("5-point", "9-point box", ...).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The neighbour taps (centre excluded).
    pub fn taps(&self) -> &[Tap] {
        &self.taps
    }

    /// Scale applied to the `h²·f` right-hand-side term in the Jacobi update.
    pub fn rhs_scale(&self) -> f64 {
        self.rhs_scale
    }

    /// Denominator of the Jacobi update.
    pub fn divisor(&self) -> f64 {
        self.divisor
    }

    /// Total number of points read by one update, centre excluded.
    pub fn tap_count(&self) -> usize {
        self.taps.len()
    }

    /// Maximum Chebyshev distance of any tap from the centre.
    ///
    /// This is the half-width of the halo a partition must hold.
    pub fn reach(&self) -> usize {
        self.taps.iter().map(|t| t.offset.chebyshev()).max().expect("stencil has at least one tap")
    }

    /// Maximum `|dy|` over taps: rows of halo needed above/below a partition.
    pub fn reach_rows(&self) -> usize {
        self.taps.iter().map(|t| t.offset.dy.unsigned_abs() as usize).max().unwrap_or(0)
    }

    /// Maximum `|dx|` over taps: columns of halo needed left/right.
    pub fn reach_cols(&self) -> usize {
        self.taps.iter().map(|t| t.offset.dx.unsigned_abs() as usize).max().unwrap_or(0)
    }

    /// Whether any tap lies strictly off both axes (a "diagonal" tap).
    ///
    /// Square partitions must then also exchange corner points — a cost the
    /// paper's closed forms neglect (§6.1 footnote) but the simulators count.
    pub fn has_diagonal(&self) -> bool {
        self.taps.iter().any(|t| t.offset.dx != 0 && t.offset.dy != 0)
    }

    /// The paper's `k(P, S)`: number of perimeters communicated by a
    /// partition of shape `shape` under this stencil (§3, table).
    pub fn perimeters(&self, shape: PartitionShape) -> usize {
        perimeter::perimeters(self, shape)
    }

    /// Natural floating-point operation count of one Jacobi update.
    ///
    /// See [`FlopCount`] for the accounting rules. The 1987 model treats
    /// `E(S)` as a free constant; `parspeed-core` defaults to the calibrated
    /// values in [`Stencil::calibrated_e`] but accepts any value.
    pub fn flops(&self) -> FlopCount {
        flops::count(self)
    }

    /// Shorthand for `self.flops().total()`.
    pub fn flops_per_point(&self) -> f64 {
        self.flops().total() as f64
    }

    /// The calibrated `E(S)` used by the paper-reproduction experiments.
    ///
    /// Calibration is explained in `DESIGN.md` §3: `E(5pt) = 6`,
    /// `E(9pt box) = 12` make the paper's two §6.1 processor-count anchors
    /// (14 and 22 processors at `n = 256`) hold. Returns `None` for custom
    /// stencils, which must supply their own `E`.
    pub fn calibrated_e(&self) -> Option<f64> {
        flops::calibrated_e(self.name)
    }

    /// All four catalogued stencils, in the order the paper introduces them.
    pub fn catalog() -> Vec<Stencil> {
        vec![
            Stencil::five_point(),
            Stencil::nine_point_box(),
            Stencil::nine_point_star(),
            Stencil::thirteen_point_star(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_four_entries_with_distinct_names() {
        let cat = Stencil::catalog();
        assert_eq!(cat.len(), 4);
        for (i, a) in cat.iter().enumerate() {
            for b in &cat[..i] {
                assert_ne!(a.name(), b.name());
            }
        }
    }

    #[test]
    #[should_panic(expected = "centre point is implicit")]
    fn rejects_centre_tap() {
        Stencil::new("bad", vec![Tap::unit(0, 0)], 1.0, 4.0);
    }

    #[test]
    #[should_panic(expected = "duplicate tap")]
    fn rejects_duplicate_taps() {
        Stencil::new("bad", vec![Tap::unit(1, 0), Tap::unit(1, 0)], 1.0, 4.0);
    }

    #[test]
    #[should_panic(expected = "at least one tap")]
    fn rejects_empty() {
        Stencil::new("bad", vec![], 1.0, 4.0);
    }

    #[test]
    fn reach_of_catalog() {
        assert_eq!(Stencil::five_point().reach(), 1);
        assert_eq!(Stencil::nine_point_box().reach(), 1);
        assert_eq!(Stencil::nine_point_star().reach(), 2);
        assert_eq!(Stencil::thirteen_point_star().reach(), 2);
    }

    #[test]
    fn diagonals_of_catalog() {
        assert!(!Stencil::five_point().has_diagonal());
        assert!(Stencil::nine_point_box().has_diagonal());
        assert!(!Stencil::nine_point_star().has_diagonal());
        assert!(Stencil::thirteen_point_star().has_diagonal());
    }

    #[test]
    fn tap_counts_match_names() {
        assert_eq!(Stencil::five_point().tap_count(), 4);
        assert_eq!(Stencil::nine_point_box().tap_count(), 8);
        assert_eq!(Stencil::nine_point_star().tap_count(), 8);
        assert_eq!(Stencil::thirteen_point_star().tap_count(), 12);
    }

    #[test]
    fn row_and_col_reach_agree_with_chebyshev() {
        for s in Stencil::catalog() {
            assert_eq!(s.reach(), s.reach_rows().max(s.reach_cols()));
        }
    }
}
