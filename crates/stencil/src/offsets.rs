//! Grid offsets and stencil taps.

/// A relative grid position: `dy` rows down, `dx` columns right.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Offset {
    /// Row displacement (positive = towards larger row index).
    pub dy: i32,
    /// Column displacement (positive = towards larger column index).
    pub dx: i32,
}

impl Offset {
    /// Builds an offset.
    pub const fn new(dy: i32, dx: i32) -> Self {
        Self { dy, dx }
    }

    /// Chebyshev (L∞) distance from the centre.
    pub fn chebyshev(&self) -> usize {
        self.dy.unsigned_abs().max(self.dx.unsigned_abs()) as usize
    }

    /// Manhattan (L1) distance from the centre.
    pub fn manhattan(&self) -> usize {
        (self.dy.unsigned_abs() + self.dx.unsigned_abs()) as usize
    }

    /// Whether this offset lies on a grid axis.
    pub fn on_axis(&self) -> bool {
        self.dy == 0 || self.dx == 0
    }
}

/// One stencil tap: an offset and the coefficient multiplying the value read
/// there in the Jacobi update numerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tap {
    /// Where the tap reads, relative to the point being updated.
    pub offset: Offset,
    /// Coefficient in the update numerator.
    pub coeff: f64,
}

impl Tap {
    /// Builds a tap.
    pub const fn new(dy: i32, dx: i32, coeff: f64) -> Self {
        Self { offset: Offset::new(dy, dx), coeff }
    }

    /// Builds a unit-coefficient tap.
    pub const fn unit(dy: i32, dx: i32) -> Self {
        Self::new(dy, dx, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chebyshev_and_manhattan() {
        let o = Offset::new(-2, 1);
        assert_eq!(o.chebyshev(), 2);
        assert_eq!(o.manhattan(), 3);
        assert!(!o.on_axis());
        assert!(Offset::new(0, 3).on_axis());
        assert!(Offset::new(-1, 0).on_axis());
    }

    #[test]
    fn tap_constructors() {
        let t = Tap::unit(1, 0);
        assert_eq!(t.coeff, 1.0);
        assert_eq!(t.offset, Offset::new(1, 0));
        let w = Tap::new(0, -2, -1.0);
        assert_eq!(w.coeff, -1.0);
        assert_eq!(w.offset.chebyshev(), 2);
    }
}
