//! The paper's `k(P, S)`: how many perimeters of boundary points a partition
//! must communicate per iteration (§3, Figure 3 and the accompanying table).
//!
//! A stencil of reach `r` needs the `r` rings of points just outside the
//! partition; equivalently the partition must *send* its own outermost `r`
//! rings. For a horizontal strip only vertical reach matters; for a square
//! both axes matter.

use crate::Stencil;

/// The two partition shapes the paper analyses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionShape {
    /// Full-width horizontal strips (paper Fig. 4).
    Strip,
    /// Square (or "working rectangle") blocks (paper Figs. 2 and 5).
    Square,
}

impl PartitionShape {
    /// Display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            PartitionShape::Strip => "strip",
            PartitionShape::Square => "square",
        }
    }

    /// Both shapes, in the paper's order.
    pub fn all() -> [PartitionShape; 2] {
        [PartitionShape::Strip, PartitionShape::Square]
    }
}

/// Computes `k(P, S)` for `stencil` on a partition of `shape`.
pub fn perimeters(stencil: &Stencil, shape: PartitionShape) -> usize {
    match shape {
        // A strip spans all columns, so only row reach forces communication.
        PartitionShape::Strip => stencil.reach_rows(),
        // A square has neighbours on both axes; the deeper reach governs.
        PartitionShape::Square => stencil.reach_rows().max(stencil.reach_cols()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tap;

    /// The paper's §3 table of k(Partition, Stencil) values.
    #[test]
    fn paper_k_table() {
        let cases = [
            (Stencil::five_point(), 1, 1),
            (Stencil::nine_point_box(), 1, 1),
            (Stencil::nine_point_star(), 2, 2),
            (Stencil::thirteen_point_star(), 2, 2),
        ];
        for (s, k_strip, k_square) in cases {
            assert_eq!(s.perimeters(PartitionShape::Strip), k_strip, "{} strip", s.name());
            assert_eq!(s.perimeters(PartitionShape::Square), k_square, "{} square", s.name());
        }
    }

    /// A purely horizontal stencil needs no strip communication at all.
    #[test]
    fn horizontal_only_stencil_has_zero_strip_perimeters() {
        let s = Stencil::new("1-D horizontal", vec![Tap::unit(0, -1), Tap::unit(0, 1)], 1.0, 2.0);
        assert_eq!(s.perimeters(PartitionShape::Strip), 0);
        assert_eq!(s.perimeters(PartitionShape::Square), 1);
    }

    /// k on squares dominates k on strips for any stencil.
    #[test]
    fn square_k_at_least_strip_k() {
        for s in Stencil::catalog() {
            assert!(s.perimeters(PartitionShape::Square) >= s.perimeters(PartitionShape::Strip));
        }
    }

    #[test]
    fn asymmetric_reach() {
        // Reach 3 vertically, 1 horizontally.
        let s = Stencil::new(
            "tall",
            vec![Tap::unit(-3, 0), Tap::unit(3, 0), Tap::unit(0, -1), Tap::unit(0, 1)],
            1.0,
            4.0,
        );
        assert_eq!(s.perimeters(PartitionShape::Strip), 3);
        assert_eq!(s.perimeters(PartitionShape::Square), 3);
    }

    #[test]
    fn shape_names() {
        assert_eq!(PartitionShape::Strip.name(), "strip");
        assert_eq!(PartitionShape::Square.name(), "square");
        assert_eq!(PartitionShape::all().len(), 2);
    }
}
