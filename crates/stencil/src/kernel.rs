//! Kernel identification: which fused sweep kernel can run a stencil.
//!
//! The generic sweep in `parspeed-solver` interprets the tap list point by
//! point; the fused kernels unroll one specific tap list into straight-line
//! slice arithmetic. Fusing is only sound when the tap list — offsets,
//! coefficients, *and order* (floating-point addition is not associative,
//! and the repo guarantees fused results are bit-identical to generic ones)
//! — plus `rhs_scale` and `divisor` all match the catalogue stencil the
//! kernel was written for. [`Stencil::kernel_kind`] performs exactly that
//! structural match, without allocating, so callers may re-dispatch on
//! every sweep.

use crate::Stencil;

/// The catalogue stencils that have hand-fused sweep kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// [`Stencil::five_point`]: reach-1 cross, unit coefficients.
    FivePoint,
    /// [`Stencil::nine_point_box`]: reach-1 box (Mehrstellen).
    NinePointBox,
    /// [`Stencil::nine_point_star`]: reach-2 cross (fourth order).
    NinePointStar,
    /// [`Stencil::thirteen_point_star`]: reach-2 cross plus unit diagonals.
    ThirteenPointStar,
}

/// `(dy, dx, coeff)` triples in catalogue order, plus `(rhs_scale, divisor)`.
type Signature = (&'static [(i32, i32, f64)], f64, f64);

const FIVE_POINT: Signature = (&[(-1, 0, 1.0), (1, 0, 1.0), (0, -1, 1.0), (0, 1, 1.0)], 1.0, 4.0);

const NINE_POINT_BOX: Signature = (
    &[
        (-1, 0, 4.0),
        (1, 0, 4.0),
        (0, -1, 4.0),
        (0, 1, 4.0),
        (-1, -1, 1.0),
        (-1, 1, 1.0),
        (1, -1, 1.0),
        (1, 1, 1.0),
    ],
    6.0,
    20.0,
);

const NINE_POINT_STAR: Signature = (
    &[
        (-1, 0, 16.0),
        (1, 0, 16.0),
        (0, -1, 16.0),
        (0, 1, 16.0),
        (-2, 0, -1.0),
        (2, 0, -1.0),
        (0, -2, -1.0),
        (0, 2, -1.0),
    ],
    12.0,
    60.0,
);

const THIRTEEN_POINT_STAR: Signature = (
    &[
        (-1, 0, 16.0),
        (1, 0, 16.0),
        (0, -1, 16.0),
        (0, 1, 16.0),
        (-2, 0, -1.0),
        (2, 0, -1.0),
        (0, -2, -1.0),
        (0, 2, -1.0),
        (-1, -1, 4.0),
        (-1, 1, 4.0),
        (1, -1, 4.0),
        (1, 1, 4.0),
    ],
    20.0,
    76.0,
);

fn matches(stencil: &Stencil, sig: Signature) -> bool {
    let (taps, rhs_scale, divisor) = sig;
    stencil.rhs_scale() == rhs_scale
        && stencil.divisor() == divisor
        && stencil.taps().len() == taps.len()
        && stencil
            .taps()
            .iter()
            .zip(taps)
            .all(|(t, &(dy, dx, c))| t.offset.dy == dy && t.offset.dx == dx && t.coeff == c)
}

impl Stencil {
    /// Identifies the fused kernel for this stencil, if one exists.
    ///
    /// Matching is structural — a stencil built by hand with
    /// [`Stencil::new`] that lists the same taps in the same order with the
    /// same coefficients, `rhs_scale`, and `divisor` as a catalogue stencil
    /// is identified regardless of its name. Any deviation (reordered taps,
    /// different coefficients) returns `None` and the generic tap-driven
    /// sweep runs instead.
    pub fn kernel_kind(&self) -> Option<KernelKind> {
        if matches(self, FIVE_POINT) {
            Some(KernelKind::FivePoint)
        } else if matches(self, NINE_POINT_BOX) {
            Some(KernelKind::NinePointBox)
        } else if matches(self, NINE_POINT_STAR) {
            Some(KernelKind::NinePointStar)
        } else if matches(self, THIRTEEN_POINT_STAR) {
            Some(KernelKind::ThirteenPointStar)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tap;

    #[test]
    fn catalog_stencils_are_identified() {
        assert_eq!(Stencil::five_point().kernel_kind(), Some(KernelKind::FivePoint));
        assert_eq!(Stencil::nine_point_box().kernel_kind(), Some(KernelKind::NinePointBox));
        assert_eq!(Stencil::nine_point_star().kernel_kind(), Some(KernelKind::NinePointStar));
        assert_eq!(
            Stencil::thirteen_point_star().kernel_kind(),
            Some(KernelKind::ThirteenPointStar)
        );
    }

    #[test]
    fn structural_twin_with_different_name_is_identified() {
        let twin = Stencil::new(
            "my cross",
            vec![Tap::unit(-1, 0), Tap::unit(1, 0), Tap::unit(0, -1), Tap::unit(0, 1)],
            1.0,
            4.0,
        );
        assert_eq!(twin.kernel_kind(), Some(KernelKind::FivePoint));
    }

    #[test]
    fn reordered_taps_are_not_identified() {
        // Same operator, different summation order: fused arithmetic would
        // not be bit-identical, so the dispatch must refuse.
        let reordered = Stencil::new(
            "cross, E first",
            vec![Tap::unit(0, 1), Tap::unit(0, -1), Tap::unit(1, 0), Tap::unit(-1, 0)],
            1.0,
            4.0,
        );
        assert_eq!(reordered.kernel_kind(), None);
    }

    #[test]
    fn perturbed_constants_are_not_identified() {
        let scaled = Stencil::new(
            "scaled cross",
            vec![Tap::unit(-1, 0), Tap::unit(1, 0), Tap::unit(0, -1), Tap::unit(0, 1)],
            1.0,
            4.5,
        );
        assert_eq!(scaled.kernel_kind(), None);
        let custom = Stencil::new("pair", vec![Tap::unit(0, 1), Tap::unit(0, -1)], 1.0, 2.0);
        assert_eq!(custom.kernel_kind(), None);
    }

    #[test]
    fn signatures_stay_in_sync_with_the_catalog() {
        // The fused kernels hard-code the catalogue coefficients; this pins
        // the signature tables to the actual constructors.
        for (s, sig) in [
            (Stencil::five_point(), FIVE_POINT),
            (Stencil::nine_point_box(), NINE_POINT_BOX),
            (Stencil::nine_point_star(), NINE_POINT_STAR),
            (Stencil::thirteen_point_star(), THIRTEEN_POINT_STAR),
        ] {
            assert!(matches(&s, sig), "{} drifted from its kernel signature", s.name());
        }
    }
}
