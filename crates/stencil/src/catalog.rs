//! The four stencils drawn in the paper (Figures 1 and 3).
//!
//! Coefficients are the standard ones for `-∇²u = f`; the 13-point operator
//! is used by the paper only for its *geometry* (it is the example of a
//! stencil needing two perimeters *and* diagonals), so any consistent
//! coefficient set serves; we use a 9-point-star core plus unit diagonals
//! with a matching divisor so that constants are fixed points of the
//! homogeneous update.

use crate::{Stencil, Tap};

impl Stencil {
    /// The 5-point Laplacian cross (paper Fig. 1, left).
    ///
    /// Jacobi update: `u' = (uN + uS + uE + uW + h²·f) / 4`.
    pub fn five_point() -> Stencil {
        Stencil::new(
            "5-point",
            vec![Tap::unit(-1, 0), Tap::unit(1, 0), Tap::unit(0, -1), Tap::unit(0, 1)],
            1.0,
            4.0,
        )
    }

    /// The 9-point "Mehrstellen" box (paper Fig. 1, right).
    ///
    /// Jacobi update: `u' = (4·(uN+uS+uE+uW) + (uNE+uNW+uSE+uSW) + 6h²·f) / 20`.
    pub fn nine_point_box() -> Stencil {
        Stencil::new(
            "9-point box",
            vec![
                Tap::new(-1, 0, 4.0),
                Tap::new(1, 0, 4.0),
                Tap::new(0, -1, 4.0),
                Tap::new(0, 1, 4.0),
                Tap::unit(-1, -1),
                Tap::unit(-1, 1),
                Tap::unit(1, -1),
                Tap::unit(1, 1),
            ],
            6.0,
            20.0,
        )
    }

    /// The 9-point star: fourth-order central differences on each axis
    /// (paper Fig. 3, left — the stencil that needs **two** perimeters).
    ///
    /// From `-u'' ≈ (-u₋₂ + 16u₋₁ - 30u₀ + 16u₁ - u₂)/(12h²)` per axis:
    /// `u' = (16·(uN+uS+uE+uW) - (uNN+uSS+uEE+uWW) + 12h²·f) / 60`.
    pub fn nine_point_star() -> Stencil {
        Stencil::new(
            "9-point star",
            vec![
                Tap::new(-1, 0, 16.0),
                Tap::new(1, 0, 16.0),
                Tap::new(0, -1, 16.0),
                Tap::new(0, 1, 16.0),
                Tap::new(-2, 0, -1.0),
                Tap::new(2, 0, -1.0),
                Tap::new(0, -2, -1.0),
                Tap::new(0, 2, -1.0),
            ],
            12.0,
            60.0,
        )
    }

    /// The 13-point star: reach-2 cross plus the four unit diagonals
    /// (paper Fig. 3, right).
    ///
    /// `u' = (16·cross₁ - cross₂ + 4·diag₁ + 20h²·f) / 76`. The RHS scale
    /// is fixed by consistency: `Σ cᵢ·dxᵢ² / 2 = (2·16 − 8 + 4·4)/2 = 20`.
    pub fn thirteen_point_star() -> Stencil {
        Stencil::new(
            "13-point star",
            vec![
                Tap::new(-1, 0, 16.0),
                Tap::new(1, 0, 16.0),
                Tap::new(0, -1, 16.0),
                Tap::new(0, 1, 16.0),
                Tap::new(-2, 0, -1.0),
                Tap::new(2, 0, -1.0),
                Tap::new(0, -2, -1.0),
                Tap::new(0, 2, -1.0),
                Tap::new(-1, -1, 4.0),
                Tap::new(-1, 1, 4.0),
                Tap::new(1, -1, 4.0),
                Tap::new(1, 1, 4.0),
            ],
            20.0,
            76.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The homogeneous update (f = 0) applied to a constant field must return
    /// that constant: Σ coeff == divisor. This is the consistency condition
    /// that makes Jacobi a fixed-point iteration for the Laplace equation.
    #[test]
    fn constants_are_fixed_points() {
        for s in Stencil::catalog() {
            let sum: f64 = s.taps().iter().map(|t| t.coeff).sum();
            assert!(
                (sum - s.divisor()).abs() < 1e-12,
                "{}: tap sum {} != divisor {}",
                s.name(),
                sum,
                s.divisor()
            );
        }
    }

    /// Taps must be symmetric under negation (centred differences).
    #[test]
    fn taps_are_centrally_symmetric() {
        for s in Stencil::catalog() {
            for t in s.taps() {
                let mirror = s
                    .taps()
                    .iter()
                    .find(|u| u.offset.dy == -t.offset.dy && u.offset.dx == -t.offset.dx)
                    .unwrap_or_else(|| panic!("{}: no mirror for {:?}", s.name(), t.offset));
                assert_eq!(mirror.coeff, t.coeff, "{}: asymmetric coeff", s.name());
            }
        }
    }

    /// Taps must be symmetric under swapping axes (isotropic operators).
    #[test]
    fn taps_are_axis_symmetric() {
        for s in Stencil::catalog() {
            for t in s.taps() {
                let swapped = s
                    .taps()
                    .iter()
                    .find(|u| u.offset.dy == t.offset.dx && u.offset.dx == t.offset.dy)
                    .unwrap_or_else(|| panic!("{}: no axis-swap for {:?}", s.name(), t.offset));
                assert_eq!(swapped.coeff, t.coeff, "{}: anisotropic coeff", s.name());
            }
        }
    }

    /// Second-order consistency with −∇²: the Jacobi fixed point satisfies
    /// `(div·u − Σc·u_nb)/(rs·h²) ≈ −∇²u`, which requires
    /// `rs = Σ cᵢ·dxᵢ²/2` (and the same for dy by symmetry).
    #[test]
    fn rhs_scale_matches_taylor_consistency() {
        for s in Stencil::catalog() {
            let sum_dx2: f64 =
                s.taps().iter().map(|t| t.coeff * (t.offset.dx * t.offset.dx) as f64).sum();
            let sum_dy2: f64 =
                s.taps().iter().map(|t| t.coeff * (t.offset.dy * t.offset.dy) as f64).sum();
            assert_eq!(sum_dx2, sum_dy2, "{}", s.name());
            assert!(
                (s.rhs_scale() - sum_dx2 / 2.0).abs() < 1e-12,
                "{}: rhs_scale {} vs consistency {}",
                s.name(),
                s.rhs_scale(),
                sum_dx2 / 2.0
            );
        }
    }

    #[test]
    fn rhs_scales_are_positive() {
        for s in Stencil::catalog() {
            assert!(s.rhs_scale() > 0.0, "{}", s.name());
            assert!(s.divisor() > 0.0, "{}", s.name());
        }
    }
}
