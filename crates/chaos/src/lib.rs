//! `parspeed-chaos` — seeded, deterministic fault injection for the
//! serving tier.
//!
//! The paper's argument is that overhead — not raw compute — decides
//! the optimal architecture, and a lost or straggling shard is the
//! overhead term at its worst: Gunther's `T∞` critical-path bound says
//! one wedged backend *is* the fleet's execution time unless the
//! serving tier routes around it. Routing around failure is only
//! trustworthy if failure itself is a reproducible input, so this crate
//! makes it one: a [`FaultPlan`] is a script of [`Trigger`]s (kill a
//! shard at request K, delay a lane, drop or duplicate a reply, wedge a
//! lane, panic a worker) plus a seeded RNG for jitter, installable on a
//! router or server behind an `Option` hook that costs nothing when
//! absent. The same seed and script produce the same event trace, so
//! every failure mode the resilience layer handles is a unit test, not
//! a production incident.
//!
//! The crate depends on nothing and knows nothing about the engine or
//! the serving layers: it hands out actions and records events; the
//! host decides what "kill shard 2" means.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The splitmix64 finalizer: a cheap, well-mixed stateless hash used
/// for deterministic jitter (the same mix the router's hash ring uses
/// for point placement).
pub fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A tiny seeded generator (splitmix64 stream) for scripted randomness.
/// Deterministic: the same seed yields the same sequence on every run
/// and every platform.
#[derive(Debug, Clone)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        FaultRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix(self.state)
    }

    /// A value in `0..n` (`n = 0` answers 0).
    pub fn next_below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// Capped exponential backoff with deterministic jitter, in
/// milliseconds, for retry attempt `attempt` (1-based).
///
/// The first attempt after a failure is an immediate failover (0 ms):
/// the ring has already rebalanced, so there is nothing to wait for.
/// From the second attempt on, the raw delay doubles from `base_ms` up
/// to `cap_ms`, and the jitter draws deterministically from
/// `[raw/2, raw]` using `seed` and the per-request `token` — the same
/// request retries on the same schedule every run, while distinct
/// requests decorrelate (no thundering herd at a readmitted shard).
pub fn backoff_ms(base_ms: u64, cap_ms: u64, attempt: u32, seed: u64, token: u64) -> u64 {
    if attempt <= 1 || base_ms == 0 {
        return 0;
    }
    let doublings = (attempt - 2).min(63);
    let raw = base_ms.saturating_shl(doublings).min(cap_ms.max(base_ms));
    let lo = raw / 2;
    lo + mix(seed ^ token ^ u64::from(attempt)) % (raw - lo + 1)
}

trait SaturatingShl {
    fn saturating_shl(self, n: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, n: u32) -> u64 {
        if self == 0 {
            0
        } else if n >= self.leading_zeros() {
            u64::MAX
        } else {
            self << n
        }
    }
}

/// One injectable failure. Shard indices are host-interpreted (the
/// router's lane numbers); the plan itself attaches no meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Kill a shard outright: remove it from the ring and drain it —
    /// the process-death failure mode.
    KillShard {
        /// The shard to kill.
        shard: usize,
    },
    /// Add `millis` of latency to the shard's next reply — the
    /// straggler failure mode (the paper's slowest-processor term).
    DelayLane {
        /// The lane to slow down.
        shard: usize,
        /// Extra latency, milliseconds.
        millis: u64,
    },
    /// Swallow the shard's next reply — the lost-message failure mode;
    /// the waiting request must be retried elsewhere.
    DropReply {
        /// The lane whose next reply is lost.
        shard: usize,
    },
    /// Deliver the shard's next reply twice — the duplicated-message
    /// failure mode; the gather layer must suppress the copy.
    DuplicateReply {
        /// The lane whose next reply duplicates.
        shard: usize,
    },
    /// Stop the shard from answering without killing it — the
    /// hung-backend failure mode that trips a circuit breaker.
    WedgeLane {
        /// The lane to wedge.
        shard: usize,
    },
    /// Panic a batcher worker mid-service — the bug failure mode; the
    /// server must recover and still answer every admitted slot.
    PanicWorker,
    /// Make the supervisor's next respawn attempt for this shard fail —
    /// the replacement-also-dies failure mode that exercises respawn
    /// backoff and the respawn budget.
    RespawnDeny {
        /// The shard whose next respawn is denied.
        shard: usize,
    },
    /// Kill a shard and deny its next `times` respawn attempts — the
    /// crash-loop failure mode; a supervisor with `max_respawns` below
    /// `times` must degrade to permanent eviction instead of flapping
    /// the ring.
    CrashLoop {
        /// The shard that crash-loops.
        shard: usize,
        /// How many consecutive respawn attempts fail.
        times: u64,
    },
}

impl std::fmt::Display for FaultAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultAction::KillShard { shard } => write!(f, "kill:{shard}"),
            FaultAction::DelayLane { shard, millis } => write!(f, "delay:{shard}:{millis}"),
            FaultAction::DropReply { shard } => write!(f, "drop:{shard}"),
            FaultAction::DuplicateReply { shard } => write!(f, "dup:{shard}"),
            FaultAction::WedgeLane { shard } => write!(f, "wedge:{shard}"),
            FaultAction::PanicWorker => write!(f, "panic"),
            FaultAction::RespawnDeny { shard } => write!(f, "respawn-deny:{shard}"),
            FaultAction::CrashLoop { shard, times } => write!(f, "crashloop:{shard}:{times}"),
        }
    }
}

/// A scripted failure: `action` fires when the host's request counter
/// reaches `at_request` (1-based — the Kth admitted request trips it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trigger {
    /// The 1-based request index that trips the action.
    pub at_request: u64,
    /// What happens.
    pub action: FaultAction,
}

/// A deterministic fault script plus its event trace.
///
/// The host ticks the plan once per admitted request
/// ([`on_request`](FaultPlan::on_request)); actions whose trigger index
/// has been reached fire exactly once, in script order. Everything the
/// plan causes is appended to an event trace
/// ([`record`](FaultPlan::record) / [`events`](FaultPlan::events)), and
/// the determinism contract — same seed, same script, same workload ⇒
/// same trace — is what the bench's robustness gate asserts.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    triggers: Vec<Trigger>,
    counter: AtomicU64,
    cursor: Mutex<usize>,
    events: Mutex<Vec<String>>,
}

impl FaultPlan {
    /// A plan over `triggers` (sorted by request index; ties fire in
    /// the given order) with `seed` driving every jitter draw.
    pub fn new(seed: u64, mut triggers: Vec<Trigger>) -> Self {
        triggers.sort_by_key(|t| t.at_request);
        FaultPlan {
            seed,
            triggers,
            counter: AtomicU64::new(0),
            cursor: Mutex::new(0),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Parses the CLI spec: comma-separated `ACTION@K` items, where `K`
    /// is the 1-based request index and `ACTION` is one of
    /// `kill:S`, `delay:S:MS`, `drop:S`, `dup:S`, `wedge:S`, `panic`,
    /// `respawn-deny:S`, `crashloop:S:N`.
    ///
    /// Example: `"kill:1@120,delay:0:25@40,panic@9"`.
    ///
    /// Errors name the offending item *and* its 1-based position in the
    /// spec (`fault 2 (\`kill\`): …`), so a typo in a long plan is
    /// findable without bisecting the string.
    pub fn parse(spec: &str, seed: u64) -> Result<FaultPlan, String> {
        let mut triggers = Vec::new();
        for (pos, item) in spec.split(',').map(str::trim).enumerate() {
            let pos = pos + 1; // 1-based, counting empty fields too
            if item.is_empty() {
                continue;
            }
            let fail = |msg: String| Err(format!("fault {pos} (`{item}`): {msg}"));
            let Some((action, at)) = item.split_once('@') else {
                return fail("expected ACTION@REQUEST".into());
            };
            let Ok(at_request) = at.trim().parse::<u64>() else {
                return fail(format!("request index `{}` must be a positive integer", at.trim()));
            };
            if at_request == 0 {
                return fail("request indices are 1-based".into());
            }
            let parts: Vec<&str> = action.trim().split(':').collect();
            let shard_of = |s: &str| {
                s.parse::<usize>()
                    .map_err(|_| format!("fault {pos} (`{item}`): bad shard index `{s}`"))
            };
            let action = match parts.as_slice() {
                ["kill", s] => FaultAction::KillShard { shard: shard_of(s)? },
                ["delay", s, ms] => {
                    let Ok(millis) = ms.parse() else {
                        return fail(format!("bad delay millis `{ms}`"));
                    };
                    FaultAction::DelayLane { shard: shard_of(s)?, millis }
                }
                ["drop", s] => FaultAction::DropReply { shard: shard_of(s)? },
                ["dup", s] => FaultAction::DuplicateReply { shard: shard_of(s)? },
                ["wedge", s] => FaultAction::WedgeLane { shard: shard_of(s)? },
                ["panic"] => FaultAction::PanicWorker,
                ["respawn-deny", s] => FaultAction::RespawnDeny { shard: shard_of(s)? },
                ["crashloop", s, n] => {
                    let Ok(times) = n.parse::<u64>() else {
                        return fail(format!("bad crash-loop count `{n}`"));
                    };
                    if times == 0 {
                        return fail("crash-loop count must be at least 1".into());
                    }
                    FaultAction::CrashLoop { shard: shard_of(s)?, times }
                }
                _ => {
                    return fail(
                        "unknown action; one of kill:S, delay:S:MS, drop:S, dup:S, wedge:S, \
                         panic, respawn-deny:S, crashloop:S:N"
                            .into(),
                    )
                }
            };
            triggers.push(Trigger { at_request, action });
        }
        if triggers.is_empty() {
            return Err("fault plan is empty; expected ACTION@REQUEST[,ACTION@REQUEST...]".into());
        }
        Ok(FaultPlan::new(seed, triggers))
    }

    /// The seed every jitter draw derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The script, in firing order.
    pub fn triggers(&self) -> &[Trigger] {
        &self.triggers
    }

    /// How many requests have ticked the plan so far.
    pub fn requests_seen(&self) -> u64 {
        self.counter.load(Ordering::SeqCst)
    }

    /// Ticks the request counter and returns every not-yet-fired action
    /// whose trigger index has been reached. Each trigger fires exactly
    /// once, in script order, however many threads tick concurrently.
    pub fn on_request(&self) -> Vec<FaultAction> {
        let k = self.counter.fetch_add(1, Ordering::SeqCst) + 1;
        let mut cursor = self.cursor.lock().unwrap();
        let mut due = Vec::new();
        while *cursor < self.triggers.len() && self.triggers[*cursor].at_request <= k {
            due.push(self.triggers[*cursor].action);
            *cursor += 1;
        }
        due
    }

    /// Appends one line to the event trace (hosts record what each
    /// fired action actually did, plus every recovery step it caused).
    pub fn record(&self, event: impl Into<String>) {
        self.events.lock().unwrap().push(event.into());
    }

    /// The event trace so far, oldest first.
    pub fn events(&self) -> Vec<String> {
        self.events.lock().unwrap().clone()
    }

    /// The trace as one newline-joined string — the determinism
    /// fingerprint (same seed + script + workload ⇒ identical string).
    pub fn trace(&self) -> String {
        self.events.lock().unwrap().join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_spread() {
        let mut a = FaultRng::new(42);
        let mut b = FaultRng::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        // A different seed diverges immediately.
        let mut c = FaultRng::new(43);
        assert_ne!(xs[0], c.next_u64());
        // next_below stays in range.
        let mut r = FaultRng::new(7);
        assert!((0..100).all(|_| r.next_below(10) < 10));
        assert_eq!(FaultRng::new(1).next_below(0), 0);
    }

    #[test]
    fn backoff_is_immediate_then_doubling_then_capped() {
        // Attempt 1: immediate failover.
        assert_eq!(backoff_ms(2, 50, 1, 9, 9), 0);
        // Attempt k >= 2: raw doubles 2, 4, 8, ... capped at 50, jitter
        // within [raw/2, raw].
        for (attempt, raw) in [(2u32, 2u64), (3, 4), (4, 8), (5, 16), (6, 32), (7, 50), (8, 50)] {
            let ms = backoff_ms(2, 50, attempt, 9, 9);
            assert!(ms >= raw / 2 && ms <= raw, "attempt {attempt}: {ms} vs raw {raw}");
        }
        // Deterministic per (seed, token, attempt); tokens decorrelate.
        assert_eq!(backoff_ms(2, 50, 5, 1, 77), backoff_ms(2, 50, 5, 1, 77));
        let spread: std::collections::HashSet<u64> =
            (0..32).map(|token| backoff_ms(16, 4096, 9, 1, token)).collect();
        assert!(spread.len() > 8, "jitter collapsed: {spread:?}");
        // Huge attempt counts saturate instead of overflowing.
        assert_eq!(backoff_ms(2, 50, u32::MAX, 0, 0).max(25), backoff_ms(2, 50, u32::MAX, 0, 0));
    }

    #[test]
    fn triggers_fire_once_in_order() {
        let plan = FaultPlan::new(
            0,
            vec![
                Trigger { at_request: 3, action: FaultAction::PanicWorker },
                Trigger { at_request: 1, action: FaultAction::KillShard { shard: 2 } },
                Trigger { at_request: 3, action: FaultAction::DropReply { shard: 0 } },
            ],
        );
        assert_eq!(plan.on_request(), vec![FaultAction::KillShard { shard: 2 }]);
        assert!(plan.on_request().is_empty());
        assert_eq!(
            plan.on_request(),
            vec![FaultAction::PanicWorker, FaultAction::DropReply { shard: 0 }]
        );
        assert!(plan.on_request().is_empty());
        assert_eq!(plan.requests_seen(), 4);
    }

    #[test]
    fn a_skipped_index_still_fires_late_triggers() {
        // A trigger whose exact index never ticks (e.g. the counter
        // jumps in a concurrent race) fires on the next tick past it.
        let plan =
            FaultPlan::new(0, vec![Trigger { at_request: 2, action: FaultAction::PanicWorker }]);
        plan.counter.store(5, Ordering::SeqCst);
        assert_eq!(plan.on_request(), vec![FaultAction::PanicWorker]);
    }

    #[test]
    fn parse_round_trips_the_documented_spec() {
        let plan = FaultPlan::parse("kill:1@120, delay:0:25@40,drop:2@10,dup:2@11", 7).unwrap();
        assert_eq!(plan.seed(), 7);
        let rendered: Vec<String> =
            plan.triggers().iter().map(|t| format!("{}@{}", t.action, t.at_request)).collect();
        // Sorted by request index.
        assert_eq!(rendered, ["drop:2@10", "dup:2@11", "delay:0:25@40", "kill:1@120"]);
        assert!(FaultPlan::parse("wedge:3@5,panic@9", 0).is_ok());
        assert!(FaultPlan::parse("respawn-deny:0@7,crashloop:2:3@50", 0).is_ok());

        for bad in ["", "kill:1", "kill@3", "kill:x@3", "delay:0@3", "kill:1@0", "explode:1@3"] {
            assert!(FaultPlan::parse(bad, 0).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn self_healing_actions_round_trip_their_spec_spelling() {
        let plan = FaultPlan::parse("crashloop:1:4@9, respawn-deny:3@2", 0).unwrap();
        let rendered: Vec<String> =
            plan.triggers().iter().map(|t| format!("{}@{}", t.action, t.at_request)).collect();
        assert_eq!(rendered, ["respawn-deny:3@2", "crashloop:1:4@9"]);
        assert_eq!(plan.triggers()[1].action, FaultAction::CrashLoop { shard: 1, times: 4 });
    }

    #[test]
    fn parse_errors_name_the_offending_item_and_its_position() {
        // One malformed shape per case; every error names the bad token
        // and its 1-based comma position in the spec.
        let cases = [
            ("kill:0@1,kill:1", "fault 2 (`kill:1`): expected ACTION@REQUEST"),
            ("kill@3", "fault 1 (`kill@3`): unknown action"),
            ("panic@1,panic@1,kill:x@3", "fault 3 (`kill:x@3`): bad shard index `x`"),
            ("delay:0@3", "fault 1 (`delay:0@3`): unknown action"),
            ("delay:0:ms@3", "fault 1 (`delay:0:ms@3`): bad delay millis `ms`"),
            ("kill:1@0", "fault 1 (`kill:1@0`): request indices are 1-based"),
            ("panic@1,explode:1@3", "fault 2 (`explode:1@3`): unknown action"),
            ("panic@x", "fault 1 (`panic@x`): request index `x` must be a positive integer"),
            ("crashloop:0:0@5", "fault 1 (`crashloop:0:0@5`): crash-loop count must be at least 1"),
            ("crashloop:0:n@5", "fault 1 (`crashloop:0:n@5`): bad crash-loop count `n`"),
            ("respawn-deny:z@5", "fault 1 (`respawn-deny:z@5`): bad shard index `z`"),
            // Empty fields still count toward the position.
            (",,kill:1", "fault 3 (`kill:1`): expected ACTION@REQUEST"),
        ];
        for (spec, want) in cases {
            let err = FaultPlan::parse(spec, 0).unwrap_err();
            assert!(err.starts_with(want), "spec {spec:?}: got {err:?}, want prefix {want:?}");
        }
        assert_eq!(
            FaultPlan::parse("", 0).unwrap_err(),
            "fault plan is empty; expected ACTION@REQUEST[,ACTION@REQUEST...]"
        );
    }

    #[test]
    fn event_trace_is_order_preserving() {
        let plan = FaultPlan::new(1, vec![]);
        plan.record("a");
        plan.record(String::from("b"));
        assert_eq!(plan.events(), ["a", "b"]);
        assert_eq!(plan.trace(), "a\nb");
    }
}
