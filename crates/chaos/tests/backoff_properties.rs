//! Property tests for the deterministic backoff schedule — the one
//! function every retry, probe, and respawn wait in the serving tier
//! flows through. The contract the router (and its operators) lean on:
//! the schedule is a pure function of its inputs, the first failover
//! never waits, and no wait ever exceeds the configured cap.

use parspeed_chaos::backoff_ms;
use proptest::prelude::*;

/// The attempt's un-jittered ceiling: `base` doubled per attempt past
/// the second, saturating at `cap` — restated independently here so the
/// tests do not just mirror the implementation.
fn ceiling(base: u64, cap: u64, attempt: u32) -> u64 {
    2u64.saturating_pow(attempt.saturating_sub(2)).saturating_mul(base).min(cap)
}

proptest! {
    /// Same inputs, same wait: the schedule is a pure function, so the
    /// same seed and the same traffic replay the same timeline.
    fn deterministic_per_seed(
        base in 0u64..10_000,
        cap in 0u64..100_000,
        attempt in 0u32..64,
        seed in 0u64..u64::MAX,
        token in 0u64..u64::MAX,
    ) {
        let a = backoff_ms(base, cap, attempt, seed, token);
        let b = backoff_ms(base, cap, attempt, seed, token);
        prop_assert_eq!(a, b);
    }

    /// A seed reshuffles the jitter but never the envelope: every wait
    /// lands in the attempt's `[ceiling/2, ceiling]` window.
    fn jitter_stays_inside_the_envelope(
        base in 1u64..10_000,
        extra in 0u64..100_000,
        attempt in 2u32..64,
        seed in 0u64..u64::MAX,
        token in 0u64..u64::MAX,
    ) {
        let raw = ceiling(base, base + extra, attempt);
        let wait = backoff_ms(base, base + extra, attempt, seed, token);
        prop_assert!(wait >= raw / 2, "wait {} below envelope floor {}", wait, raw / 2);
        prop_assert!(wait <= raw, "wait {} above envelope ceiling {}", wait, raw);
    }

    /// The first attempt — and the degenerate zero-base schedule —
    /// never waits: failover is immediate, backoff starts at attempt 2.
    fn first_attempt_is_immediate(
        base in 0u64..10_000,
        cap in 0u64..100_000,
        attempt in 0u32..2,
        seed in 0u64..u64::MAX,
        token in 0u64..u64::MAX,
    ) {
        prop_assert_eq!(backoff_ms(base, cap, attempt, seed, token), 0);
        prop_assert_eq!(backoff_ms(0, cap, 40, seed, token), 0);
    }

    /// No wait ever exceeds the cap (when the cap is sane, i.e. at
    /// least the base), and the un-jittered ceiling is monotone in the
    /// attempt number until it saturates at the cap — a later attempt
    /// never promises a *shorter* maximum wait.
    fn capped_and_monotone(
        base in 1u64..10_000,
        extra in 0u64..100_000,
        seed in 0u64..u64::MAX,
        token in 0u64..u64::MAX,
    ) {
        let cap = base + extra;
        let mut prev_ceiling = 0u64;
        for attempt in 2u32..64 {
            let raw = ceiling(base, cap, attempt);
            let wait = backoff_ms(base, cap, attempt, seed, token);
            prop_assert!(wait <= cap, "attempt {}: wait {} exceeds cap {}", attempt, wait, cap);
            prop_assert!(
                raw >= prev_ceiling,
                "attempt {}: ceiling {} shrank from {}",
                attempt, raw, prev_ceiling
            );
            prev_ceiling = raw;
        }
    }
}
