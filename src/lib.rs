//! # parspeed — Problem Size, Parallel Architecture, and Optimal Speedup
//!
//! A production-quality Rust reproduction of Nicol & Willard's 1987 ICPP /
//! ICASE study of optimal processor allocation for parallel elliptic-PDE
//! solvers. This facade crate re-exports the whole workspace; see the
//! individual crates for details:
//!
//! * [`stencil`] — discretization stencils, `E(S)` and `k(P,S)`,
//! * [`grid`] — grid storage and domain decomposition (strips, legal and
//!   working rectangles),
//! * [`model`] — the analytic cycle-time model and optimal-speedup analysis
//!   (the paper's contribution; crate `parspeed-core`),
//! * [`desim`] — deterministic discrete-event simulation kernel,
//! * [`arch`] — event-driven simulators of the paper's machine classes
//!   (hypercube, mesh, synchronous/asynchronous bus, banyan network),
//! * [`solver`] — real numerical solvers (Jacobi, SOR, red-black, CG),
//! * [`exec`] — shared-memory partitioned parallel runtime (rayon) used to
//!   validate the model on the host machine,
//! * [`engine`] — the versioned service surface: a batched, cached,
//!   parallel query engine covering every capability (analytic queries,
//!   event-level simulations, real solves, measurements), bit-identical
//!   to direct calls into the crates above.
//!
//! A command-line interface to all of it ships as the `parspeed` binary
//! (crate `parspeed-cli`) — every one of its commands routes through the
//! engine's `Service` — and `parspeed-bench` regenerates every table and
//! figure in the paper (see `EXPERIMENTS.md`).
//!
//! # Quickstart
//!
//! ```
//! use parspeed::prelude::*;
//!
//! // A 256×256 grid, 5-point stencil, square partitions, on the paper's
//! // calibrated synchronous-bus machine: the optimum uses ~14 processors.
//! let machine = MachineParams::paper_defaults();
//! let w = Workload::new(256, &Stencil::five_point(), PartitionShape::Square);
//! let opt = SyncBus::new(&machine).optimize(&w, ProcessorBudget::Unlimited);
//! assert!((13..=15).contains(&opt.processors));
//! assert!(opt.speedup > 1.0);
//! ```
//!
//! The same question through the service surface — planned, deduplicated,
//! and cached, with builder-style request construction:
//!
//! ```
//! use parspeed::prelude::*;
//!
//! let engine = Engine::builder().build();
//! let reply = engine
//!     .call(&Request::optimize(ArchKind::SyncBus, 256).procs(64).build())
//!     .unwrap();
//! match &reply.responses[0] {
//!     Response::Single(Ok(EvalValue::Optimum { processors, .. })) => {
//!         assert_eq!(*processors, 14);
//!     }
//!     other => panic!("unexpected {other:?}"),
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use parspeed_arch as arch;
pub use parspeed_core as model;
pub use parspeed_desim as desim;
pub use parspeed_engine as engine;
pub use parspeed_exec as exec;
pub use parspeed_grid as grid;
pub use parspeed_solver as solver;
pub use parspeed_stencil as stencil;

/// Convenient glob-import of the most used types across the workspace.
pub mod prelude {
    pub use parspeed_core::{
        ArchModel, AsyncBus, Banyan, BusParams, Hypercube, HypercubeParams, Infeasible,
        MachineParams, MemoryBudget, Mesh, Optimum, ProcessorBudget, ScheduledBus, SwitchParams,
        SyncBus, Workload,
    };
    pub use parspeed_engine::{
        ArchKind, BatchTelemetry, Engine, EngineBuilder, EvalOutcome, EvalValue, MachineSpec,
        ParspeedError, Query, Request, Response, Service, ServiceReply, ShapeKey, SimArchKind,
        SolverKind, StencilSpec, WorkloadSpec, WIRE_VERSION,
    };
    pub use parspeed_grid::{Grid2D, RectDecomposition, StripDecomposition, WorkingRectangles};
    pub use parspeed_solver::{JacobiSolver, PoissonProblem, SolveStatus};
    pub use parspeed_stencil::{PartitionShape, Stencil};
}
