//! Convergence-check scheduling on a real parallel solve (§4, ref [13]).
//!
//! ```sh
//! cargo run --release --example adaptive_convergence
//! ```
//!
//! Checking convergence costs a local pass plus a global combine, so
//! *when* to check is a real scheduling problem. This example runs the
//! rayon-partitioned Jacobi solver under four policies and shows what the
//! paper reports from [13]: naive per-iteration checking wastes a large
//! fraction of the run, and the rate-estimating scheduler gets the cost
//! down to a handful of checks with bounded overshoot.

use parspeed::exec::{AdaptiveChecker, CheckPolicy, PartitionedJacobi};
use parspeed::grid::StripDecomposition;
use parspeed::prelude::*;
use parspeed::solver::Manufactured;

fn main() {
    let n = 96usize;
    let tol = 1e-9;
    let problem = PoissonProblem::manufactured(n, Manufactured::SinSin);
    let stencil = Stencil::five_point();
    let decomp = StripDecomposition::new(n, 8);

    println!("{n}×{n} Poisson, 8 strip partitions, tol {tol:.0e}\n");
    println!("{:>22}  {:>10}  {:>8}  {:>10}", "policy", "iterations", "checks", "converged");

    let mut runs = Vec::new();
    for (name, policy) in [
        ("check every iteration", CheckPolicy::Every(1)),
        ("check every 64", CheckPolicy::Every(64)),
        ("geometric schedule", CheckPolicy::geometric()),
    ] {
        let mut exec = PartitionedJacobi::new(&problem, &stencil, &decomp);
        let run = exec.solve(tol, 200_000, policy);
        println!("{name:>22}  {:>10}  {:>8}  {:>10}", run.iterations, run.checks, run.converged);
        runs.push(run);
    }

    let mut adaptive = AdaptiveChecker::default();
    let mut exec = PartitionedJacobi::new(&problem, &stencil, &decomp);
    let run = exec.solve_scheduled(tol, 200_000, &mut adaptive);
    println!(
        "{:>22}  {:>10}  {:>8}  {:>10}",
        "adaptive (rate est.)", run.iterations, run.checks, run.converged
    );

    let spectral = (std::f64::consts::PI / (n as f64 + 1.0)).cos();
    if let Some(rho) = adaptive.estimated_rate() {
        println!(
            "\nEstimated decay rate ρ̂ = {rho:.6}; Jacobi's spectral radius cos(π/(n+1)) = {spectral:.6}."
        );
    }
    let eager = &runs[0];
    println!(
        "\nThe eager policy paid {} checks for {} iterations; the adaptive\n\
         scheduler paid {} checks and overshot by {} iterations — the [13]\n\
         result the paper leans on when it \"safely ignores\" convergence-\n\
         checking costs on hypercubes.",
        eager.checks,
        eager.iterations,
        run.checks,
        run.iterations.saturating_sub(eager.iterations),
    );
}
