//! Capacity planning with the query engine: given a machine, how many
//! processors should each job use, which jobs can fill the machine at all,
//! and what would an upgrade buy — submitted as *one batch* to
//! `parspeed-engine`, which dedups the job mix and fans it across cores.
//!
//! ```sh
//! cargo run --example capacity_planning
//! ```

use parspeed::engine::{EvalValue, Lever, MinSizeVariant, Response};
use parspeed::prelude::*;

fn main() {
    let machine = MachineParams::paper_defaults();
    let n_procs = 24usize;
    let spec = MachineSpec::default(); // resolves to paper_defaults()

    println!(
        "Machine: {n_procs}-processor synchronous bus (b = {:.1} µs/word, c = 0)\n",
        machine.bus.b * 1e6
    );

    // Build the whole planning session as one batch: the job-mix grid, the
    // Fig-7 thresholds, and the upgrade what-ifs.
    let stencils = [StencilSpec::FivePoint, StencilSpec::NinePointBox];
    let shapes = [ShapeKey::Strip, ShapeKey::Square];
    let sizes = [128usize, 256, 512, 1024];

    let mut batch: Vec<Query> = Vec::new();
    for stencil in stencils {
        for shape in shapes {
            for n in sizes {
                batch.push(Query::Optimize {
                    arch: ArchKind::SyncBus,
                    machine: spec,
                    workload: WorkloadSpec { n, stencil, shape },
                    procs: Some(n_procs),
                    memory_words: None,
                });
            }
        }
    }
    let minsize_variants =
        [MinSizeVariant::SyncStrip, MinSizeVariant::AsyncStrip, MinSizeVariant::SyncSquare];
    for v in minsize_variants {
        for e in [6.0, 12.0] {
            batch.push(Query::MinSize { variant: v, machine: spec, e, k: 1.0, procs: n_procs });
        }
    }
    for lever in [Lever::Bus, Lever::Flop] {
        batch.push(Query::Leverage {
            machine: spec,
            workload: WorkloadSpec {
                n: 1024,
                stencil: StencilSpec::FivePoint,
                shape: ShapeKey::Square,
            },
            procs: Some(n_procs),
            lever,
            factor: 2.0,
        });
    }

    let engine = Engine::builder().build();
    let out = engine.run_batch(&batch);
    let mut responses = out.responses.iter();

    // Allocation advice across the job mix.
    println!(
        "{:>6} {:>14} {:>10} {:>10} {:>10} {:>8}",
        "n", "stencil", "shape", "procs", "speedup", "full?"
    );
    for stencil in stencils {
        for shape in shapes {
            for n in sizes {
                let Some(Response::Single(Ok(EvalValue::Optimum {
                    processors,
                    speedup,
                    used_all,
                    ..
                }))) = responses.next()
                else {
                    panic!("optimize response expected");
                };
                println!(
                    "{:>6} {:>14} {:>10} {:>10} {:>10.1} {:>8}",
                    n,
                    stencil.name(),
                    shape.name(),
                    processors,
                    speedup,
                    if *used_all { "yes" } else { "no" }
                );
            }
        }
    }

    // Fig-7 style thresholds for this machine.
    println!("\nSmallest grid side that gainfully uses all {n_procs} processors:");
    for v in minsize_variants {
        let mut sides = [0.0f64; 2];
        for side in &mut sides {
            let Some(Response::Single(Ok(EvalValue::MinSize { n_side, .. }))) = responses.next()
            else {
                panic!("minsize response expected");
            };
            *side = *n_side;
        }
        println!(
            "  {:<22} 5-point: n ≥ {:>6.0}   9-point: n ≥ {:>6.0}",
            variant_label(v),
            sides[0],
            sides[1]
        );
    }

    // What would an upgrade buy at the optimum?
    let mut factors = [0.0f64; 2];
    for f in &mut factors {
        let Some(Response::Single(Ok(EvalValue::Leverage { factor, .. }))) = responses.next()
        else {
            panic!("leverage response expected");
        };
        *f = *factor;
    }
    println!(
        "\nUpgrades at n = 1024 (squares): bus×2 → {:.0}% of cycle, flop×2 → {:.0}%",
        100.0 * factors[0],
        100.0 * factors[1]
    );
    println!("Communication speed is the better lever (paper §6.1).");

    println!("\nEngine telemetry: {}", out.telemetry);
}

fn variant_label(v: MinSizeVariant) -> &'static str {
    match v {
        MinSizeVariant::SyncStrip => "synchronous, strip",
        MinSizeVariant::AsyncStrip => "asynchronous, strip",
        MinSizeVariant::SyncSquare => "synchronous, square",
        MinSizeVariant::AsyncSquare => "asynchronous, square",
    }
}
