//! Capacity planning with the model: given a machine, how many processors
//! should each job use, and which jobs can fill the machine at all?
//!
//! ```sh
//! cargo run --example capacity_planning
//! ```

use parspeed::model::minsize::{min_grid_side, BusVariant};
use parspeed::prelude::*;

fn main() {
    let machine = MachineParams::paper_defaults();
    let bus = SyncBus::new(&machine);
    let n_procs = 24usize;

    println!("Machine: {n_procs}-processor synchronous bus (b = {:.1} µs/word, c = 0)\n", machine.bus.b * 1e6);

    // Allocation advice across a job mix.
    println!("{:>6} {:>14} {:>10} {:>10} {:>10} {:>8}",
        "n", "stencil", "shape", "procs", "speedup", "full?");
    for stencil in [Stencil::five_point(), Stencil::nine_point_box()] {
        for shape in [PartitionShape::Strip, PartitionShape::Square] {
            for n in [128usize, 256, 512, 1024] {
                let w = Workload::new(n, &stencil, shape);
                let opt = bus.optimize(&w, ProcessorBudget::Limited(n_procs));
                println!(
                    "{:>6} {:>14} {:>10} {:>10} {:>10.1} {:>8}",
                    n,
                    stencil.name(),
                    shape.name(),
                    opt.processors,
                    opt.speedup,
                    if opt.used_all { "yes" } else { "no" }
                );
            }
        }
    }

    // Fig-7 style thresholds for this machine.
    println!("\nSmallest grid side that gainfully uses all {n_procs} processors:");
    for v in [BusVariant::SyncStrip, BusVariant::AsyncStrip, BusVariant::SyncSquare] {
        let n5 = min_grid_side(&machine, 6.0, 1.0, n_procs, v);
        let n9 = min_grid_side(&machine, 12.0, 1.0, n_procs, v);
        println!("  {:<22} 5-point: n ≥ {:>6.0}   9-point: n ≥ {:>6.0}", v.label(), n5, n9);
    }

    // What would an upgrade buy at the optimum?
    let w = Workload::new(1024, &Stencil::five_point(), PartitionShape::Square);
    let faster_bus = parspeed::model::leverage::bus_speedup(
        &machine, &w, ProcessorBudget::Limited(n_procs), 2.0);
    let faster_fp = parspeed::model::leverage::flop_speedup(
        &machine, &w, ProcessorBudget::Limited(n_procs), 2.0);
    println!("\nUpgrades at n = 1024 (squares): bus×2 → {:.0}% of cycle, flop×2 → {:.0}%",
        100.0 * faster_bus.factor(), 100.0 * faster_fp.factor());
    println!("Communication speed is the better lever (paper §6.1).");
}
