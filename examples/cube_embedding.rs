//! The §4 mapping sentence, made executable: Gray-code embeddings put
//! logically adjacent partitions on physically adjacent hypercube nodes.
//!
//! ```sh
//! cargo run --example cube_embedding
//! ```

use parspeed::arch::{gray, HypercubeEmbedding, IterationSpec, NeighborExchangeSim};
use parspeed::grid::{RectDecomposition, StripDecomposition};
use parspeed::prelude::*;

fn main() {
    // The Gray code itself: consecutive ranks differ in exactly one bit.
    println!("Binary reflected Gray code (3 bits):");
    for i in 0..8u64 {
        println!("  strip {i} → node {:03b}", gray(i));
    }

    // Dilation of three placements for a 12-strip chain (not a power of
    // two — the case [7]'s authors dodged by switching to strips).
    let machine = MachineParams::paper_defaults();
    let n = 240usize;
    let p = 12usize;
    let d = StripDecomposition::new(n, p);
    let spec = IterationSpec::new(&d, &Stencil::five_point());
    let sim = NeighborExchangeSim::hypercube(&machine);

    println!("\n{p} strips of a {n}×{n} grid on a 16-node cube:");
    println!("{:>14}  {:>8}  {:>9}  {:>12}", "placement", "dilation", "mean hops", "cycle time");
    for (name, emb) in [
        ("gray chain", HypercubeEmbedding::strip_chain(p)),
        ("binary order", HypercubeEmbedding::identity(p)),
        ("random", HypercubeEmbedding::random(p, 7)),
    ] {
        let r = sim.simulate_embedded(&spec, &emb);
        println!(
            "{name:>14}  {:>8}  {:>9.2}  {:>9.3} ms",
            emb.dilation(&spec),
            emb.mean_hops(&spec),
            r.cycle_time * 1e3
        );
    }

    // The parenthetical: diagonal stencils cannot be dilation-1.
    let blocks = RectDecomposition::new(n, 4, 4);
    let emb = HypercubeEmbedding::grid(4, 4);
    let five = IterationSpec::new(&blocks, &Stencil::five_point());
    let box9 = IterationSpec::new(&blocks, &Stencil::nine_point_box());
    println!("\n4×4 blocks under Gray×Gray embedding:");
    println!("  5-point   (axis only): dilation {}", emb.dilation(&five));
    println!("  9-point box (corners): dilation {}", emb.dilation(&box9));
    println!("\n\"…logically adjacent partitions are mapped onto physically adjacent");
    println!("processors (at least with stencils having no diagonals)\" — §4, verified.");
}
