//! Tour of the four architecture classes: optimal speedup as the problem
//! grows, with the machine allowed to grow alongside it — the paper's
//! Table I, live.
//!
//! ```sh
//! cargo run --example architecture_tour
//! ```

use parspeed::model::table1;
use parspeed::prelude::*;

fn main() {
    let machine = MachineParams::paper_defaults();
    let stencil = Stencil::five_point();

    println!("Optimal speedup by architecture ({} stencil, square partitions)\n", stencil.name());
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>14}",
        "n", "hypercube", "sync bus", "async bus", "banyan"
    );
    for n in [128usize, 256, 512, 1024, 2048, 4096] {
        let w = Workload::new(n, &stencil, PartitionShape::Square);
        println!(
            "{:>6} {:>14.0} {:>14.1} {:>14.1} {:>14.0}",
            n,
            table1::hypercube_speedup(&machine, &w),
            table1::sync_bus_speedup(&machine, &w),
            table1::async_bus_speedup(&machine, &w),
            table1::switching_speedup(&machine, &w),
        );
    }

    println!("\nScaling exponents (d log speedup / d log n²):");
    let sides = vec![256usize, 512, 1024, 2048, 4096];
    let w = Workload::new(2, &stencil, PartitionShape::Square);
    for (name, f) in [
        ("hypercube", table1::hypercube_speedup as fn(&MachineParams, &Workload) -> f64),
        ("sync bus", table1::sync_bus_speedup),
        ("async bus", table1::async_bus_speedup),
        ("banyan", table1::switching_speedup),
    ] {
        let e = table1::fit_scaling_exponent(&sides, |n| f(&machine, &w.scaled_to(n)));
        println!("  {name:<10} {e:.3}");
    }
    println!("\nPaper: hypercube Θ(n²); banyan Θ(n²/log n); buses Θ((n²)^⅓) —");
    println!("\"bus networks are unsuited for large numerical problems\".");
}
