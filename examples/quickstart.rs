//! Quickstart: ask the model how many processors a problem deserves.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use parspeed::prelude::*;

fn main() {
    // The paper's calibrated machine constants (DESIGN.md §3).
    let machine = MachineParams::paper_defaults();

    // A 256×256 Poisson grid, 5-point stencil, square partitions.
    let stencil = Stencil::five_point();
    let workload = Workload::new(256, &stencil, PartitionShape::Square);

    println!("Problem: {}×{} grid, {} stencil, square partitions\n", 256, 256, stencil.name());

    // On a synchronous shared bus with no processor limit, the optimum is
    // *interior*: more processors would slow the solve down.
    let bus = SyncBus::new(&machine);
    let opt = bus.optimize(&workload, ProcessorBudget::Unlimited);
    println!("Synchronous bus, unlimited processors:");
    println!("  optimal processors : {}", opt.processors);
    println!("  partition area     : {:.0} points", opt.area);
    println!("  cycle time         : {:.3} ms", opt.cycle_time * 1e3);
    println!(
        "  speedup            : {:.1}×  (efficiency {:.0}%)",
        opt.speedup,
        100.0 * opt.efficiency
    );

    // On a hypercube the optimum is extremal — use everything you have.
    let cube = Hypercube::new(&machine);
    let opt = cube.optimize(&workload, ProcessorBudget::Limited(64));
    println!("\nHypercube, 64 processors available:");
    println!("  optimal processors : {} (used_all = {})", opt.processors, opt.used_all);
    println!("  speedup            : {:.1}×", opt.speedup);

    // How big must the grid be before a 16-processor bus is worth filling?
    let n_min = parspeed::model::minsize::min_grid_side(
        &machine,
        workload.e_flops,
        workload.k as f64,
        16,
        parspeed::model::minsize::BusVariant::SyncSquare,
    );
    println!("\nSmallest grid that gainfully uses all 16 bus processors: n ≈ {n_min:.0}");
}
