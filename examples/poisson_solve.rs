//! Solve a real Poisson problem in parallel and compare against the
//! analytic solution — the full numerical stack under the model.
//!
//! ```sh
//! cargo run --release --example poisson_solve
//! ```

use parspeed::exec::{CheckPolicy, PartitionedJacobi};
use parspeed::prelude::*;
use parspeed::solver::{norms, CgSolver, Manufactured, RedBlackSolver};
use std::time::Instant;

fn main() {
    let n = 96;
    let problem = PoissonProblem::manufactured(n, Manufactured::SinSin);
    let stencil = Stencil::five_point();
    let exact = problem.exact_solution().expect("manufactured problem");

    println!("-∇²u = 2π²·sin(πx)·sin(πy) on a {n}×{n} grid, u = sin·sin exact\n");

    // Partitioned parallel Jacobi: 8 strips, geometric convergence checks.
    let decomp = StripDecomposition::new(n, 8);
    let mut exec = PartitionedJacobi::new(&problem, &stencil, &decomp);
    let t0 = Instant::now();
    let run = exec.solve(1e-9, 400_000, CheckPolicy::geometric());
    let wall = t0.elapsed();
    let u = exec.solution();
    let err = u.max_abs_diff(&exact);
    println!("partitioned Jacobi (8 strips):");
    println!(
        "  converged  : {} in {} iterations ({} checks)",
        run.converged, run.iterations, run.checks
    );
    println!("  wall time  : {wall:.2?}");
    println!("  max error  : {err:.3e} (discretization-limited)");

    // Sequential reference — must agree bit for bit on the iterate path,
    // and to the same limit here.
    let (u_seq, st) = JacobiSolver::with_tol(1e-9).solve(&problem, &stencil);
    println!(
        "\nsequential Jacobi: {} iterations, max |par − seq| = {:.1e}",
        st.iterations,
        u.max_abs_diff(&u_seq)
    );

    // Faster solvers on the same problem.
    let (u_rb, st_rb) = RedBlackSolver::optimal(n, 1e-9).solve(&problem);
    println!(
        "red-black SOR   : {} iterations, error {:.3e}",
        st_rb.iterations,
        u_rb.max_abs_diff(&exact)
    );
    let (u_cg, st_cg, stats) = CgSolver::default().solve(&problem);
    println!(
        "conjugate grad. : {} iterations ({} global reductions), error {:.3e}",
        st_cg.iterations,
        stats.global_reductions,
        u_cg.max_abs_diff(&exact)
    );

    println!(
        "\nresidual L∞ of the parallel solution: {:.3e}",
        parspeed::solver::apply::residual_max(
            &stencil,
            &u_seq,
            problem.forcing(),
            problem.h() * problem.h()
        )
    );
    println!("L2 of exact solution (sanity): {:.4}", norms::l2(&exact));
}
