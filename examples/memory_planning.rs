//! Processor allocation under per-processor memory limits (§3/§4).
//!
//! ```sh
//! cargo run --example memory_planning
//! ```
//!
//! The paper's §4 observation: when the whole grid would ideally sit on
//! one processor (or a few), memory can forbid it — the allocation is then
//! forced to spread. This example plans a 512×512 solve on machines with
//! shrinking per-node memories and shows the optimizer negotiating the
//! floor, until the problem stops fitting altogether.

use parspeed::model::optimize_constrained;
use parspeed::prelude::*;

fn main() {
    let machine = MachineParams::paper_defaults();
    let bus = SyncBus::new(&machine);
    let w = Workload::new(512, &Stencil::five_point(), PartitionShape::Square);
    let budget = ProcessorBudget::Limited(64);

    let free = bus.optimize(&w, budget);
    println!("512×512 on a 64-processor synchronous bus, unconstrained:");
    println!("  optimal processors: {} (speedup {:.1})\n", free.processors, free.speedup);

    println!("{:>16}  {:>10}  {:>9}  {:>12}", "words/processor", "processors", "speedup", "note");
    for words in [2_000_000.0, 200_000.0, 50_000.0, 20_000.0, 9_000.0, 2_000.0] {
        match optimize_constrained(&bus, &w, budget, Some(MemoryBudget::words(words))) {
            Ok(opt) => {
                let forced = opt.processors > free.processors;
                println!(
                    "{words:>16.0}  {:>10}  {:>9.1}  {:>12}",
                    opt.processors,
                    opt.speedup,
                    if forced { "memory-forced" } else { "unconstrained" }
                );
            }
            Err(e) => {
                println!("{words:>16.0}  {:>10}  {:>9}  {:>12}", "—", "—", "does not fit");
                println!("\n{e}");
                break;
            }
        }
    }

    println!("\nThe floor only binds once a partition (two buffered copies, halo,");
    println!("forcing) overflows a node; past the machine's processor count there");
    println!("is nothing left to spread to and the plan is infeasible — buy more");
    println!("memory or more processors.");
}
