//! The paper's §8 future work, carried out: can "clever scheduling to
//! access communication resources" blunt bus contention?
//!
//! ```sh
//! cargo run --example scheduling_study
//! ```
//!
//! Three machines race on the same problem: the unscheduled synchronous
//! bus (§6.1), the same bus driven by a batch-staggering slot schedule
//! (our §8 construction), and the asynchronous posted-write machine
//! (§6.2). The schedule recovers the async hardware's entire constant
//! factor — and none of them escape the Θ((n²)^⅓) exponent.

use parspeed::arch::{AsyncBusSim, IterationSpec, ScheduledBusSim, SyncBusSim};
use parspeed::grid::StripDecomposition;
use parspeed::prelude::*;

fn main() {
    let machine = MachineParams::paper_defaults();
    let sync = SyncBus::new(&machine);
    let sched = ScheduledBus::new(&machine);
    let async_ = AsyncBus::new(&machine);

    println!("Optimal cycle times, strips, processors unbounded (c = 0):\n");
    println!(
        "{:>6}  {:>12}  {:>12}  {:>12}  {:>10}",
        "n", "sync", "scheduled", "async", "sync/sched"
    );
    for n in [256usize, 512, 1024, 2048, 4096] {
        let w = Workload::new(n, &Stencil::five_point(), PartitionShape::Strip);
        let t_sync = sync.optimal_cycle_unbounded(&w);
        let a = sched.closed_form_optimal_area(&w).expect("scheduled optimum");
        let t_sched = sched.cycle_time(&w, a);
        let t_async = async_.cycle_time(&w, async_.optimal_area(&w));
        println!(
            "{n:>6}  {:>10.2} ms  {:>10.2} ms  {:>10.2} ms  {:>10.4}",
            t_sync * 1e3,
            t_sched * 1e3,
            t_async * 1e3,
            t_sync / t_sched
        );
    }
    println!("\nThe gain approaches √2 ≈ 1.4142 — exactly the asynchronous bus's");
    println!("advantage (§6.2), bought with a slot table instead of hardware.\n");

    // Event-level confirmation on a real decomposition.
    let n = 256usize;
    println!("Event-level simulation, n={n}, 5-point strips:\n");
    println!("{:>4}  {:>14}  {:>14}  {:>14}", "P", "sync (PS)", "staggered", "async hw");
    for p in [8usize, 16, 32, 64] {
        let d = StripDecomposition::new(n, p);
        let spec = IterationSpec::new(&d, &Stencil::five_point());
        let t_ps = SyncBusSim::new(&machine).simulate(&spec).cycle_time;
        let t_st = ScheduledBusSim::new(&machine).simulate(&spec).cycle_time;
        let t_as = AsyncBusSim::new(&machine).simulate(&spec).cycle_time;
        println!(
            "{p:>4}  {:>11.3} ms  {:>11.3} ms  {:>11.3} ms",
            t_ps * 1e3,
            t_st * 1e3,
            t_as * 1e3
        );
    }
    println!("\nScheduling removes idle waiting, not bus work: total contention is");
    println!("conserved, so Table I's exponents stand. The paper's conjecture was");
    println!("right — and this is exactly how much it was worth.");
}
