//! Watch one iteration run on each simulated machine, next to the closed
//! form that abstracts it.
//!
//! ```sh
//! cargo run --example simulate_iteration
//! ```

use parspeed::arch::{
    AsyncBusSim, BanyanSim, IterationSpec, ModuleAssignment, NeighborExchangeSim, SyncBusSim,
};
use parspeed::model::{ArchModel, AsyncBus, Banyan, Hypercube, SyncBus};
use parspeed::prelude::*;

fn main() {
    let m = MachineParams::paper_defaults();
    let n = 128usize;
    let p = 16usize;
    let stencil = Stencil::five_point();

    let strips = StripDecomposition::new(n, p);
    let rect = RectDecomposition::new(n, 4, 4);
    let w_strip = Workload::new(n, &stencil, PartitionShape::Strip);
    let w_square = Workload::new(n, &stencil, PartitionShape::Square);
    let area = w_strip.points() / p as f64;

    println!("One Jacobi iteration, n = {n}, P = {p}\n");
    println!("{:<22} {:>12} {:>12} {:>10}", "machine", "model (µs)", "sim (µs)", "dev.");

    let spec_s = IterationSpec::new(&strips, &stencil);
    let spec_q = IterationSpec::new(&rect, &stencil);
    let us = 1e6;

    let rows: Vec<(&str, f64, f64)> = vec![
        (
            "hypercube / strips",
            Hypercube::new(&m).cycle_time(&w_strip, area),
            NeighborExchangeSim::hypercube(&m).simulate(&spec_s).cycle_time,
        ),
        (
            "hypercube / squares",
            Hypercube::new(&m).cycle_time(&w_square, area),
            NeighborExchangeSim::hypercube(&m).simulate(&spec_q).cycle_time,
        ),
        (
            "sync bus / strips",
            SyncBus::new(&m).cycle_time(&w_strip, area),
            SyncBusSim::new(&m).simulate(&spec_s).cycle_time,
        ),
        (
            "async bus / strips",
            AsyncBus::new(&m).cycle_time(&w_strip, area),
            AsyncBusSim::new(&m).simulate(&spec_s).cycle_time,
        ),
        (
            "banyan / strips",
            Banyan::new(&m).cycle_time(&w_strip, area),
            BanyanSim::new(&m).simulate(&spec_s).cycle.cycle_time,
        ),
    ];
    for (name, model, sim) in rows {
        println!(
            "{:<22} {:>12.1} {:>12.1} {:>9.1}%",
            name,
            model * us,
            sim * us,
            100.0 * (sim - model).abs() / model
        );
    }

    // The banyan contention certificate.
    let good = BanyanSim::new(&m).simulate(&spec_s);
    let bad = BanyanSim::new(&m).with_assignment(ModuleAssignment::Adversarial).simulate(&spec_s);
    println!(
        "\nbanyan switch waiting: dedicated modules {:.1} µs, adversarial {:.1} µs",
        good.contention_wait * us,
        bad.contention_wait * us
    );
    println!("(zero waiting certifies the paper's §7 conflict-free assumption)");
    println!(
        "\nDeviations are the model's documented idealizations: domain-edge\n\
         partitions move less data than the all-interior closed forms charge."
    );
}
