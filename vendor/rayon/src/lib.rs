//! A minimal, dependency-free stand-in for [rayon](https://docs.rs/rayon)
//! exposing exactly the subset of its API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim instead of the real crate. It is *not* a toy that
//! falls back to sequential execution: parallel pipelines fan work out
//! across OS threads (`std::thread::scope`), honouring the thread count of
//! the innermost [`ThreadPool::install`] scope, so thread-scaling
//! measurements remain meaningful. The execution model is simpler than
//! rayon's work stealing — each terminal operation splits its items into
//! contiguous slabs, one per worker — which is well suited to the regular,
//! balanced loops this workspace runs.
//!
//! Supported surface:
//!
//! * [`prelude`] — `par_iter`, `par_iter_mut`, `par_chunks`,
//!   `par_chunks_mut`, `into_par_iter` on slices and vectors;
//! * adapters `map`, `enumerate`, `skip`, `take`, `zip`; terminals
//!   `reduce`, `sum`, `for_each`, `collect`;
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] with per-scope thread
//!   counts;
//! * [`current_num_threads`].
//!
//! Semantics match rayon where it matters for this workspace: item order is
//! preserved by `collect`, `map` is applied in worker threads, and
//! `reduce` combines per-item results with a caller-supplied associative
//! operator (the workspace only uses order-insensitive operators such as
//! `f64::max` and `+`).

#![forbid(unsafe_code)]

use std::cell::Cell;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`]; 0 means
    /// "use the machine default".
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// The number of worker threads parallel operations currently target.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(|t| t.get());
    if installed > 0 {
        installed
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// Builder for a [`ThreadPool`] with a fixed thread count.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type returned by [`ThreadPoolBuilder::build`] (infallible here,
/// kept for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Starts a builder with the machine-default thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker thread count (0 = machine default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Never fails in this shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: self.num_threads })
    }
}

/// A logical thread pool: parallel operations run inside
/// [`ThreadPool::install`] target this pool's thread count. Threads are
/// spawned per terminal operation (scoped), not kept resident.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count governing any parallel
    /// operations it performs.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = INSTALLED_THREADS.with(|t| t.replace(self.num_threads));
        let out = op();
        INSTALLED_THREADS.with(|t| t.set(prev));
        out
    }

    /// The pool's configured thread count (0 = machine default).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        }
    }
}

/// Applies `f` to every item on a scoped worker fleet, preserving order.
fn parallel_map<T: Send, U: Send>(items: Vec<T>, f: impl Fn(T) -> U + Sync) -> Vec<U> {
    let workers = current_num_threads().max(1);
    let len = items.len();
    if workers <= 1 || len <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slab = len.div_ceil(workers);
    let mut slabs: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut rest = items;
    while rest.len() > slab {
        let tail = rest.split_off(slab);
        slabs.push(std::mem::replace(&mut rest, tail));
    }
    if !rest.is_empty() {
        slabs.push(rest);
    }
    let f = &f;
    let mut out: Vec<U> = Vec::with_capacity(len);
    std::thread::scope(|scope| {
        let handles: Vec<_> = slabs
            .into_iter()
            .map(|slab| scope.spawn(move || slab.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("parallel worker panicked"));
        }
    });
    out
}

/// A parallel pipeline. The one required method, [`drive`](Self::drive),
/// evaluates all pending stages (in worker threads where a `map` is
/// pending) and returns the items in order.
pub trait ParallelIterator: Sized {
    /// The item type this pipeline yields.
    type Item: Send;

    /// Evaluates the pipeline and returns all items in order.
    fn drive(self) -> Vec<Self::Item>;

    /// Maps every item through `f` (applied in worker threads).
    fn map<U: Send, F: Fn(Self::Item) -> U + Sync>(self, f: F) -> Map<Self, F> {
        Map { base: self, f }
    }

    /// Pairs this pipeline's items with `other`'s, element by element.
    fn zip<Q: ParallelIterator>(self, other: Q) -> Par<(Self::Item, Q::Item)> {
        let a = self.drive();
        let b = other.drive();
        Par { items: a.into_iter().zip(b).collect() }
    }

    /// Combines all items with `op`, starting from `identity`.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item,
        OP: Fn(Self::Item, Self::Item) -> Self::Item,
    {
        self.drive().into_iter().fold(identity(), op)
    }

    /// Sums all items.
    fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
        self.drive().into_iter().sum()
    }

    /// Runs `f` on every item (in worker threads).
    fn for_each<F: Fn(Self::Item) + Sync>(self, f: F) {
        let _ = self.map(f).drive();
    }

    /// Collects all items, preserving input order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.drive().into_iter().collect()
    }
}

/// Marker refinement for pipelines with a known length and stable order
/// (every pipeline in this shim qualifies).
pub trait IndexedParallelIterator: ParallelIterator {}

/// A pipeline source holding already-realized items (slice chunks, item
/// references); producing these is cheap, the compute happens in `map`.
pub struct Par<T> {
    items: Vec<T>,
}

impl<T: Send> Par<T> {
    /// Skips the first `n` items.
    pub fn skip(mut self, n: usize) -> Par<T> {
        if n > 0 {
            self.items.drain(..n.min(self.items.len()));
        }
        self
    }

    /// Keeps only the first `n` items.
    pub fn take(mut self, n: usize) -> Par<T> {
        self.items.truncate(n);
        self
    }

    /// Pairs every item with its index.
    pub fn enumerate(self) -> Par<(usize, T)> {
        Par { items: self.items.into_iter().enumerate().collect() }
    }
}

impl<T: Send> ParallelIterator for Par<T> {
    type Item = T;

    fn drive(self) -> Vec<T> {
        self.items
    }
}

impl<T: Send> IndexedParallelIterator for Par<T> {}

/// A pending `map` stage over a base pipeline.
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, F, U> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    F: Fn(P::Item) -> U + Sync,
    U: Send,
{
    type Item = U;

    fn drive(self) -> Vec<U> {
        parallel_map(self.base.drive(), self.f)
    }
}

impl<P, F, U> IndexedParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    F: Fn(P::Item) -> U + Sync,
    U: Send,
{
}

/// `par_chunks` on slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel pipeline over `chunk_size`-sized sub-slices (last may be
    /// shorter).
    fn par_chunks(&self, chunk_size: usize) -> Par<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> Par<&[T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        Par { items: self.chunks(chunk_size).collect() }
    }
}

/// `par_chunks_mut` on slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel pipeline over mutable `chunk_size`-sized sub-slices.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<&mut [T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        Par { items: self.chunks_mut(chunk_size).collect() }
    }
}

/// `par_iter` on shared collections.
pub trait IntoParallelRefIterator<'a> {
    /// The reference item type.
    type Item: Send + 'a;
    /// Parallel pipeline over `&self`'s items.
    fn par_iter(&'a self) -> Par<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> Par<&'a T> {
        Par { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> Par<&'a T> {
        Par { items: self.iter().collect() }
    }
}

/// `par_iter_mut` on exclusive collections.
pub trait IntoParallelRefMutIterator<'a> {
    /// The mutable reference item type.
    type Item: Send + 'a;
    /// Parallel pipeline over `&mut self`'s items.
    fn par_iter_mut(&'a mut self) -> Par<Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> Par<&'a mut T> {
        Par { items: self.iter_mut().collect() }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> Par<&'a mut T> {
        Par { items: self.iter_mut().collect() }
    }
}

/// `into_par_iter` on owning collections.
pub trait IntoParallelIterator {
    /// The owned item type.
    type Item: Send;
    /// Consumes `self` into a parallel pipeline.
    fn into_par_iter(self) -> Par<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> Par<T> {
        Par { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> Par<usize> {
        Par { items: self.collect() }
    }
}

/// Glob-import of the traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        IndexedParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_runs_on_worker_threads() {
        let v: Vec<usize> = (0..64).collect();
        let main_id = std::thread::current().id();
        let ids: Vec<bool> = v.par_iter().map(|_| std::thread::current().id() != main_id).collect();
        if std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) > 1 {
            assert!(ids.iter().any(|&off_main| off_main), "no work left the main thread");
        }
    }

    #[test]
    fn chunks_mut_mutates_in_place() {
        let mut v = vec![1i64; 100];
        v.as_mut_slice().par_chunks_mut(7).enumerate().for_each(|(i, chunk)| {
            for x in chunk {
                *x = i as i64;
            }
        });
        assert_eq!(v[0], 0);
        assert_eq!(v[99], 14);
    }

    #[test]
    fn reduce_and_sum_agree_with_sequential() {
        let v: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        let s: f64 = v.par_iter().map(|&x| x).sum();
        assert_eq!(s, 5050.0);
        let m = v.par_iter().map(|&x| x).reduce(|| 0.0, f64::max);
        assert_eq!(m, 100.0);
    }

    #[test]
    fn skip_take_zip() {
        let a = vec![1, 2, 3, 4, 5];
        let b = vec![10, 20, 30];
        let pairs: Vec<(i32, i32)> = a
            .as_slice()
            .par_chunks(1)
            .skip(1)
            .take(3)
            .map(|c| c[0])
            .zip(b.into_par_iter())
            .map(|p| p)
            .collect();
        assert_eq!(pairs, vec![(2, 10), (3, 20), (4, 30)]);
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        let nested = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| assert_eq!(nested.install(current_num_threads), 2));
    }
}
