//! A minimal, dependency-free stand-in for
//! [criterion](https://docs.rs/criterion) exposing the subset of its API
//! this workspace uses (the build environment has no access to crates.io).
//!
//! Measurement model: each benchmark closure is warmed up for
//! `warm_up_time`, then timed over batches until `measurement_time`
//! elapses or `sample_size` batches complete, whichever comes first. The
//! reported statistic is the minimum per-iteration time across batches
//! (the standard noise-resistant estimator); mean and max are printed
//! beside it. There are no HTML reports, statistical regressions, or
//! saved baselines.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self { id: format!("{function}/{parameter}") }
    }

    /// Builds from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The timing loop handed to benchmark closures.
pub struct Bencher<'a> {
    cfg: &'a Config,
    /// Best observed per-iteration seconds, captured by the harness.
    best: f64,
    mean: f64,
    batches: u64,
}

impl Bencher<'_> {
    /// Times `routine` under the configured warm-up/measurement schedule.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: run until the warm-up budget elapses, growing the batch
        // size geometrically to find one that is measurable (≥ ~100 µs).
        let mut batch: u64 = 1;
        let warm_until = Instant::now() + self.cfg.warm_up_time;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt < Duration::from_micros(100) {
                batch = batch.saturating_mul(2);
            }
            if Instant::now() >= warm_until {
                break;
            }
        }
        // Measurement.
        let mut best = f64::INFINITY;
        let mut total = 0.0f64;
        let mut iters = 0u64;
        let mut batches = 0u64;
        let stop_at = Instant::now() + self.cfg.measurement_time;
        while batches < self.cfg.sample_size as u64 && Instant::now() < stop_at {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed().as_secs_f64();
            best = best.min(dt / batch as f64);
            total += dt;
            iters += batch;
            batches += 1;
        }
        if batches == 0 {
            // Budget exhausted during warm-up: take one measured batch so a
            // result is always reported.
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed().as_secs_f64();
            best = dt / batch as f64;
            total = dt;
            iters = batch;
            batches = 1;
        }
        self.best = best;
        self.mean = total / iters as f64;
        self.batches = batches;
    }
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
            throughput: None,
        }
    }
}

fn fmt_secs(t: f64) -> String {
    if t >= 1.0 {
        format!("{t:.3} s")
    } else if t >= 1e-3 {
        format!("{:.3} ms", t * 1e3)
    } else if t >= 1e-6 {
        format!("{:.3} µs", t * 1e6)
    } else {
        format!("{:.1} ns", t * 1e9)
    }
}

fn run_one(full_id: &str, cfg: &Config, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { cfg, best: f64::INFINITY, mean: 0.0, batches: 0 };
    f(&mut b);
    let mut line = format!(
        "{full_id:<48} best {:>12}  mean {:>12}  ({} samples)",
        fmt_secs(b.best),
        fmt_secs(b.mean),
        b.batches
    );
    if let Some(tp) = cfg.throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        if b.best > 0.0 {
            line.push_str(&format!("  {:.3e} {unit}/s", count as f64 / b.best));
        }
    }
    println!("{line}");
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    cfg: Config,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured batches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n.max(1);
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Sets the warm-up budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.warm_up_time = d;
        self
    }

    /// Declares the work per iteration for throughput reporting.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.cfg.throughput = Some(tp);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, &self.cfg, &mut f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, &self.cfg, &mut |b| f(b, input));
        self
    }

    /// Ends the group (printing is incremental; nothing else to do).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    cfg: Config,
}

impl Criterion {
    /// Runs a single stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&id.into().to_string(), &self.cfg, &mut f);
        self
    }

    /// Opens a named group with its own measurement settings.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let cfg = self.cfg.clone();
        BenchmarkGroup { name: name.into(), cfg, _criterion: self }
    }
}

/// Declares a group function running each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_positive_times() {
        let cfg = Config {
            sample_size: 3,
            measurement_time: Duration::from_millis(30),
            warm_up_time: Duration::from_millis(5),
            throughput: None,
        };
        let mut b = Bencher { cfg: &cfg, best: f64::INFINITY, mean: 0.0, batches: 0 };
        b.iter(|| std::hint::black_box(3u64.pow(7)));
        assert!(b.best.is_finite() && b.best > 0.0);
        assert!(b.mean >= 0.0);
        assert!(b.batches >= 1);
    }

    #[test]
    fn ids_compose() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn group_runs_to_completion() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2))
            .throughput(Throughput::Elements(10));
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
