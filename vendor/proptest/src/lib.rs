//! A minimal, dependency-free stand-in for
//! [proptest](https://docs.rs/proptest) exposing the subset of its API this
//! workspace uses (the build environment has no access to crates.io).
//!
//! Differences from the real crate, by design:
//!
//! * cases are drawn from a deterministic per-test RNG (seeded from the
//!   test name), so every run replays the identical case list — there is
//!   no persistence file and no `PROPTEST_CASES` environment variable;
//! * there is no shrinking: a failing case reports its index and values
//!   via the assertion message only;
//! * the strategy combinators are limited to what the workspace uses:
//!   numeric ranges, tuples, `prop::collection::vec`, and `prop_map`.
//!
//! The macro surface (`proptest!`, `prop_assert!`, `prop_assert_eq!`) is
//! source-compatible with the real crate for the tests in this repository.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Range;

/// A failed property case (carried by `prop_assert!` early returns).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Deterministic test RNG (xorshift64*), seeded from the test name.
pub mod test_runner {
    /// The per-test random number generator.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds deterministically from an arbitrary tag (the test name).
        pub fn deterministic(tag: &str) -> Self {
            // FNV-1a over the tag, never zero.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in tag.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Self { state: h | 1 }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            // xorshift64* (Vigna): passes the statistical tests that matter
            // for drawing test cases.
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer draw in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty range");
            // Multiply-shift bounded draw; the bias is far below anything a
            // test-case sampler can observe.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

use test_runner::TestRng;

/// A value generator. The single required method draws one value from the
/// deterministic RNG.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { base: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct MapStrategy<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for MapStrategy<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:ident),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($n,)+) = self;
                ($($n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// The `prop::` namespace (only `collection::vec` is provided).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Anything usable as a vector-length specification.
        pub trait IntoSizeRange {
            /// Lower (inclusive) and upper (exclusive) length bounds.
            fn bounds(&self) -> (usize, usize);
        }

        impl IntoSizeRange for Range<usize> {
            fn bounds(&self) -> (usize, usize) {
                (self.start, self.end)
            }
        }

        impl IntoSizeRange for usize {
            fn bounds(&self) -> (usize, usize) {
                (*self, *self + 1)
            }
        }

        /// The strategy returned by [`vec()`](vec()).
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            elem: S,
            min: usize,
            max: usize,
        }

        /// Generates vectors whose length is drawn from `size` and whose
        /// elements are drawn from `elem`.
        pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
            let (min, max) = size.bounds();
            assert!(min < max, "empty size range");
            VecStrategy { elem, min, max }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.max - self.min) as u64;
                let len = self.min + rng.below(span.max(1)) as usize;
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }
}

/// Number of cases each property runs (the real crate defaults to 256;
/// 64 keeps the suite fast while exercising the space).
pub const CASES: u32 = 64;

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// expands to a `#[test]` that replays [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    () => {};
    ($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..$crate::CASES {
                let ($($arg,)*) = ($( $crate::Strategy::generate(&($strat), &mut rng), )*);
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!("property `{}` failed at case {}/{}: {}",
                        stringify!($name), case + 1, $crate::CASES, e);
                }
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Asserts a condition inside `proptest!`, failing the case (not the
/// process) so the harness can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Equality assertion inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a), stringify!($b), lhs, rhs,
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
                stringify!($a), stringify!($b), lhs, rhs, format!($($fmt)+),
            )));
        }
    }};
}

/// Glob-import mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest, Strategy, TestCaseError};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_tag() {
        let mut a = crate::test_runner::TestRng::deterministic("tag");
        let mut b = crate::test_runner::TestRng::deterministic("tag");
        let mut c = crate::test_runner::TestRng::deterministic("other");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = crate::Strategy::generate(&(0.5f64..2.5), &mut rng);
            assert!((0.5..2.5).contains(&f));
        }
    }

    proptest! {
        fn vec_lengths_in_range(v in prop::collection::vec(0.0f64..1.0, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            for x in &v {
                prop_assert!((0.0..1.0).contains(x), "out of range: {x}");
            }
        }

        fn tuples_and_map_compose(
            pair in (1usize..10, 0.0f64..1.0),
            scaled in (1u32..5).prop_map(|x| x * 100),
        ) {
            prop_assert!(pair.0 >= 1 && pair.0 < 10);
            prop_assert!((100..500).contains(&scaled));
            prop_assert_eq!(scaled % 100, 0);
        }
    }
}
