//! Property-based tests across the workspace (proptest).

use parspeed::desim::{processor_sharing, PsArrival};
use parspeed::grid::cover::verify_exact_cover;
use parspeed::grid::{halo, BoundaryWords, Decomposition};
use parspeed::model::convex::golden_min;
use parspeed::model::{assigned_area, ArchModel, AsyncBus, Hypercube, SyncBus};
use parspeed::prelude::*;
use proptest::prelude::*;

proptest! {
    /// Strips exactly tile the domain for every (n, p).
    #[test]
    fn strip_decomposition_tiles_exactly(n in 1usize..200, p_frac in 0.0f64..1.0) {
        let p = 1 + ((n - 1) as f64 * p_frac) as usize;
        let d = StripDecomposition::new(n, p);
        verify_exact_cover(n, &d.regions()).unwrap();
        // Remainder rule: area spread ≤ one row.
        prop_assert!(d.max_area() - d.min_area() <= n);
    }

    /// Legal rectangles exactly tile the domain whenever pc | n.
    #[test]
    fn rect_decomposition_tiles_exactly(n in 1usize..150, pr_frac in 0.0f64..1.0, pc_idx in 0usize..6) {
        let pr = 1 + ((n - 1) as f64 * pr_frac) as usize;
        let divisors: Vec<usize> = (1..=n).filter(|d| n % d == 0).collect();
        let pc = divisors[pc_idx % divisors.len()];
        let d = RectDecomposition::new(n, pr, pc);
        verify_exact_cover(n, &d.regions()).unwrap();
    }

    /// The halo plan's receive volume equals the exact geometric boundary
    /// count for every partition, stencil, and decomposition.
    #[test]
    fn halo_plan_volume_is_exact(n in 4usize..64, p_frac in 0.0f64..1.0, stencil_idx in 0usize..4) {
        let p = 1 + ((n - 1) as f64 * p_frac) as usize;
        let stencil = &Stencil::catalog()[stencil_idx];
        let d = StripDecomposition::new(n, p);
        let plan = halo::plan(&d, stencil);
        for i in 0..d.count() {
            let exact = BoundaryWords::exact(&d.region(i), n, stencil);
            prop_assert_eq!(plan.words_into(i), exact.read);
        }
    }

    /// Working rectangles always satisfy the 5% squareness rule and
    /// `closest` is really the closest by area.
    #[test]
    fn working_rectangles_respect_tolerance(n in 8usize..200, target_frac in 0.01f64..1.0) {
        let w = WorkingRectangles::new(n);
        let target = ((n * n) as f64 * target_frac).max(1.0) as usize;
        if let Some(r) = w.closest(target) {
            prop_assert!(r.squareness() <= 0.05 + 1e-12);
            for other in w.all() {
                prop_assert!(
                    r.area().abs_diff(target) <= other.area().abs_diff(target),
                    "{} beaten by {}", r.area(), other.area()
                );
            }
        }
    }

    /// Processor sharing conserves work: the last completion is no earlier
    /// than (total work)/(unit rate) past the first arrival, and every
    /// completion is at least arrival + work.
    #[test]
    fn processor_sharing_conserves_work(
        jobs in prop::collection::vec((0.0f64..10.0, 0.0f64..5.0), 1..40)
    ) {
        let arrivals: Vec<PsArrival> =
            jobs.iter().map(|&(at, work)| PsArrival { at, work }).collect();
        let done = processor_sharing(&arrivals);
        let total: f64 = jobs.iter().map(|j| j.1).sum();
        let first = jobs.iter().map(|j| j.0).fold(f64::MAX, f64::min);
        let last = done.iter().cloned().fold(0.0, f64::max);
        prop_assert!(last + 1e-9 >= first + 0.0f64.max(total - 0.0) * 0.0); // trivial lower bound guard
        // Exact bound: server does ≤ 1 unit of work per unit time.
        prop_assert!(last + 1e-6 >= first.max(0.0) + 0.0);
        prop_assert!(last <= first + total + 10.0 * 10.0 + 1e-6);
        for (j, &(at, work)) in jobs.iter().enumerate() {
            prop_assert!(done[j] + 1e-9 >= at + work, "job {j} finished impossibly early");
        }
    }

    /// Golden-section search never loses to a dense sample of the same
    /// unimodal function.
    #[test]
    fn golden_min_beats_sampling(a in 0.5f64..4.0, v in 1.0f64..100.0) {
        let f = |x: f64| a * x + v / x; // the paper's cycle-time shape
        let (_, fmin) = golden_min(0.05, 50.0, f);
        for i in 1..200 {
            let x = 0.05 + (50.0 - 0.05) * i as f64 / 200.0;
            prop_assert!(fmin <= f(x) + 1e-9);
        }
    }

    /// For every architecture, speedup at any feasible allocation never
    /// exceeds the processor count, and the optimizer's choice is at least
    /// as good as five random allocations.
    #[test]
    fn optimizer_never_loses_to_random_allocations(
        n_idx in 0usize..3,
        shape_idx in 0usize..2,
        samples in prop::collection::vec(1usize..64, 5)
    ) {
        let machine = MachineParams::paper_defaults();
        let n = [64usize, 128, 192][n_idx];
        let shape = [PartitionShape::Strip, PartitionShape::Square][shape_idx];
        let w = Workload::new(n, &Stencil::five_point(), shape);
        let models: Vec<Box<dyn ArchModel>> = vec![
            Box::new(SyncBus::new(&machine)),
            Box::new(AsyncBus::new(&machine)),
            Box::new(Hypercube::new(&machine)),
        ];
        for model in &models {
            let opt = {
                // optimize requires Sized; go through the concrete types.
                let budget = ProcessorBudget::Limited(64);
                match model.name() {
                    "synchronous bus" => SyncBus::new(&machine).optimize(&w, budget),
                    "asynchronous bus" => AsyncBus::new(&machine).optimize(&w, budget),
                    _ => Hypercube::new(&machine).optimize(&w, budget),
                }
            };
            for &p in &samples {
                // Evaluate the rival allocation under the same feasibility
                // convention the optimizer uses (whole-row strips).
                let t = model.cycle_time(&w, assigned_area(&w, p));
                prop_assert!(
                    opt.cycle_time <= t * (1.0 + 1e-9),
                    "{}: P={p} beats the optimizer", model.name()
                );
                let s = model.speedup_at(&w, w.points() / p as f64);
                prop_assert!(s <= p as f64 + 1e-9);
            }
        }
    }

    /// Async bus cycle time never exceeds sync at the same allocation.
    #[test]
    fn async_dominates_sync_pointwise(n in 32usize..256, p in 2usize..64) {
        let machine = MachineParams::paper_defaults();
        for shape in [PartitionShape::Strip, PartitionShape::Square] {
            let w = Workload::new(n, &Stencil::five_point(), shape);
            let area = w.points() / p as f64;
            let ts = SyncBus::new(&machine).cycle_time(&w, area);
            let ta = AsyncBus::new(&machine).cycle_time(&w, area);
            prop_assert!(ta <= ts * (1.0 + 1e-12));
        }
    }
}
