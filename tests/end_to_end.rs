//! Cross-crate integration: the analytic model, the event simulators, and
//! the real parallel executor must tell one consistent story.

use parspeed::arch::{IterationSpec, NeighborExchangeSim, SyncBusSim};
use parspeed::exec::{CheckPolicy, PartitionedJacobi};
use parspeed::model::{ArchModel, Hypercube, SyncBus};
use parspeed::prelude::*;
use parspeed::solver::Manufactured;

/// The executor must agree with the sequential solver bit-for-bit for
/// every decomposition shape and stencil, because Jacobi updates read only
/// previous-iteration values.
#[test]
fn executor_matches_sequential_for_all_shapes_and_stencils() {
    let n = 24usize;
    let problem = PoissonProblem::manufactured(n, Manufactured::SinSin);
    let stencils = [Stencil::five_point(), Stencil::nine_point_box(), Stencil::nine_point_star()];
    for stencil in &stencils {
        let seq = {
            let solver =
                parspeed::solver::JacobiSolver { tol: 0.0, max_iters: 30, ..Default::default() };
            solver.solve(&problem, stencil).0
        };
        let decomps: Vec<Box<dyn parspeed::grid::Decomposition>> = vec![
            Box::new(StripDecomposition::new(n, 3)),
            Box::new(StripDecomposition::new(n, 8)),
            Box::new(RectDecomposition::new(n, 2, 3)),
            Box::new(RectDecomposition::new(n, 4, 4)),
        ];
        for d in &decomps {
            let mut exec = PartitionedJacobi::new(&problem, stencil, d.as_ref());
            for _ in 0..30 {
                exec.iterate(false);
            }
            let par = exec.solution();
            assert_eq!(
                par.max_abs_diff(&seq),
                0.0,
                "{} with {} partitions drifted from sequential",
                stencil.name(),
                d.count()
            );
        }
    }
}

/// The model's optimal processor count must match the argmin of the
/// *simulated* cycle times on the synchronous bus.
#[test]
fn model_optimum_matches_simulated_optimum_on_the_bus() {
    let m = MachineParams::paper_defaults();
    let n = 96usize;
    let stencil = Stencil::five_point();
    let w = Workload::new(n, &stencil, PartitionShape::Strip);
    let cap = 48usize;

    let sim = SyncBusSim::new(&m);
    let mut best_p = 1;
    let mut best_t = f64::INFINITY;
    for p in 1..=cap {
        let d = StripDecomposition::new(n, p);
        let spec = IterationSpec::new(&d, &stencil);
        let t = sim.simulate(&spec).cycle_time;
        if t < best_t {
            best_t = t;
            best_p = p;
        }
    }
    let model_opt = SyncBus::new(&m).optimize(&w, ProcessorBudget::Limited(cap));
    let rel = (model_opt.processors as f64 - best_p as f64).abs() / best_p as f64;
    assert!(rel <= 0.35, "model says P = {}, simulation says P = {best_p}", model_opt.processors);
    // And the achieved times are close.
    assert!((model_opt.cycle_time - best_t).abs() / best_t < 0.35);
}

/// Hypercube monotonicity carries from the algebra to the event level.
#[test]
fn simulated_hypercube_cycle_decreases_with_processors() {
    let m = MachineParams::paper_defaults();
    let n = 128usize;
    let sim = NeighborExchangeSim::hypercube(&m);
    let mut prev = f64::INFINITY;
    for p in [2usize, 4, 8, 16, 32] {
        let d = StripDecomposition::new(n, p);
        let spec = IterationSpec::new(&d, &Stencil::five_point());
        let t = sim.simulate(&spec).cycle_time;
        assert!(t < prev, "cycle went up at P = {p}");
        prev = t;
    }
    // Consistent with the model's extremal-allocation conclusion.
    let w = Workload::new(n, &Stencil::five_point(), PartitionShape::Strip);
    let opt = Hypercube::new(&m).optimize(&w, ProcessorBudget::Limited(32));
    assert_eq!(opt.processors, 32);
}

/// A full solve through the whole stack: partitioned execution, scheduled
/// convergence checks, discretization-accurate answer.
#[test]
fn full_stack_poisson_solve() {
    let n = 48usize;
    let problem = PoissonProblem::manufactured(n, Manufactured::Bubble);
    let stencil = Stencil::five_point();
    let d = RectDecomposition::near_square(n, 4).unwrap();
    let mut exec = PartitionedJacobi::new(&problem, &stencil, &d);
    let run = exec.solve(1e-9, 300_000, CheckPolicy::geometric());
    assert!(run.converged, "no convergence in {} iterations", run.iterations);
    let err = exec.solution().max_abs_diff(&problem.exact_solution().unwrap());
    assert!(err < 2e-3, "error {err}");
    // Lazy checking really was lazy.
    assert!(run.checks * 10 < run.iterations);
}

/// The working-rectangle machinery plugs into the executor: take the
/// analytically optimal area, materialize the nearest working rectangle
/// decomposition, and solve on it.
#[test]
fn working_rectangle_decomposition_solves() {
    let m = MachineParams::paper_defaults();
    let n = 64usize;
    let stencil = Stencil::five_point();
    let w = Workload::new(n, &stencil, PartitionShape::Square);
    let bus = SyncBus::new(&m);
    let a_star = bus.closed_form_optimal_area(&w).unwrap();
    let rects = WorkingRectangles::new(n);
    let d = rects.decomposition_for(a_star.round() as usize).expect("working rectangle exists");
    let problem = PoissonProblem::manufactured(n, Manufactured::SinSin);
    let mut exec = PartitionedJacobi::new(&problem, &stencil, &d);
    let run = exec.solve(1e-8, 300_000, CheckPolicy::Every(16));
    assert!(run.converged);
    let err = exec.solution().max_abs_diff(&problem.exact_solution().unwrap());
    assert!(err < 5e-3, "error {err}");
}
