//! The paper's headline claims, asserted end to end against the public
//! API. Each test names the section it reproduces.

use parspeed::model::{
    fem::FemModel, table1, ArchModel, AsyncBus, Banyan, Hypercube, Mesh, SyncBus,
};
use parspeed::prelude::*;

fn m() -> MachineParams {
    MachineParams::paper_defaults()
}

/// §1/§8: the optimal-speedup hierarchy. Hypercubes/meshes scale linearly
/// in n², banyans lose a log, buses are stuck at the cube root.
#[test]
fn abstract_speedup_hierarchy() {
    let machine = m();
    let sides = vec![512usize, 1024, 2048, 4096];
    let w = Workload::new(2, &Stencil::five_point(), PartitionShape::Square);
    let exp = |f: &dyn Fn(usize) -> f64| table1::fit_scaling_exponent(&sides, f);
    let cube = exp(&|n| table1::hypercube_speedup(&machine, &w.scaled_to(n)));
    let ban = exp(&|n| table1::switching_speedup(&machine, &w.scaled_to(n)));
    let bus = exp(&|n| table1::sync_bus_speedup(&machine, &w.scaled_to(n)));
    assert!((cube - 1.0).abs() < 0.01, "hypercube exponent {cube}");
    assert!(ban > 0.85 && ban < 1.0, "banyan exponent {ban}");
    assert!((bus - 1.0 / 3.0).abs() < 0.01, "bus exponent {bus}");
}

/// §3: strips always call for fewer (or equal) processors than squares.
#[test]
fn strips_want_fewer_processors_than_squares() {
    let bus = SyncBus::new(&m());
    for n in [128usize, 256, 512, 1024] {
        let ws = Workload::new(n, &Stencil::five_point(), PartitionShape::Strip);
        let wq = Workload::new(n, &Stencil::five_point(), PartitionShape::Square);
        let ps = bus.optimize(&ws, ProcessorBudget::Unlimited).processors;
        let pq = bus.optimize(&wq, ProcessorBudget::Unlimited).processors;
        assert!(ps <= pq, "n={n}: strips {ps} > squares {pq}");
    }
}

/// §4/§5: nearest-neighbour machines allocate extremally; §5's
/// all-to-all CG machine has an interior optimum.
#[test]
fn extremal_versus_interior_allocation() {
    let machine = m();
    let w = Workload::new(512, &Stencil::five_point(), PartitionShape::Square);
    for model in [&Hypercube::new(&machine) as &dyn ArchModel, &Mesh::new(&machine)] {
        let mut best_p = 0;
        let mut best_t = f64::INFINITY;
        for p in 1..=256usize {
            let t = model.cycle_time(&w, w.points() / p as f64);
            if t < best_t {
                best_t = t;
                best_p = p;
            }
        }
        assert!(best_p == 1 || best_p == 256, "{}: interior optimum {best_p}", model.name());
    }
    let fem = FemModel::new(&machine);
    let p_star = fem.optimal_processors(512, 1 << 20);
    assert!(p_star > 1 && p_star < (1 << 20), "FEM optimum must be interior, got {p_star}");
    assert!(fem.is_non_monotone(512, 1 << 16));
}

/// §6.1: the 256×256 anchors — 14 processors for 5-point, 22 for 9-point.
#[test]
fn paper_anchor_processor_counts() {
    let bus = SyncBus::new(&m());
    let w5 = Workload::new(256, &Stencil::five_point(), PartitionShape::Square);
    let w9 = Workload::new(256, &Stencil::nine_point_box(), PartitionShape::Square);
    let p5 = bus.optimize(&w5, ProcessorBudget::Unlimited).processors;
    let p9 = bus.optimize(&w9, ProcessorBudget::Unlimited).processors;
    assert!((13..=15).contains(&p5), "5-point: {p5}");
    assert!((21..=23).contains(&p9), "9-point: {p9}");
}

/// §6.2: asynchrony buys exactly √2 (strips) and 1.5 (squares), never a
/// better exponent.
#[test]
fn asynchronous_bus_constant_factors() {
    let machine = m();
    let sync = SyncBus::new(&machine);
    let async_ = AsyncBus::new(&machine);
    for n in [256usize, 1024, 4096] {
        let ws = Workload::new(n, &Stencil::five_point(), PartitionShape::Strip);
        let wq = Workload::new(n, &Stencil::five_point(), PartitionShape::Square);
        let fs = async_.optimal_speedup_unbounded(&ws) / sync.optimal_speedup_unbounded(&ws);
        let fq = async_.optimal_speedup_unbounded(&wq) / sync.optimal_speedup_unbounded(&wq);
        assert!((fs - 2.0f64.sqrt()).abs() < 1e-9, "n={n} strips factor {fs}");
        assert!((fq - 1.5).abs() < 1e-9, "n={n} squares factor {fq}");
    }
}

/// §6: with a fixed machine every architecture approaches speedup N as the
/// grid grows — the "folk theorem" the paper confirms for fixed N.
#[test]
fn folk_theorem_fixed_machine_speedup_approaches_n() {
    let machine = m();
    let n_procs = 16usize;
    let models: Vec<Box<dyn ArchModel>> = vec![
        Box::new(Hypercube::new(&machine)),
        Box::new(SyncBus::new(&machine)),
        Box::new(AsyncBus::new(&machine)),
        Box::new(Banyan::with_network(&machine, n_procs)),
    ];
    for model in &models {
        let speedup_at = |n: usize| {
            let w = Workload::new(n, &Stencil::five_point(), PartitionShape::Square);
            model.speedup_at(&w, w.points() / n_procs as f64)
        };
        let s_small = speedup_at(128);
        let s_big = speedup_at(32_768);
        assert!(s_big > s_small, "{}", model.name());
        assert!(
            s_big > 0.9 * n_procs as f64 && s_big <= n_procs as f64 + 1e-9,
            "{}: speedup {s_big} at huge n",
            model.name()
        );
    }
}

/// §8: communication volume bounds speedup — strips' volume is the square
/// root of the computation, so even contention-free speedup is at best
/// √(n²); with bus contention it drops to the fourth root.
#[test]
fn contention_costs_the_exponent() {
    let machine = m();
    let sides = vec![512usize, 1024, 2048, 4096];
    let bus = SyncBus::new(&machine);
    let strip_exp = table1::fit_scaling_exponent(&sides, |n| {
        bus.optimal_speedup_unbounded(&Workload::new(
            n,
            &Stencil::five_point(),
            PartitionShape::Strip,
        ))
    });
    assert!((strip_exp - 0.25).abs() < 0.01, "strip exponent {strip_exp}");
}

/// Fig 7 ordering: asynchronous strips halve the synchronous threshold;
/// squares saturate far earlier than strips.
#[test]
fn minimal_problem_size_ordering() {
    use parspeed::model::minsize::{min_grid_side, BusVariant};
    let machine = m();
    for np in [8usize, 16, 24] {
        let ss = min_grid_side(&machine, 6.0, 1.0, np, BusVariant::SyncStrip);
        let as_ = min_grid_side(&machine, 6.0, 1.0, np, BusVariant::AsyncStrip);
        let sq = min_grid_side(&machine, 6.0, 1.0, np, BusVariant::SyncSquare);
        assert!(ss > as_ && as_ > sq, "N={np}: {ss} / {as_} / {sq}");
        assert!((ss / as_ - 2.0).abs() < 1e-12);
    }
}

/// §8 future work, end to end: a slot schedule on the synchronous bus
/// reproduces the asynchronous machine's optimal cycle time — in the
/// algebra AND in the event-level simulation of a real decomposition.
#[test]
fn scheduling_recovers_asynchrony_end_to_end() {
    use parspeed::arch::{AsyncBusSim, IterationSpec, ScheduledBusSim};
    let machine = m();
    let sched = ScheduledBus::new(&machine);
    let async_ = AsyncBus::new(&machine);
    let n = 256usize;
    let w = Workload::new(n, &Stencil::five_point(), PartitionShape::Strip);

    // Algebra: optimal cycle times agree to the 1/√A* correction.
    let t_sched = sched.cycle_time(&w, sched.closed_form_optimal_area(&w).unwrap());
    let t_async = async_.cycle_time(&w, async_.optimal_area(&w));
    assert!((t_sched - t_async).abs() / t_async < 0.2, "{t_sched} vs {t_async}");

    // Event level: simulate both machines at the async optimum.
    let p = ((n * n) as f64 / async_.optimal_area(&w)).round().clamp(2.0, n as f64) as usize;
    let d = StripDecomposition::new(n, p);
    let spec = IterationSpec::new(&d, &Stencil::five_point());
    let sim_sched = ScheduledBusSim::new(&machine).simulate(&spec).cycle_time;
    let sim_async = AsyncBusSim::new(&machine).simulate(&spec).cycle_time;
    assert!(
        (sim_sched - sim_async).abs() / sim_async < 0.1,
        "simulated: scheduled {sim_sched} vs async {sim_async}"
    );
}

/// §4's mapping sentence, end to end: under the Gray embedding the
/// embedded hypercube simulation equals the adjacency-assuming one; under
/// a random placement it is strictly slower.
#[test]
fn gray_embedding_validates_the_adjacency_assumption() {
    use parspeed::arch::{HypercubeEmbedding, IterationSpec, NeighborExchangeSim};
    let machine = m();
    let p = 16usize;
    let d = StripDecomposition::new(128, p);
    let spec = IterationSpec::new(&d, &Stencil::five_point());
    let sim = NeighborExchangeSim::hypercube(&machine);
    let gray = sim.simulate_embedded(&spec, &HypercubeEmbedding::strip_chain(p));
    assert_eq!(gray, sim.simulate(&spec));
    let random = sim.simulate_embedded(&spec, &HypercubeEmbedding::random(p, 3));
    assert!(random.cycle_time > gray.cycle_time);
}

/// §3/§4 memory constraints, end to end: a memory floor overrides the
/// interior bus optimum, and the forced allocation really fits.
#[test]
fn memory_floor_forces_spreading() {
    use parspeed::model::optimize_constrained;
    let bus = SyncBus::new(&m());
    let w = Workload::new(256, &Stencil::five_point(), PartitionShape::Square);
    let free = bus.optimize(&w, ProcessorBudget::Limited(64));
    let budget = MemoryBudget::words(MemoryBudget::partition_words(&w, free.processors * 2));
    let forced = optimize_constrained(&bus, &w, ProcessorBudget::Limited(64), Some(budget))
        .expect("fits at 2× the unconstrained optimum");
    assert!(forced.processors >= free.processors * 2 - 1);
    assert!(budget.fits(&w, forced.processors));
    assert!(forced.speedup <= free.speedup + 1e-9, "constraints cannot help");
}
